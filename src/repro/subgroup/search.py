"""Lattice-pruned and incremental subgroup discovery (paper Section IV.C).

The exhaustive scan in :mod:`repro.subgroup.auditor` visits every
subgroup and restarts from zero on every re-audit.  This module is the
bound-driven alternative behind the :class:`~repro.core.config.ScanConfig`
API:

* **Pruning** (``strategy="best_first"``) — for every subgroup cell the
  positives inside are bracketed by its lattice parents' marginal
  counts: a child of ``gender=f ∧ race=a`` can contain at most
  ``min(pos(gender=f), pos(race=a))`` positives and at least
  ``n − min(neg(gender=f), neg(race=a))``.  The two-proportion z
  statistic is monotone in the positives count (the pooled variance
  depends only on the subgroup *size*, which is known exactly), so
  evaluating the test at the two bracket endpoints yields a sound lower
  bound on the subgroup's p-value — computed with the *same float
  arithmetic* as the real scoring, so the bound holds in floating point,
  not just on paper.  Cells whose p-value lower bound exceeds
  ``alpha + bound_slack`` can never be significant (every supported
  correction only adjusts p-values upward) and are skipped without
  scoring; subsets are then processed best-bound-first so the most
  disparate subgroups surface earliest.

* **Incrementality** (``strategy="incremental"``) — the scan's joint
  cell counts live in an :class:`~repro.streaming.AuditAccumulator`
  (protected attributes × prediction), persisted as a
  :class:`ScanState` together with every subgroup's counts and scores.
  :func:`rescan` ingests only the appended rows, diffs the accumulator
  states, folds the delta marginals into the stored per-subgroup
  counts, and re-derives the findings — the counting cost is
  proportional to the delta, and the result is byte-identical to a
  from-scratch scan of the grown dataset.

Equivalence contract
--------------------
All strategies agree exactly: the same flagged set, identical p-values
and adjusted p-values on every finding they share, and byte-identical
*final* checkpoint files (the canonical completed-scan payload written
under a strategy-independent fingerprint).  The correction family size
``m`` always counts every subgroup of the full lattice (pruning skips
*scoring*, never family membership), and the Holm / Benjamini–Hochberg
adjusted values are reproduced operation-for-operation from the
censored prefix: every p-value at or below ``alpha + bound_slack`` is
evaluated, so its global rank — and therefore its adjusted value — is
exact.  Adjusted values that land above the threshold are conservative
upper bounds for BH (exact for Holm); they can never flip a flag.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from itertools import combinations
from pathlib import Path

import numpy as np

from repro._validation import check_binary_array
from repro.core.config import ScanConfig
from repro.data.dataset import TabularDataset
from repro.exceptions import AuditError, CheckpointError
from repro.robustness.checkpoint import load_checkpoint, save_checkpoint
from repro.stats.batch import batch_score_counts, batch_two_proportion_z
from repro.streaming.accumulator import AuditAccumulator
from repro.subgroup.auditor import (
    SubgroupFinding,
    _finding_to_payload,
    _jsonable,
    _scan_fingerprint,
    _validate_binary_reader,
    adjust_for_multiple_testing,
)
from repro.subgroup.enumeration import Subgroup, subgroup_space_size

__all__ = ["ScanResult", "ScanState", "scan_subgroups", "rescan"]

#: format version of scan checkpoints and ScanState files
SCAN_FORMAT = 1

#: rows ingested per bounded-memory chunk (in-memory datasets)
_INGEST_CHUNK_ROWS = 1 << 20


# ---------------------------------------------------------------------------
# fingerprints
# ---------------------------------------------------------------------------


def _result_fingerprint(data_fingerprint: str, config: ScanConfig) -> str:
    """Checkpoint-envelope fingerprint, strategy-independent by design.

    Covers the data bytes, attributes, and lattice shape (via the legacy
    scan fingerprint) plus the equivalence key — everything that
    determines the findings — and deliberately nothing about *how* the
    scan ran (strategy, jobs, cadence, slack), so exhaustive,
    best-first, serial, and parallel scans write and resume each other's
    checkpoints byte-for-byte.
    """
    return hashlib.sha256(
        json.dumps(
            {"data": data_fingerprint, **config.equivalence_key()},
            sort_keys=True,
        ).encode()
    ).hexdigest()


def _state_fingerprint(attributes: list[str], config: ScanConfig) -> str:
    """ScanState-envelope fingerprint.

    Unlike the checkpoint fingerprint this must *not* hash the data:
    the whole point of a state file is to be resumed against a grown
    dataset.  Layout compatibility (attributes + equivalence key) is
    what it pins; the append-only prefix contract is documented, not
    hashed.
    """
    return hashlib.sha256(
        json.dumps(
            {"attributes": list(attributes), **config.equivalence_key()},
            sort_keys=True,
        ).encode()
    ).hexdigest()


# ---------------------------------------------------------------------------
# lattice geometry
# ---------------------------------------------------------------------------


class _Lattice:
    """Static geometry of one scan: attributes, code tables, subsets.

    A *subset* is a tuple of attribute positions; its cell space is the
    row-major mixed-radix product of the full (schema-declared) category
    counts, exactly matching :func:`repro.kernel.combined_codes` — so a
    cell index decodes to category codes and back without touching data.
    """

    def __init__(self, dataset: TabularDataset, attributes: list[str], max_order: int):
        self.attributes = list(attributes)
        self.tables = [dataset.codes(a) for a in attributes]
        self.radix = [t.n_categories for t in self.tables]
        k = len(attributes)
        self.subsets: list[tuple[int, ...]] = [
            positions
            for order in range(1, min(max_order, k) + 1)
            for positions in combinations(range(k), order)
        ]

    def shape(self, positions: tuple[int, ...]) -> tuple[int, ...]:
        return tuple(self.radix[i] for i in positions)

    def n_cells(self, positions: tuple[int, ...]) -> int:
        n = 1
        for i in positions:
            n *= self.radix[i]
        return n

    def conditions(self, positions: tuple[int, ...], cell: int) -> tuple:
        """(attribute, value) conjunction for one cell index."""
        digits = np.unravel_index(cell, self.shape(positions))
        return tuple(
            (self.attributes[i], self.tables[i].categories[int(d)])
            for i, d in zip(positions, digits)
        )

    def mask_factory(self, positions: tuple[int, ...], cell: int):
        """Deferred conjunction of the tables' cached category masks."""
        conditions = self.conditions(positions, cell)
        tables = [self.tables[i] for i in positions]

        def build(tables=tables, conditions=conditions) -> np.ndarray:
            masks = [
                table.mask(value) for table, (_, value) in zip(tables, conditions)
            ]
            return masks[0] if len(masks) == 1 else np.logical_and.reduce(masks)

        return build


def _cells_arrays(accumulator: AuditAccumulator) -> tuple[np.ndarray, np.ndarray]:
    """The accumulator's sparse cells as aligned (keys, counts) arrays.

    Keys are sorted so every derived quantity is independent of dict
    insertion order (serial vs parallel ingest, resumed vs fresh).
    """
    items = sorted(accumulator._cells.items())
    if not items:
        return np.zeros((0, 1), dtype=np.int64), np.zeros(0, dtype=np.int64)
    keys = np.asarray([key for key, _ in items], dtype=np.int64)
    counts = np.asarray([count for _, count in items], dtype=np.int64)
    return keys, counts


class _Marginals:
    """Dense per-subset (sizes, positives) tensors from sparse joint cells.

    One weighted bincount per attribute subset marginalises the joint
    cells exactly (counts are integers far below 2**53, so the float64
    accumulation is exact); this replaces the legacy per-subset O(n)
    column passes with O(observed cells) work.
    """

    def __init__(self, lattice: _Lattice, keys: np.ndarray, counts: np.ndarray):
        self.lattice = lattice
        self._keys = keys
        self._counts = counts.astype(np.float64)
        self._cache: dict[tuple[int, ...], tuple[np.ndarray, np.ndarray]] = {}

    def subset(self, positions: tuple[int, ...]) -> tuple[np.ndarray, np.ndarray]:
        """(sizes, positives) int64 vectors over the subset's full cell space."""
        cached = self._cache.get(positions)
        if cached is not None:
            return cached
        n_cells = self.lattice.n_cells(positions)
        if len(self._keys) == 0:
            empty = np.zeros(n_cells, dtype=np.int64)
            self._cache[positions] = (empty, empty.copy())
            return self._cache[positions]
        combined = self._keys[:, positions[0]].copy()
        for i in positions[1:]:
            combined *= self.lattice.radix[i]
            combined += self._keys[:, i]
        combined *= 2
        combined += self._keys[:, -1]  # prediction axis
        totals = np.bincount(
            combined, weights=self._counts, minlength=n_cells * 2
        ).reshape(n_cells, 2)
        sizes = totals.sum(axis=1).astype(np.int64)
        positives = totals[:, 1].astype(np.int64)
        self._cache[positions] = (sizes, positives)
        return sizes, positives


# ---------------------------------------------------------------------------
# bounds
# ---------------------------------------------------------------------------


def _bound_keep(
    lattice: _Lattice,
    marginals: _Marginals,
    positions: tuple[int, ...],
    eligible: np.ndarray,
    sizes: np.ndarray,
    positives: np.ndarray,
    positives_total: int,
    n_total: int,
    threshold: float,
) -> np.ndarray:
    """Which eligible cells of one subset *might* be significant.

    Two nested interval bounds on each cell's positives-inside count
    ``a``, coarse to tight:

    1. *Parent interval* — ``a`` is at most the smallest positives
       count among the cell's direct lattice parents (and the
       population) and at least ``n`` minus their smallest negatives
       count.  This is the classic branch-and-bound bound: it needs
       only lower-order marginals.
    2. *Own marginal* — the subset's joint counts are already folded
       (the correction family needs every subgroup's exact size), so
       the interval collapses to the observed count itself: the
       width-zero bracket whose bound *is* the p-value the scoring
       would compute.

    The z statistic is monotone in ``a`` for fixed ``n`` (the pooled
    variance depends only on ``n``) — including after float rounding,
    since the float image of a monotone real function is monotone — so
    each interval's p-value lower bound is attained at an endpoint,
    evaluated here with the very same :func:`batch_two_proportion_z`
    the real scoring uses.  A cell whose bound still exceeds
    ``threshold`` is provably never significant (every supported
    correction only adjusts p-values upward), so skipping its scoring
    and finding construction cannot change the flagged set.

    Returns a boolean keep-mask aligned with the full cell space
    (False everywhere ``eligible`` is False).
    """
    keep = np.zeros(len(sizes), dtype=bool)
    if not eligible.any():
        return keep
    idx = np.flatnonzero(eligible)
    n = sizes[idx]
    # Degenerate population (no positives, or all positives): every
    # subgroup's rate equals its complement's, p = 1 everywhere.
    if positives_total == 0 or positives_total == n_total:
        return keep if threshold < 1.0 else _fill(keep, idx)
    shape = lattice.shape(positions)
    digits = np.unravel_index(idx, shape)
    upper = np.full(len(idx), positives_total, dtype=np.int64)
    lower_neg = np.full(len(idx), n_total - positives_total, dtype=np.int64)
    for drop in range(len(positions)):
        parent = positions[:drop] + positions[drop + 1 :]
        if not parent:
            continue
        parent_sizes, parent_pos = marginals.subset(parent)
        parent_cells = np.zeros(len(idx), dtype=np.int64)
        for j, i in enumerate(parent):
            parent_cells *= lattice.radix[i]
            parent_cells += digits[j if j < drop else j + 1]
        np.minimum(upper, parent_pos[parent_cells], out=upper)
        np.minimum(
            lower_neg,
            parent_sizes[parent_cells] - parent_pos[parent_cells],
            out=lower_neg,
        )
    a_hi = np.minimum(upper, n)
    a_lo = np.maximum(0, n - lower_neg)
    _, p_lo = batch_two_proportion_z(
        a_lo, n, positives_total - a_lo, n_total - n
    )
    _, p_hi = batch_two_proportion_z(
        a_hi, n, positives_total - a_hi, n_total - n
    )
    survivors = np.minimum(p_lo, p_hi) <= threshold
    if survivors.any():
        live = idx[survivors]
        a = positives[live]
        _, p_exact = batch_two_proportion_z(
            a, sizes[live], positives_total - a, n_total - sizes[live]
        )
        keep[live] = p_exact <= threshold
    return keep


def _fill(mask: np.ndarray, idx: np.ndarray) -> np.ndarray:
    mask[idx] = True
    return mask


# ---------------------------------------------------------------------------
# censored multiple-testing corrections
# ---------------------------------------------------------------------------


def _censored_corrections(
    findings: list[SubgroupFinding],
    method: str,
    family: int,
    threshold: float,
) -> list[SubgroupFinding]:
    """Holm / BH adjusted p-values from a censored scan, exactly.

    ``findings`` are the evaluated subgroups; every member of the
    size-``family`` correction family with a p-value at or below
    ``threshold`` is among them (the pruning guarantee), so for those
    entries the global mergesort rank equals the rank within this
    prefix and the legacy expressions — ``min(1, (m − rank) · p)``
    running-max for Holm, ``min(1, m · p / (rank + 1))`` reverse
    running-min for BH — reproduce :mod:`repro.stats.multiple_testing`
    bit for bit.  Entries whose p-value exceeds the threshold keep
    ``adjusted_p_value=None`` (their raw p already exceeds α); BH
    prefix entries whose censored running-min exceeds the threshold get
    that value as a conservative upper bound (the true minimum could
    involve a pruned tail rank, but every tail candidate also exceeds
    the threshold, so the flag verdict is unaffected).
    """
    if method == "none" or not findings:
        return findings
    if method not in ("holm", "bh"):
        raise AuditError(
            f"unknown correction method {method!r}; use 'holm' or 'bh'"
        )
    prefix = [i for i, f in enumerate(findings) if f.p_value <= threshold]
    adjusted: dict[int, float] = {}
    if prefix:
        p = np.asarray([findings[i].p_value for i in prefix], dtype=float)
        order = np.argsort(p, kind="mergesort")
        if method == "holm":
            running = 0.0
            for rank, position in enumerate(order):
                value = min(1.0, (family - rank) * p[position])
                running = max(running, value)
                adjusted[prefix[int(position)]] = running
        else:
            running = 1.0
            for rank in range(len(order) - 1, -1, -1):
                position = order[rank]
                value = min(1.0, family * p[position] / (rank + 1))
                running = min(running, value)
                adjusted[prefix[int(position)]] = running
    return [
        (
            dataclasses.replace(f, adjusted_p_value=float(adjusted[i]))
            if i in adjusted
            else f
        )
        for i, f in enumerate(findings)
    ]


# ---------------------------------------------------------------------------
# results and state
# ---------------------------------------------------------------------------


@dataclass
class ScanResult:
    """Outcome of one :func:`scan_subgroups` / :func:`rescan` run.

    ``findings`` are the evaluated subgroups — all of them for an
    exhaustive scan, the bound-survivors otherwise — sorted most
    disparate first with adjusted p-values attached per the configured
    correction.  ``flagged`` is the significant subset, provably
    identical across strategies.  ``total`` counts the enumerated
    lattice (subgroups at or above ``min_size``), ``family`` the
    multiple-testing family ``m`` (enumerated subgroups with a
    non-empty complement).
    """

    findings: list[SubgroupFinding]
    flagged: list[SubgroupFinding]
    config: ScanConfig
    total: int
    family: int
    evaluated: int
    pruned: int
    rescored: int = 0
    state: "ScanState | None" = field(default=None, repr=False)

    @property
    def pruned_fraction(self) -> float:
        return self.pruned / self.total if self.total else 0.0

    def summary(self) -> dict:
        return {
            "strategy": self.config.strategy,
            "total": self.total,
            "family": self.family,
            "evaluated": self.evaluated,
            "pruned": self.pruned,
            "rescored": self.rescored,
            "pruned_fraction": round(self.pruned_fraction, 4),
            "flagged": len(self.flagged),
        }


@dataclass
class ScanState:
    """Persisted sufficient statistics of a completed incremental scan.

    Everything :func:`rescan` needs to re-score a grown dataset from
    its delta: the joint-cell accumulator, and per-subgroup counts and
    scores (dense per attribute subset, aligned with the subset's full
    cell space).  Saved through the atomic checkpoint writer under a
    layout fingerprint, so state from a different attribute set or
    lattice configuration refuses to load.
    """

    attributes: list[str]
    config: ScanConfig
    accumulator: AuditAccumulator
    n_rows: int
    positives_total: int
    subsets: dict[tuple[int, ...], dict]

    def to_payload(self) -> dict:
        accumulator = self.accumulator.to_dict()
        # How many chunks built the cells is an artifact of ingest
        # chunking, not of the data; zero it so a rescan's state file is
        # byte-identical to a from-scratch scan's.
        accumulator["chunks_ingested"] = 0
        return {
            "format": SCAN_FORMAT,
            "attributes": list(self.attributes),
            "config": self.config.to_dict(),
            "n_rows": int(self.n_rows),
            "positives_total": int(self.positives_total),
            "accumulator": accumulator,
            "subsets": [
                {
                    "positions": list(positions),
                    "sizes": [int(v) for v in entry["sizes"]],
                    "positives": [int(v) for v in entry["positives"]],
                    "p_values": [
                        None if p is None else float(p)
                        for p in entry["p_values"]
                    ],
                }
                for positions, entry in sorted(self.subsets.items())
            ],
        }

    def save(self, path) -> None:
        save_checkpoint(
            path,
            self.to_payload(),
            fingerprint=_state_fingerprint(self.attributes, self.config),
        )

    @classmethod
    def load(cls, path, *, attributes=None, config: ScanConfig | None = None):
        """Load a state file, optionally pinned to a layout.

        With ``attributes`` and ``config`` the envelope fingerprint is
        verified — state written for a different attribute set or
        equivalence key raises :class:`CheckpointError`.
        """
        fingerprint = None
        if attributes is not None and config is not None:
            fingerprint = _state_fingerprint(list(attributes), config)
        payload = load_checkpoint(path, fingerprint)
        try:
            if payload["format"] != SCAN_FORMAT:
                raise AuditError(
                    f"scan state has format {payload['format']!r}; this "
                    f"build reads {SCAN_FORMAT}"
                )
            return cls(
                attributes=list(payload["attributes"]),
                config=ScanConfig.from_dict(payload["config"]),
                accumulator=AuditAccumulator.from_dict(payload["accumulator"]),
                n_rows=int(payload["n_rows"]),
                positives_total=int(payload["positives_total"]),
                subsets={
                    tuple(entry["positions"]): {
                        "sizes": np.asarray(entry["sizes"], dtype=np.int64),
                        "positives": np.asarray(
                            entry["positives"], dtype=np.int64
                        ),
                        "p_values": list(entry["p_values"]),
                    }
                    for entry in payload["subsets"]
                },
            )
        except (AuditError, KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"scan state {path} has the wrong layout: "
                f"{type(exc).__name__}: {exc}",
                path=path,
            ) from exc


# ---------------------------------------------------------------------------
# ingest
# ---------------------------------------------------------------------------


def _code_sources(dataset: TabularDataset, attributes: list[str], pred_source):
    """Per-row readers: ``read(lo, hi) -> int64 codes`` per column + preds."""
    packed = hasattr(dataset, "codes_reader")

    def column_reader(attribute):
        if packed:
            reader = dataset.codes_reader(attribute)
            return lambda lo, hi, reader=reader: reader.read(lo, hi)
        codes = dataset.codes(attribute).codes
        return lambda lo, hi, codes=codes: codes[lo:hi]

    if isinstance(pred_source, np.ndarray):
        pred = lambda lo, hi: np.asarray(pred_source[lo:hi], dtype=np.int64)  # noqa: E731
    else:
        pred = lambda lo, hi: pred_source.read(lo, hi)  # noqa: E731
    return [column_reader(a) for a in attributes], pred


def _ingest_range(
    accumulator: AuditAccumulator,
    dataset: TabularDataset,
    attributes: list[str],
    pred_source,
    lo: int,
    hi: int,
    on_chunk=None,
) -> None:
    """Ingest rows ``[lo, hi)`` as code arrays, chunked and bounded.

    Cell keys are *category codes* (ints), not values — compact,
    JSON-stable, and identical across in-memory and packed
    representations of the same data.
    """
    readers, pred = _code_sources(dataset, attributes, pred_source)
    step = int(getattr(dataset, "chunk_rows", _INGEST_CHUNK_ROWS))
    for start in range(lo, hi, step):
        end = min(start + step, hi)
        accumulator.ingest(
            protected={
                name: reader(start, end)
                for name, reader in zip(attributes, readers)
            },
            predictions=pred(start, end),
        )
        if on_chunk is not None:
            on_chunk(end)


def _ingest_parallel(
    accumulator: AuditAccumulator,
    dataset: TabularDataset,
    attributes: list[str],
    pred_source,
    lattice: _Lattice,
    lo: int,
    jobs: int,
    executor_factory,
    on_chunk=None,
) -> None:
    """Parallel joint-cell ingest: workers count rows, the parent merges.

    Workers receive zero-copy source manifests (shared memory for
    in-memory datasets, packed column files otherwise) and return
    sparse ``(combined code, count)`` pairs; integer addition makes the
    merged cells identical to a serial ingest regardless of chunking.
    """
    import uuid
    from concurrent.futures import ProcessPoolExecutor

    from repro.kernel.parallel import chunk_ranges, count_cells_chunk
    from repro.kernel.shm import publish as shm_publish

    packed = hasattr(dataset, "codes_reader")

    def manifest(attribute):
        if packed:
            return dataset.codes_reader(attribute).manifest()
        return shm_publish(dataset.codes(attribute).codes)

    sources = {
        "token": uuid.uuid4().hex,
        "columns": [manifest(a) for a in attributes],
        "n_categories": list(lattice.radix),
        "predictions": (
            pred_source.manifest()
            if not isinstance(pred_source, np.ndarray)
            else shm_publish(pred_source)
        ),
    }
    n_rows = dataset.n_rows
    step = int(getattr(dataset, "chunk_rows", _INGEST_CHUNK_ROWS))
    step = max(step, -(-(n_rows - lo) // (jobs * 4)))
    ranges = chunk_ranges(lo, n_rows, step)
    shape = tuple(lattice.radix) + (2,)
    factory = executor_factory or (lambda n: ProcessPoolExecutor(max_workers=n))
    with factory(jobs) as pool:
        futures = [
            pool.submit(count_cells_chunk, sources, lo_, hi_)
            for lo_, hi_ in ranges
        ]
        for (lo_, hi_), future in zip(ranges, futures):
            codes, counts = future.result()
            if codes:
                digits = np.unravel_index(np.asarray(codes, dtype=np.int64), shape)
                cells = accumulator._cells
                for position, count in enumerate(counts):
                    key = tuple(int(axis[position]) for axis in digits)
                    cells[key] = cells.get(key, 0) + int(count)
            accumulator.n_rows += hi_ - lo_
            accumulator.chunks_ingested += 1
            if on_chunk is not None:
                on_chunk(hi_)


# ---------------------------------------------------------------------------
# the scan engine
# ---------------------------------------------------------------------------


def _canonical_payload(
    flagged: list[SubgroupFinding], total: int, family: int
) -> dict:
    """The strategy-independent completed-scan checkpoint payload."""
    ordered = sorted(flagged, key=lambda f: (-abs(f.gap), f.subgroup.label()))
    return {
        "format": SCAN_FORMAT,
        "complete": True,
        "total": int(total),
        "family": int(family),
        "flagged": [
            {
                **_finding_to_payload(f),
                "adjusted_p_value": (
                    None
                    if f.adjusted_p_value is None
                    else float(f.adjusted_p_value)
                ),
            }
            for f in ordered
        ],
    }


def _score_and_correct(
    lattice: _Lattice,
    marginals_by_subset: dict[tuple[int, ...], dict],
    config: ScanConfig,
    positives_total: int,
    n_total: int,
    *,
    metrics,
    tracer,
    on_progress=None,
    checkpoint=None,
    jobs: int = 1,
    executor_factory=None,
    subset_order: list[tuple[int, ...]] | None = None,
) -> tuple[list[SubgroupFinding], list[SubgroupFinding], dict]:
    """Score the kept cells, attach corrections, compute the flag set.

    ``marginals_by_subset`` maps each subset to dense ``sizes``,
    ``positives``, ``eligible`` (size ≥ min_size with a non-empty
    complement), and ``keep`` (eligible minus pruned) vectors.  Scoring
    walks subsets in ``subset_order`` (enumeration order by default),
    batching through :func:`batch_score_counts` in checkpoint-interval
    chunks — dispatched to a worker pool via bound-aware ranges when
    ``jobs > 1`` — so the numbers are bit-identical to the legacy
    per-subgroup arithmetic.
    """
    from repro.kernel.parallel import pruned_ranges, score_chunk

    order = subset_order if subset_order is not None else list(
        marginals_by_subset
    )
    # Flatten the processing order into aligned per-subgroup vectors.
    flat: list[tuple[tuple[int, ...], int, int, int]] = []  # positions, cell, pos, n
    keep_flags: list[bool] = []
    total = family = pruned = 0
    for positions in order:
        entry = marginals_by_subset[positions]
        sizes, positives = entry["sizes"], entry["positives"]
        enumerated = np.flatnonzero(entry["enumerated"])
        eligible, keep = entry["eligible"], entry["keep"]
        total += len(enumerated)
        family += int(eligible.sum())
        for cell in enumerated:
            cell = int(cell)
            if eligible[cell] and not keep[cell]:
                pruned += 1
            flat.append(
                (positions, cell, int(positives[cell]), int(sizes[cell]))
            )
            keep_flags.append(bool(keep[cell]))
    if pruned:
        metrics.counter("subgroups.pruned").inc(pruned)

    findings: list[SubgroupFinding] = []
    evaluated = 0
    ranges = pruned_ranges(keep_flags, config.checkpoint_every)
    pool_ctx = None
    futures = []
    if jobs > 1 and ranges:
        from concurrent.futures import ProcessPoolExecutor

        factory = executor_factory or (
            lambda n: ProcessPoolExecutor(max_workers=n)
        )
        pool_ctx = factory(jobs)
    try:
        if pool_ctx is not None:
            pool = pool_ctx.__enter__()
            for lo, hi in ranges:
                entries = [
                    (flat[i][2], flat[i][3])
                    for i in range(lo, hi)
                    if keep_flags[i]
                ]
                futures.append(
                    pool.submit(score_chunk, entries, positives_total, n_total)
                )
        done = 0
        for index, (lo, hi) in enumerate(ranges):
            kept = [i for i in range(lo, hi) if keep_flags[i]]
            if pool_ctx is not None:
                payloads = futures[index].result()
            else:
                payloads = score_chunk(
                    [(flat[i][2], flat[i][3]) for i in kept],
                    positives_total,
                    n_total,
                )
            for i, payload in zip(kept, payloads):
                positions, cell, pos, n = flat[i]
                if payload is None:  # pragma: no cover — keep excludes n == N
                    continue
                findings.append(
                    SubgroupFinding(
                        subgroup=Subgroup(
                            conditions=lattice.conditions(positions, cell),
                            size=n,
                            mask_factory=lattice.mask_factory(positions, cell),
                        ),
                        **payload,
                    )
                )
            evaluated += len(kept)
            metrics.counter("subgroups.evaluated").inc(len(kept))
            done = hi
            if checkpoint is not None:
                checkpoint(done, len(flat))
            if on_progress is not None:
                on_progress(done, len(flat))
    finally:
        if pool_ctx is not None:
            pool_ctx.__exit__(None, None, None)
    if on_progress is not None and done < len(flat):
        on_progress(len(flat), len(flat))

    findings.sort(key=lambda f: (-abs(f.gap), f.subgroup.label()))
    threshold = config.alpha + config.bound_slack
    if config.strategy == "exhaustive" or pruned == 0:
        # Nothing censored: the legacy full-family correction applies
        # verbatim (family == len(findings) + zero-complement cells
        # never scored by either path).
        if config.correction != "none" and findings:
            findings = adjust_for_multiple_testing(findings, config.correction)
    else:
        findings = _censored_corrections(
            findings, config.correction, family, threshold
        )
    flagged = [f for f in findings if f.significant(config.alpha)]
    stats = {
        "total": total,
        "family": family,
        "evaluated": evaluated,
        "pruned": pruned,
    }
    return findings, flagged, stats


def _prepare_marginals(
    lattice: _Lattice,
    marginals: _Marginals,
    config: ScanConfig,
    positives_total: int,
    n_total: int,
    metrics,
) -> dict[tuple[int, ...], dict]:
    """Dense per-subset vectors: sizes, positives, eligibility, keep."""
    prune = config.strategy in ("best_first", "incremental")
    threshold = config.alpha + config.bound_slack
    out: dict[tuple[int, ...], dict] = {}
    for positions in lattice.subsets:
        sizes, positives = marginals.subset(positions)
        enumerated = sizes >= config.min_size
        eligible = enumerated & (sizes < n_total)
        if prune:
            with metrics.timer("scan.bound_check"):
                keep = _bound_keep(
                    lattice,
                    marginals,
                    positions,
                    eligible,
                    sizes,
                    positives,
                    positives_total,
                    n_total,
                    threshold,
                )
        else:
            keep = eligible.copy()
        out[positions] = {
            "sizes": sizes,
            "positives": positives,
            "enumerated": enumerated,
            "eligible": eligible,
            "keep": keep,
        }
    return out


def _subset_priority(
    marginals_by_subset: dict[tuple[int, ...], dict],
    positives_total: int,
    n_total: int,
) -> list[tuple[int, ...]]:
    """Best-first processing order: most promising subsets first.

    Priority is the subset's smallest surviving p-value bound proxy —
    implemented as the largest absolute gap achievable among its kept
    cells, with the enumeration position as a deterministic tiebreak.
    Order affects *when* subgroups are scored (the anytime property:
    checkpoints fill with the most disparate candidates first), never
    *what* the completed scan returns.
    """
    ranked = []
    for index, (positions, entry) in enumerate(marginals_by_subset.items()):
        keep = entry["keep"]
        if keep.any():
            sizes = entry["sizes"][keep].astype(np.float64)
            pos = entry["positives"][keep].astype(np.float64)
            rate = pos / sizes
            rest = (positives_total - pos) / (n_total - sizes)
            score = float(np.max(np.abs(rate - rest)))
        else:
            score = -1.0
        ranked.append((-score, index, positions))
    ranked.sort()
    return [positions for _, _, positions in ranked]


def scan_subgroups(
    predictions,
    dataset: TabularDataset,
    attributes: list[str] | None = None,
    *,
    config: ScanConfig | None = None,
    checkpoint_path=None,
    resume: bool = False,
    state_path=None,
    on_progress=None,
    tracer=None,
    metrics=None,
    executor_factory=None,
) -> ScanResult:
    """One subgroup-lattice scan under a :class:`ScanConfig`.

    The strategy-aware front door: ``"exhaustive"`` scores the whole
    lattice, ``"best_first"`` prunes bound-certified subgroups and
    processes the rest most-promising-first, ``"incremental"``
    additionally persists (and, when ``state_path`` already holds state
    for this lattice, *resumes from*) a :class:`ScanState`, re-scoring
    only from the appended delta.

    All strategies return the same flagged set and write byte-identical
    completed checkpoints (see the module docstring for the proof
    obligations); ``checkpoint_path``/``resume`` give the scan the same
    anytime property as :func:`repro.subgroup.audit_subgroups` — a
    killed scan resumes from its last atomic checkpoint, skipping at
    least the ingest already performed.
    """
    from repro.kernel import get_backend
    from repro.observability.metrics import get_metrics
    from repro.observability.trace import get_tracer

    config = config if config is not None else ScanConfig()
    tracer = tracer if tracer is not None else get_tracer()
    metrics = metrics if metrics is not None else get_metrics()
    jobs = config.jobs
    if jobs > 1 and get_backend() != "kernel":
        raise AuditError(
            "jobs > 1 requires the 'kernel' backend; the reference path "
            "is serial-only (repro.kernel.set_backend)"
        )
    if resume and checkpoint_path is None:
        raise CheckpointError("resume=True requires a checkpoint_path")
    if config.strategy == "incremental" and state_path is None:
        raise AuditError(
            "strategy 'incremental' requires a state_path to persist "
            "ScanState between audits"
        )

    pred_reader = None
    reader_for = getattr(dataset, "reader_for", None)
    if reader_for is not None and isinstance(predictions, np.ndarray):
        pred_reader = reader_for(predictions)
    if pred_reader is not None:
        positives_total = _validate_binary_reader(pred_reader, "predictions")
        n_total = dataset.n_rows
    else:
        predictions = check_binary_array(predictions, "predictions")
        if len(predictions) != dataset.n_rows:
            raise AuditError("predictions length does not match dataset")
        n_total = len(predictions)
        positives_total = int(predictions.sum())
    if attributes is None:
        attributes = dataset.schema.protected_names
    if not attributes:
        raise AuditError("no attributes to audit")
    attributes = list(attributes)
    pred_source = pred_reader if pred_reader is not None else predictions

    # Incremental fast path: reuse persisted state when it matches this
    # lattice and the dataset has only grown.
    if config.strategy == "incremental" and Path(state_path).exists():
        state = ScanState.load(
            state_path, attributes=attributes, config=config
        )
        if state.n_rows > dataset.n_rows:
            raise CheckpointError(
                f"scan state {state_path} covers {state.n_rows} rows but "
                f"the dataset has {dataset.n_rows}; incremental scans "
                "require append-only growth",
                path=state_path,
            )
        return rescan(
            state,
            predictions,
            dataset,
            attributes=attributes,
            checkpoint_path=checkpoint_path,
            state_path=state_path,
            tracer=tracer,
            metrics=metrics,
            on_progress=on_progress,
        )

    lattice = _Lattice(dataset, attributes, config.max_order)
    space = subgroup_space_size(list(lattice.radix), config.max_order)
    if space > 100_000:
        raise AuditError(
            f"subgroup space has {space} members, exceeding budget 100000; "
            "lower max_order (paper IV.C: complexity increases "
            "exponentially)"
        )

    fingerprint = ""
    if checkpoint_path is not None:
        fingerprint = _result_fingerprint(
            _scan_fingerprint(
                pred_source, dataset, attributes,
                config.max_order, config.min_size,
            ),
            config,
        )

    accumulator = AuditAccumulator(attributes, label=None)
    rows_done = 0
    if resume and Path(checkpoint_path).exists():
        payload = load_checkpoint(checkpoint_path, fingerprint)
        try:
            if payload.get("format") != SCAN_FORMAT:
                raise CheckpointError(
                    f"checkpoint {checkpoint_path} was written by the "
                    "legacy exhaustive scanner; resume it through "
                    "audit_subgroups",
                    path=checkpoint_path,
                )
            if payload.get("complete"):
                # Canonical completed checkpoint: it stores the flagged
                # payloads, not the cells, so re-derive the full result
                # fresh (same bytes will be rewritten at the end).
                pass
            else:
                accumulator = AuditAccumulator.from_dict(payload["accumulator"])
                rows_done = accumulator.n_rows
        except CheckpointError:
            raise
        except (KeyError, TypeError, ValueError, AuditError) as exc:
            raise CheckpointError(
                f"scan checkpoint {checkpoint_path} has the wrong layout: "
                f"{type(exc).__name__}: {exc}",
                path=checkpoint_path,
            ) from exc

    with tracer.span(
        "subgroups.scan",
        strategy=config.strategy,
        max_order=config.max_order,
        min_size=config.min_size,
        jobs=jobs,
        resumed_rows=rows_done,
    ) as span:

        def ingest_checkpoint(rows: int) -> None:
            if checkpoint_path is not None:
                with metrics.timer("subgroups.checkpoint_write"):
                    save_checkpoint(
                        checkpoint_path,
                        {
                            "format": SCAN_FORMAT,
                            "complete": False,
                            "phase": "ingest",
                            "rows_done": int(rows),
                            "accumulator": accumulator.to_dict(),
                        },
                        fingerprint=fingerprint,
                    )
                span.event("checkpoint", phase="ingest", rows=rows)

        if rows_done < n_total:
            if jobs > 1:
                _ingest_parallel(
                    accumulator, dataset, attributes, pred_source, lattice,
                    rows_done, jobs, executor_factory,
                    on_chunk=ingest_checkpoint if checkpoint_path else None,
                )
            else:
                _ingest_range(
                    accumulator, dataset, attributes, pred_source,
                    rows_done, n_total,
                    on_chunk=ingest_checkpoint if checkpoint_path else None,
                )
        if accumulator.n_rows != n_total:  # pragma: no cover — defensive
            raise AuditError(
                f"ingest covered {accumulator.n_rows} rows, expected {n_total}"
            )

        keys, counts = _cells_arrays(accumulator)
        marginals = _Marginals(lattice, keys, counts)
        by_subset = _prepare_marginals(
            lattice, marginals, config, positives_total, n_total, metrics
        )
        subset_order = (
            _subset_priority(by_subset, positives_total, n_total)
            if config.strategy in ("best_first", "incremental")
            else list(by_subset)
        )

        def score_checkpoint(done: int, total: int) -> None:
            if checkpoint_path is not None and (
                done % config.checkpoint_every == 0 or done == total
            ) and done < total:
                with metrics.timer("subgroups.checkpoint_write"):
                    save_checkpoint(
                        checkpoint_path,
                        {
                            "format": SCAN_FORMAT,
                            "complete": False,
                            "phase": "score",
                            "scored": int(done),
                            "accumulator": accumulator.to_dict(),
                        },
                        fingerprint=fingerprint,
                    )
                span.event("checkpoint", phase="score", scored=done)

        findings, flagged, stats = _score_and_correct(
            lattice, by_subset, config, positives_total, n_total,
            metrics=metrics, tracer=tracer, on_progress=on_progress,
            checkpoint=score_checkpoint if checkpoint_path else None,
            jobs=jobs, executor_factory=executor_factory,
            subset_order=subset_order,
        )
        span.set(**stats)

        state = None
        if config.strategy == "incremental":
            state = _build_state(
                lattice, attributes, config, accumulator, n_total,
                positives_total, by_subset, findings,
            )
            state.save(state_path)

        if checkpoint_path is not None:
            with metrics.timer("subgroups.checkpoint_write"):
                save_checkpoint(
                    checkpoint_path,
                    _canonical_payload(
                        flagged, stats["total"], stats["family"]
                    ),
                    fingerprint=fingerprint,
                )
            span.event("checkpoint", phase="complete")

    return ScanResult(
        findings=findings,
        flagged=flagged,
        config=config,
        state=state,
        **stats,
    )


def _build_state(
    lattice: _Lattice,
    attributes,
    config,
    accumulator,
    n_rows,
    positives_total,
    by_subset,
    findings,
) -> ScanState:
    """Assemble the persistable per-subgroup counts + scores.

    Scored p-values are written back into each subset's dense cell
    vector (``None`` for subgroups that were pruned or below
    ``min_size``); :func:`rescan` re-scores whatever changed, so the
    stored scores serve inspection and the unchanged-subgroup ledger.
    """
    subsets: dict[tuple[int, ...], dict] = {}
    for positions in sorted(by_subset):
        entry = by_subset[positions]
        subsets[positions] = {
            "sizes": entry["sizes"],
            "positives": entry["positives"],
            "p_values": [None] * len(entry["sizes"]),
        }
    position_of = {name: i for i, name in enumerate(attributes)}
    for f in findings:
        conditions = f.subgroup.conditions
        positions = tuple(position_of[a] for a, _ in conditions)
        cell = 0
        for i, (_, value) in zip(positions, conditions):
            cell = cell * lattice.radix[i] + lattice.tables[i].index[value]
        subsets[positions]["p_values"][cell] = float(f.p_value)
    return ScanState(
        attributes=list(attributes),
        config=config,
        accumulator=accumulator,
        n_rows=int(n_rows),
        positives_total=int(positives_total),
        subsets=subsets,
    )


def rescan(
    state: ScanState,
    predictions,
    dataset: TabularDataset,
    attributes: list[str] | None = None,
    *,
    checkpoint_path=None,
    state_path=None,
    on_progress=None,
    tracer=None,
    metrics=None,
) -> ScanResult:
    """Re-score a grown dataset from its delta against a ScanState.

    The contract is append-only growth: rows ``[0, state.n_rows)`` of
    ``dataset`` are the rows the state was built from, unchanged.  Only
    the appended rows are ingested; the accumulator diff's marginals
    are folded into the stored per-subgroup counts, the
    ``subgroups.rescored`` counter records how many subgroups' counts
    actually changed, and scoring/corrections re-run over the merged
    counts — the result (and any completed checkpoint written) is
    byte-identical to a from-scratch scan of the grown dataset under
    the same configuration.
    """
    from repro.observability.metrics import get_metrics
    from repro.observability.trace import get_tracer

    tracer = tracer if tracer is not None else get_tracer()
    metrics = metrics if metrics is not None else get_metrics()
    config = state.config

    pred_reader = None
    reader_for = getattr(dataset, "reader_for", None)
    if reader_for is not None and isinstance(predictions, np.ndarray):
        pred_reader = reader_for(predictions)
    if pred_reader is not None:
        positives_total = _validate_binary_reader(pred_reader, "predictions")
        n_total = dataset.n_rows
    else:
        predictions = check_binary_array(predictions, "predictions")
        if len(predictions) != dataset.n_rows:
            raise AuditError("predictions length does not match dataset")
        n_total = len(predictions)
        positives_total = int(predictions.sum())
    if attributes is None:
        attributes = list(state.attributes)
    if list(attributes) != list(state.attributes):
        raise AuditError(
            f"scan state covers attributes {state.attributes}, "
            f"rescan asked for {list(attributes)}"
        )
    if n_total < state.n_rows:
        raise AuditError(
            f"dataset has {n_total} rows but the scan state covers "
            f"{state.n_rows}; incremental scans require append-only growth"
        )
    pred_source = pred_reader if pred_reader is not None else predictions

    lattice = _Lattice(dataset, attributes, config.max_order)
    with tracer.span(
        "subgroups.rescan",
        delta_rows=n_total - state.n_rows,
        base_rows=state.n_rows,
    ) as span:
        # 1. Ingest only the delta into a fresh accumulator …
        delta = AuditAccumulator(attributes, label=None)
        if n_total > state.n_rows:
            _ingest_range(
                delta, dataset, attributes, pred_source, state.n_rows, n_total
            )
        # 2. … merge it into the stored cells (integer addition — the
        # merged accumulator equals a full ingest of the grown data).
        merged = AuditAccumulator.from_dict(state.accumulator.to_dict())
        merged.merge(delta)

        # 3. Fold the delta's marginals into the stored per-subgroup
        # counts — O(observed delta cells) per subset, no full recount.
        delta_keys, delta_counts = _cells_arrays(delta)
        delta_marginals = _Marginals(lattice, delta_keys, delta_counts)
        by_subset: dict[tuple[int, ...], dict] = {}
        rescored = 0
        for positions in lattice.subsets:
            d_sizes, d_pos = delta_marginals.subset(positions)
            stored = state.subsets.get(positions)
            if stored is None or len(stored["sizes"]) != len(d_sizes):
                raise CheckpointError(
                    "scan state does not cover this lattice (schema or "
                    "category space changed); run a fresh incremental scan"
                )
            sizes = stored["sizes"] + d_sizes
            positives = stored["positives"] + d_pos
            changed = (d_sizes != 0) | (d_pos != 0)
            rescored += int(
                (changed & (sizes >= config.min_size) & (sizes < n_total)).sum()
            )
            by_subset[positions] = {"sizes": sizes, "positives": positives}
        metrics.counter("subgroups.rescored").inc(rescored)

        # 4. Bounds + scoring + corrections over the merged counts —
        # identical, by construction, to a from-scratch scan.
        keys, counts = _cells_arrays(merged)
        marginals = _Marginals(lattice, keys, counts)
        threshold = config.alpha + config.bound_slack
        prune = config.strategy in ("best_first", "incremental")
        for positions, entry in by_subset.items():
            sizes = entry["sizes"]
            enumerated = sizes >= config.min_size
            eligible = enumerated & (sizes < n_total)
            if prune:
                with metrics.timer("scan.bound_check"):
                    keep = _bound_keep(
                        lattice, marginals, positions, eligible, sizes,
                        entry["positives"], positives_total, n_total,
                        threshold,
                    )
            else:
                keep = eligible.copy()
            entry.update(enumerated=enumerated, eligible=eligible, keep=keep)

        fingerprint = ""
        if checkpoint_path is not None:
            fingerprint = _result_fingerprint(
                _scan_fingerprint(
                    pred_source, dataset, attributes,
                    config.max_order, config.min_size,
                ),
                config,
            )
        subset_order = _subset_priority(by_subset, positives_total, n_total)
        findings, flagged, stats = _score_and_correct(
            lattice, by_subset, config, positives_total, n_total,
            metrics=metrics, tracer=tracer, on_progress=on_progress,
            subset_order=subset_order,
        )
        stats["rescored"] = rescored
        span.set(**stats)

        new_state = _build_state(
            lattice, attributes, config, merged, n_total, positives_total,
            by_subset, findings,
        )
        if state_path is not None:
            new_state.save(state_path)
        if checkpoint_path is not None:
            with metrics.timer("subgroups.checkpoint_write"):
                save_checkpoint(
                    checkpoint_path,
                    _canonical_payload(
                        flagged, stats["total"], stats["family"]
                    ),
                    fingerprint=fingerprint,
                )

    return ScanResult(
        findings=findings,
        flagged=flagged,
        config=config,
        state=new_state,
        **stats,
    )
