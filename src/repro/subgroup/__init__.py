"""Intersectional / subgroup fairness (paper Section IV.C)."""

from repro.subgroup.auditor import (
    GerrymanderingAuditor,
    SubgroupFinding,
    adjust_for_multiple_testing,
    audit_subgroups,
)
from repro.subgroup.enumeration import (
    Subgroup,
    enumerate_subgroups,
    subgroup_space_size,
)
from repro.subgroup.search import (
    ScanResult,
    ScanState,
    rescan,
    scan_subgroups,
)

__all__ = [
    "Subgroup",
    "enumerate_subgroups",
    "subgroup_space_size",
    "SubgroupFinding",
    "audit_subgroups",
    "adjust_for_multiple_testing",
    "GerrymanderingAuditor",
    "ScanResult",
    "ScanState",
    "scan_subgroups",
    "rescan",
]
