"""Intersectional / subgroup fairness (paper Section IV.C)."""

from repro.subgroup.auditor import (
    GerrymanderingAuditor,
    SubgroupFinding,
    adjust_for_multiple_testing,
    audit_subgroups,
)
from repro.subgroup.enumeration import (
    Subgroup,
    enumerate_subgroups,
    subgroup_space_size,
)

__all__ = [
    "Subgroup",
    "enumerate_subgroups",
    "subgroup_space_size",
    "SubgroupFinding",
    "audit_subgroups",
    "adjust_for_multiple_testing",
    "GerrymanderingAuditor",
]
