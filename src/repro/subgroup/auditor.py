"""Intersectional subgroup auditing (paper Section IV.C).

Two complementary strategies:

* :func:`audit_subgroups` — exhaustive scan over enumerated attribute
  conjunctions, each finding carrying a Wilson confidence interval and a
  two-proportion significance test against the complement (the paper's
  sparsity caveat, made explicit);
* :class:`GerrymanderingAuditor` — a learned-oracle search in the spirit
  of Kearns et al.'s fairness-gerrymandering auditor: instead of
  enumerating conjunctions, fit a shallow decision tree to the model's
  outputs over the protected attributes and read the most disparate
  leaves as candidate subgroups.  Scales past the exponential enumeration
  wall at the cost of completeness.

The exhaustive scan is *anytime*: pass ``checkpoint_path`` and it
persists an atomic JSON checkpoint every ``checkpoint_every`` subgroups,
so a killed enumeration resumed with ``resume=True`` picks up from its
last frontier and produces the identical finding set as an uninterrupted
run.  Checkpoints carry a fingerprint of the run configuration and are
refused (``CheckpointError``) when data or parameters changed.
"""

from __future__ import annotations

import hashlib
import json
import uuid
from dataclasses import dataclass

import numpy as np

from repro._validation import (
    check_binary_array,
    check_positive_int,
    check_probability,
)
from repro.core.config import AuditConfig
from repro.data.dataset import TabularDataset
from repro.exceptions import AuditError, CheckpointError
from repro.kernel import (
    chunk_ranges,
    combined_codes,
    count_score_chunk,
    get_backend,
    joint_counts,
    read_spills,
    score_chunk,
)
from repro.kernel.shm import publish as shm_publish
from repro.models.preprocessing import OneHotEncoder
from repro.models.tree import DecisionTree
from repro.robustness.checkpoint import load_checkpoint, save_checkpoint
from repro.stats.tests import two_proportion_z_test, wilson_interval
from repro.subgroup.enumeration import Subgroup, enumerate_subgroups

__all__ = [
    "SubgroupFinding",
    "audit_subgroups",
    "adjust_for_multiple_testing",
    "GerrymanderingAuditor",
]


@dataclass(frozen=True)
class SubgroupFinding:
    """Disparity evidence for one subgroup versus its complement.

    ``adjusted_p_value`` is populated by
    :func:`adjust_for_multiple_testing`; when present, it is what
    :meth:`significant` checks — a scan over many subgroups must not
    treat raw per-test p-values as findings (paper IV.C).
    """

    subgroup: Subgroup
    rate: float
    complement_rate: float
    gap: float
    ci_low: float
    ci_high: float
    p_value: float
    adjusted_p_value: float | None = None

    def significant(self, alpha: float = 0.05) -> bool:
        """Is the disparity significant at ``alpha`` (adjusted when
        available)?"""
        p = self.p_value if self.adjusted_p_value is None else self.adjusted_p_value
        return p < alpha

    def __repr__(self) -> str:
        return (
            f"SubgroupFinding({self.subgroup.label()}, rate={self.rate:.3f} "
            f"vs {self.complement_rate:.3f}, gap={self.gap:+.3f}, "
            f"p={self.p_value:.4f})"
        )


def _jsonable(value):
    """Coerce numpy scalars to native Python for checkpoint payloads."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.str_):
        return str(value)
    return value


def _finding_to_payload(finding: SubgroupFinding) -> dict:
    return {
        "conditions": [
            [attribute, _jsonable(value)]
            for attribute, value in finding.subgroup.conditions
        ],
        "size": finding.subgroup.size,
        "rate": finding.rate,
        "complement_rate": finding.complement_rate,
        "gap": finding.gap,
        "ci_low": finding.ci_low,
        "ci_high": finding.ci_high,
        "p_value": finding.p_value,
    }


def _finding_from_payload(payload: dict, dataset: TabularDataset) -> SubgroupFinding:
    conditions = tuple(
        (attribute, value) for attribute, value in payload["conditions"]
    )

    def build_mask(conditions=conditions, dataset=dataset) -> np.ndarray:
        masks = [
            dataset.codes(attribute).mask(value)
            for attribute, value in conditions
        ]
        return masks[0] if len(masks) == 1 else np.logical_and.reduce(masks)

    return SubgroupFinding(
        subgroup=Subgroup(
            conditions=conditions,
            size=int(payload["size"]),
            mask_factory=build_mask,
        ),
        rate=float(payload["rate"]),
        complement_rate=float(payload["complement_rate"]),
        gap=float(payload["gap"]),
        ci_low=float(payload["ci_low"]),
        ci_high=float(payload["ci_high"]),
        p_value=float(payload["p_value"]),
    )


#: rows hashed/validated/counted per bounded-memory pass over a reader
_READER_CHUNK_ROWS = 1 << 20


def _hash_source(digest, source) -> None:
    """Feed a column source — array or bounded reader — into a digest.

    Chunked sha256 updates produce the same hex digest as one whole-array
    update, so packed and in-memory scans of identical content agree.
    """
    if isinstance(source, np.ndarray):
        digest.update(np.ascontiguousarray(source).tobytes())
        return
    for lo in range(0, source.n_rows, _READER_CHUNK_ROWS):
        chunk = source.read(lo, min(lo + _READER_CHUNK_ROWS, source.n_rows))
        digest.update(np.ascontiguousarray(chunk).tobytes())


def _scan_fingerprint(
    pred_source,
    dataset: TabularDataset,
    attributes: list[str],
    max_order: int,
    min_size: int,
) -> str:
    """Hash of everything that determines the scan's enumeration order
    and results — a checkpoint from a different run must not resume.

    ``pred_source`` may be the prediction array or, for packed datasets,
    a bounded column reader; either way the bytes (and so the digest)
    match, keeping checkpoints resumable across representations.
    """
    digest = hashlib.sha256()
    digest.update(
        json.dumps(
            {
                "n_rows": dataset.n_rows,
                "attributes": list(attributes),
                "max_order": max_order,
                "min_size": min_size,
            },
            sort_keys=True,
        ).encode()
    )
    _hash_source(digest, pred_source)
    open_column = getattr(dataset, "open_column", None)
    for attribute in attributes:
        if open_column is not None:
            _hash_source(digest, open_column(attribute))
        else:
            digest.update(np.asarray(dataset.column(attribute)).tobytes())
    return digest.hexdigest()


def _validate_binary_reader(reader, name: str = "predictions") -> int:
    """Chunked 0/1 validation of a packed column; returns the positive count.

    The bounded-memory stand-in for :func:`check_binary_array`: same
    rejections, but never materialises the column or full-size
    temporaries.
    """
    from repro.exceptions import ValidationError

    if reader.dtype.kind not in "iub":
        raise ValidationError(
            f"{name} must be an integer/boolean array, got dtype {reader.dtype}"
        )
    positives = 0
    for lo in range(0, reader.n_rows, _READER_CHUNK_ROWS):
        chunk = reader.read(lo, min(lo + _READER_CHUNK_ROWS, reader.n_rows))
        bad = (chunk != 0) & (chunk != 1)
        if bad.any():
            raise ValidationError(
                f"{name} must contain only 0/1 values, found "
                f"{np.unique(chunk[bad]).tolist()[:5]}"
            )
        positives += int(chunk.sum())
    return positives


def _inside_counts(
    predictions: np.ndarray,
    dataset: TabularDataset,
    subgroups: list[Subgroup],
) -> list[tuple[int, int]]:
    """(positives_inside, n_inside) per subgroup from joint contingencies.

    One ``np.bincount`` per attribute subset covers every subgroup of
    that subset, so the whole enumeration is counted in O(n · subsets)
    instead of O(n · subgroups).
    """
    by_subset: dict = {}
    entries: list[tuple[int, int]] = []
    for subgroup in subgroups:
        attrs = tuple(attribute for attribute, _ in subgroup.conditions)
        cached = by_subset.get(attrs)
        if cached is None:
            tables = [dataset.codes(attribute) for attribute in attrs]
            codes, n_cells = combined_codes(tables)
            cached = (tables, joint_counts(codes, n_cells, predictions))
            by_subset[attrs] = cached
        tables, counts = cached
        cell = 0
        for table, (_, value) in zip(tables, subgroup.conditions):
            cell = cell * table.n_categories + table.index[value]
        entries.append((int(counts[cell, 1]), subgroup.size))
    return entries


def _inside_counts_ooc(
    pred_source,
    dataset,
    subgroups: list[Subgroup],
) -> list[tuple[int, int]]:
    """:func:`_inside_counts` for packed datasets, in bounded memory.

    ``dataset.subset_counts`` accumulates each attribute subset's joint
    contingency chunk by chunk (integer bincounts, so bit-identical to
    the in-memory tensor); only the ``(n_cells, 2)`` tensors are held.
    """
    by_subset: dict = {}
    entries: list[tuple[int, int]] = []
    for subgroup in subgroups:
        attrs = tuple(attribute for attribute, _ in subgroup.conditions)
        cached = by_subset.get(attrs)
        if cached is None:
            tables = [dataset.codes(attribute) for attribute in attrs]
            cached = (tables, dataset.subset_counts(attrs, pred_source))
            by_subset[attrs] = cached
        tables, counts = cached
        cell = 0
        for table, (_, value) in zip(tables, subgroup.conditions):
            cell = cell * table.n_categories + table.index[value]
        entries.append((int(counts[cell, 1]), subgroup.size))
    return entries


def _scan_sources(
    pred_source,
    dataset,
    subgroups: list[Subgroup],
    token: str,
    chunk_rows: int,
) -> tuple[dict, list[tuple[int, int, int]]]:
    """Build the zero-copy worker sources and per-subgroup work items.

    Packed datasets contribute ``npy`` manifests (workers re-open the
    column files themselves); in-memory datasets have their code arrays
    and predictions published once into shared memory (``shm``
    manifests).  Either way a work item is three integers — no column
    array crosses the pickle boundary.
    """
    packed = hasattr(dataset, "codes_reader")

    def column_manifest(attribute: str) -> dict:
        if packed:
            return dataset.codes_reader(attribute).manifest()
        return shm_publish(dataset.codes(attribute).codes)

    if isinstance(pred_source, np.ndarray):
        pred_manifest = shm_publish(pred_source)
    else:
        pred_manifest = pred_source.manifest()

    subset_index: dict[tuple, int] = {}
    subsets: list[dict] = []
    items: list[tuple[int, int, int]] = []
    for subgroup in subgroups:
        attrs = tuple(attribute for attribute, _ in subgroup.conditions)
        position = subset_index.get(attrs)
        if position is None:
            tables = [dataset.codes(attribute) for attribute in attrs]
            position = len(subsets)
            subset_index[attrs] = position
            subsets.append(
                {
                    "columns": [column_manifest(a) for a in attrs],
                    "n_categories": [t.n_categories for t in tables],
                    "tables": tables,
                }
            )
        tables = subsets[position]["tables"]
        cell = 0
        for table, (_, value) in zip(tables, subgroup.conditions):
            cell = cell * table.n_categories + table.index[value]
        items.append((position, cell, subgroup.size))
    sources = {
        "token": token,
        "n_rows": dataset.n_rows,
        "chunk_rows": int(chunk_rows),
        "predictions": pred_manifest,
        "subsets": [
            {k: v for k, v in subset.items() if k != "tables"}
            for subset in subsets
        ],
    }
    return sources, items


def _merge_spills(tracer, metrics, spill_dir) -> None:
    """Fold pool-worker telemetry spills into the parent tracer/registry.

    Tolerant by construction: :func:`repro.kernel.read_spills` already
    skips torn lines from killed workers, and a delta that fails
    :meth:`~repro.observability.MetricsRegistry.merge_delta` validation
    is dropped whole — worker telemetry is best-effort evidence and must
    never corrupt the parent's, or fail a scan that scored correctly.
    """
    from repro.exceptions import ValidationError

    for spill in read_spills(spill_dir):
        if spill["spans"] and getattr(tracer, "enabled", False):
            offset = 0.0
            if spill["created"] is not None:
                offset = spill["created"] - tracer.created
            tracer.absorb(spill["spans"], clock_offset=offset)
        for delta in spill["deltas"]:
            try:
                metrics.merge_delta(delta)
            except ValidationError:
                continue


#: sentinel distinguishing "keyword passed" from "take it from config"
_FROM_CONFIG = object()

#: sentinel distinguishing "legacy kwarg passed" from its default
_UNSET = object()

_LEGACY_KWARGS_MESSAGE = (
    "passing scan settings ({names}) as individual keywords is "
    "deprecated; bundle them into a ScanConfig and pass scan_config=... "
    "(or set AuditConfig.scan)"
)


def _resolve_scan_config(scan_config, config, legacy: dict):
    """Merge deprecated per-keyword scan settings into a ScanConfig.

    Precedence, lowest to highest: defaults < ``AuditConfig`` (loose
    subgroup knobs, or its explicit ``scan``) < ``scan_config=`` <
    explicitly-passed legacy keywords.  Any legacy keyword emits one
    :class:`DeprecationWarning` naming the offending keywords — the
    same shim contract :func:`repro.core.audit._resolve_config`
    established for :class:`AuditConfig` — then overrides the
    corresponding field.  The override goes through
    :meth:`ScanConfig.replace`, so legacy values get ScanConfig's
    validation (``checkpoint_every < 1``, ``max_order < 1``, … raise a
    ``ValueError`` naming the field).
    """
    import warnings

    from repro.core.config import ScanConfig

    if scan_config is not None:
        base = scan_config
    elif config is not None:
        base = ScanConfig.from_audit(config)
    else:
        base = ScanConfig()
    passed = {k: v for k, v in legacy.items() if v is not _UNSET}
    if passed:
        warnings.warn(
            _LEGACY_KWARGS_MESSAGE.format(names=", ".join(sorted(passed))),
            DeprecationWarning,
            stacklevel=3,
        )
        base = base.replace(**passed)
    return base


def audit_subgroups(
    predictions,
    dataset: TabularDataset,
    attributes: list[str] | None = None,
    max_order: int = _UNSET,
    min_size: int = _UNSET,
    alpha: float = _UNSET,
    checkpoint_path=None,
    checkpoint_every: int = _UNSET,
    resume: bool = False,
    on_progress=None,
    tracer=_FROM_CONFIG,
    jobs: int = _UNSET,
    executor_factory=None,
    *,
    metrics=None,
    config: AuditConfig | None = None,
    scan_config=None,
    state_path=None,
) -> list[SubgroupFinding]:
    """Exhaustive subgroup disparity scan, most disparate first.

    Each subgroup's selection rate is compared to the rate of everyone
    *outside* the subgroup; gaps are signed (negative = subgroup
    disadvantaged).  Subgroups below ``min_size`` are not audited at all:
    the paper's Section IV.C position is that findings on such groups are
    statistically meaningless, so we surface the threshold rather than
    the noise.

    Parameters
    ----------
    checkpoint_path:
        When given, an atomic JSON checkpoint of the scan frontier is
        written here every ``checkpoint_every`` subgroups, making the
        scan *anytime* — a killed run loses at most one checkpoint
        interval of work.
    resume:
        Restart from the checkpoint at ``checkpoint_path``.  A missing
        checkpoint starts a fresh scan; a corrupt one, or one written by
        a different configuration/dataset, raises
        :class:`~repro.exceptions.CheckpointError` rather than silently
        mixing runs.
    on_progress:
        Optional callable ``(evaluated, total)`` invoked after each
        subgroup — a cancellation/reporting hook for long scans.
    tracer:
        Optional :class:`~repro.observability.Tracer` (defaults to the
        process-current one).  The whole scan becomes one
        ``subgroups.scan`` span with progress events at each checkpoint
        interval; checkpoint writes are individually timed into the
        ``subgroups.checkpoint_write`` histogram, and the
        ``subgroups.evaluated`` counter tracks scan throughput.
    jobs:
        Number of worker processes for the scan.  The default ``1`` runs
        serially; any higher value partitions the enumeration into
        chunks aligned to the checkpoint interval and dispatches them to
        a ``concurrent.futures`` pool, merging results in enumeration
        order — findings, p-values, and checkpoint files are
        byte-identical to the serial scan, so serial and parallel runs
        can resume each other's checkpoints.  Requires the ``"kernel"``
        backend.  Workers attach to the scan's sources by name — shared
        memory segments for in-memory datasets, packed column files for
        :class:`~repro.data.ooc.MemmapDataset` — and derive their own
        counts; no column array is ever pickled to a worker.
    executor_factory:
        Callable ``(jobs) -> Executor`` overriding the default
        ``ProcessPoolExecutor`` — a chaos/testing hook for injecting
        thread pools or failing workers.
    metrics:
        Optional :class:`~repro.observability.MetricsRegistry` the
        scan's counters (and merged pool-worker deltas) record into;
        defaults to the process-current registry.
    config:
        An :class:`~repro.core.config.AuditConfig` supplying defaults
        for ``max_order``, ``min_size``, ``alpha``, ``jobs``, and
        ``tracer`` — the same object every other audit entry point
        takes.  When it carries an explicit ``scan``
        (:class:`~repro.core.config.ScanConfig`), that wins over the
        loose knobs.
    scan_config:
        A :class:`~repro.core.config.ScanConfig` controlling the scan
        outright — strategy, lattice shape, significance, checkpoint
        cadence, parallelism.  Overrides ``config``; overridden only by
        explicitly-passed legacy keywords (which are deprecated: each
        use emits a :class:`DeprecationWarning` asking for a
        ``ScanConfig``).  With ``strategy="best_first"`` or
        ``"incremental"`` the call dispatches to
        :func:`repro.subgroup.search.scan_subgroups` and returns its
        findings — the same flagged set, with adjusted p-values already
        attached; do **not** run :func:`adjust_for_multiple_testing`
        on that result (the censored correction cannot be re-derived
        from the surviving findings alone).
    state_path:
        Where an ``"incremental"`` scan persists its
        :class:`~repro.subgroup.search.ScanState` (required for that
        strategy; ignored otherwise).
    """
    from repro.observability.metrics import get_metrics
    from repro.observability.trace import get_tracer

    scan = _resolve_scan_config(
        scan_config,
        config,
        {
            "max_order": max_order,
            "min_size": min_size,
            "alpha": alpha,
            "checkpoint_every": checkpoint_every,
            "jobs": jobs,
        },
    )
    base = config if config is not None else AuditConfig()
    tracer = base.tracer if tracer is _FROM_CONFIG else tracer
    tracer = tracer if tracer is not None else get_tracer()
    metrics = metrics if metrics is not None else get_metrics()
    if scan.strategy != "exhaustive":
        # Strategy dispatch: the lattice-pruned / incremental engine
        # returns the provably-identical flagged set with corrections
        # already attached (its censored family bookkeeping cannot be
        # re-derived from the surviving findings alone — do not run
        # adjust_for_multiple_testing on this result).
        from repro.subgroup.search import scan_subgroups

        return scan_subgroups(
            predictions,
            dataset,
            attributes,
            config=scan,
            checkpoint_path=checkpoint_path,
            resume=resume,
            state_path=state_path,
            on_progress=on_progress,
            tracer=tracer,
            metrics=metrics,
            executor_factory=executor_factory,
        ).findings
    max_order = scan.max_order
    min_size = scan.min_size
    alpha = scan.alpha
    jobs = scan.jobs
    checkpoint_every = scan.checkpoint_every
    # A packed dataset hands out memmapped columns; when the predictions
    # are one of them (``dataset.labels()``), recover the bounded reader
    # behind it and validate/hash/count through buffered reads instead
    # of materialising the mapping.
    pred_reader = None
    reader_for = getattr(dataset, "reader_for", None)
    if reader_for is not None and isinstance(predictions, np.ndarray):
        pred_reader = reader_for(predictions)
    if pred_reader is not None:
        positives_total = _validate_binary_reader(pred_reader, "predictions")
        n_total = dataset.n_rows
    else:
        predictions = check_binary_array(predictions, "predictions")
        if len(predictions) != dataset.n_rows:
            raise AuditError("predictions length does not match dataset")
        n_total = len(predictions)
        positives_total = int(predictions.sum())
    check_probability(alpha, "alpha")
    check_positive_int(checkpoint_every, "checkpoint_every")
    check_positive_int(jobs, "jobs")
    if jobs > 1 and get_backend() != "kernel":
        raise AuditError(
            "jobs > 1 requires the 'kernel' backend; the reference path "
            "is serial-only (repro.kernel.set_backend)"
        )
    if attributes is None:
        attributes = dataset.schema.protected_names
    if not attributes:
        raise AuditError("no attributes to audit")
    if resume and checkpoint_path is None:
        raise CheckpointError("resume=True requires a checkpoint_path")

    subgroups = enumerate_subgroups(
        dataset, attributes, max_order=max_order, min_size=min_size
    )
    fingerprint = ""
    if checkpoint_path is not None:
        fingerprint = _scan_fingerprint(
            pred_reader if pred_reader is not None else predictions,
            dataset,
            attributes,
            max_order,
            min_size,
        )

    start = 0
    findings: list[SubgroupFinding] = []
    if resume:
        from pathlib import Path

        # A missing checkpoint means nothing was saved yet: fresh scan.
        # A corrupt or foreign checkpoint raises — never mix runs.
        payload = (
            load_checkpoint(checkpoint_path, fingerprint)
            if Path(checkpoint_path).exists()
            else None
        )
        if payload is not None:
            # A payload that passed the envelope + fingerprint checks can
            # still be structurally wrong (hand-edited, wrong producer);
            # surface that as a CheckpointError, not a raw KeyError.
            try:
                start = int(payload["next_index"])
                findings = [
                    _finding_from_payload(entry, dataset)
                    for entry in payload["findings"]
                ]
            except (KeyError, TypeError, ValueError) as exc:
                raise CheckpointError(
                    f"scan checkpoint {checkpoint_path} has the wrong "
                    f"layout: {type(exc).__name__}: {exc}",
                    path=checkpoint_path,
                ) from exc

    total = len(subgroups)
    use_kernel = get_backend() == "kernel"
    # Count pairs are derived up front only for the serial kernel scan;
    # the parallel path ships source manifests and lets workers count
    # (see _scan_sources / count_score_chunk).
    entries = None
    if use_kernel and jobs == 1:
        if hasattr(dataset, "subset_counts"):
            entries = _inside_counts_ooc(
                pred_reader if pred_reader is not None else predictions,
                dataset,
                subgroups,
            )
        else:
            entries = _inside_counts(predictions, dataset, subgroups)

    with tracer.span(
        "subgroups.scan",
        total=total,
        resumed_from=start,
        max_order=max_order,
        min_size=min_size,
        jobs=jobs,
    ) as scan_span:

        def write_checkpoint(evaluated: int) -> None:
            if checkpoint_path is not None and (
                evaluated % checkpoint_every == 0 or evaluated == total
            ):
                with metrics.timer("subgroups.checkpoint_write"):
                    save_checkpoint(
                        checkpoint_path,
                        {
                            "next_index": evaluated,
                            "total": total,
                            "complete": evaluated == total,
                            "findings": [
                                _finding_to_payload(f) for f in findings
                            ],
                        },
                        fingerprint=fingerprint,
                    )
                scan_span.event("checkpoint", evaluated=evaluated, total=total)

        if jobs == 1:
            # One vectorized inference batch scores the whole remaining
            # scan (z-tests + Wilson intervals for every subgroup at
            # once); the loop below only assembles findings and keeps
            # the checkpoint/progress cadence identical to the
            # pre-batch per-subgroup scoring.
            payloads = (
                score_chunk(entries[start:], positives_total, n_total)
                if use_kernel
                else None
            )
            for index in range(start, total):
                subgroup = subgroups[index]
                if use_kernel:
                    payload = payloads[index - start]
                    if payload is not None:
                        findings.append(
                            SubgroupFinding(subgroup=subgroup, **payload)
                        )
                else:
                    inside = predictions[subgroup.mask]
                    outside = predictions[~subgroup.mask]
                    if len(outside) > 0:
                        rate = float(inside.mean())
                        complement = float(outside.mean())
                        test = two_proportion_z_test(
                            int(inside.sum()), len(inside),
                            int(outside.sum()), len(outside),
                        )
                        lo, hi = wilson_interval(int(inside.sum()), len(inside))
                        findings.append(
                            SubgroupFinding(
                                subgroup=subgroup,
                                rate=rate,
                                complement_rate=complement,
                                gap=rate - complement,
                                ci_low=lo,
                                ci_high=hi,
                                p_value=test.p_value,
                            )
                        )
                evaluated = index + 1
                metrics.counter("subgroups.evaluated").inc()
                write_checkpoint(evaluated)
                if on_progress is not None:
                    on_progress(evaluated, total)
        else:
            import shutil
            import tempfile
            from concurrent.futures import ProcessPoolExecutor

            factory = executor_factory or (
                lambda n: ProcessPoolExecutor(max_workers=n)
            )
            # Workers spill their telemetry (chunk spans continuing this
            # scan's trace context, plus metric deltas) to files the
            # parent merges on join — but only for the real process
            # pool: an injected executor may run chunks as threads in
            # this very process, where the spill's registry/tracer swaps
            # would race the parent's.
            spill_dir = None
            scan_context = None
            if executor_factory is None:
                spill_dir = tempfile.mkdtemp(prefix="repro-scan-spill-")
                context = tracer.current_context()
                scan_context = context.to_dict() if context else None
            # Chunk boundaries sit on absolute multiples of the checkpoint
            # interval, so the parallel scan checkpoints at exactly the
            # serial cadence and the files interleave/resume either way.
            # Without a checkpoint there is no cadence to preserve, so
            # chunks grow to amortise the per-dispatch round trip.
            dispatch = checkpoint_every
            if checkpoint_path is None:
                dispatch = max(dispatch, -(-(total - start) // (jobs * 4)))
            # Workers attach to the scan's sources by name (shared
            # memory for in-memory datasets, packed files on disk) and
            # derive their own count pairs: a submitted chunk is source
            # manifests plus (subset, cell, size) integer triples —
            # never a column array.  The token keys each worker's
            # per-scan source cache.
            scan_token = fingerprint or uuid.uuid4().hex
            sources, items = _scan_sources(
                pred_reader if pred_reader is not None else predictions,
                dataset,
                subgroups,
                scan_token,
                getattr(dataset, "chunk_rows", _READER_CHUNK_ROWS),
            )
            ranges = chunk_ranges(start, total, dispatch)
            try:
                with factory(jobs) as pool:
                    futures = [
                        pool.submit(
                            count_score_chunk,
                            sources, items[lo:hi], positives_total, n_total,
                            {
                                "dir": spill_dir,
                                "lo": lo,
                                "hi": hi,
                                "context": scan_context,
                                "run_id": getattr(tracer, "run_id", ""),
                            }
                            if spill_dir is not None
                            else None,
                        )
                        for lo, hi in ranges
                    ]
                    for (lo, hi), future in zip(ranges, futures):
                        for offset, payload in enumerate(future.result()):
                            if payload is not None:
                                findings.append(
                                    SubgroupFinding(
                                        subgroup=subgroups[lo + offset],
                                        **payload,
                                    )
                                )
                        metrics.counter("subgroups.evaluated").inc(hi - lo)
                        write_checkpoint(hi)
                        if on_progress is not None:
                            for index in range(lo, hi):
                                on_progress(index + 1, total)
            finally:
                if spill_dir is not None:
                    _merge_spills(tracer, metrics, spill_dir)
                    shutil.rmtree(spill_dir, ignore_errors=True)
        scan_span.set(evaluated=total - start)

    findings.sort(key=lambda f: (-abs(f.gap), f.subgroup.label()))
    return findings


def adjust_for_multiple_testing(
    findings: list[SubgroupFinding], method: str = "holm"
) -> list[SubgroupFinding]:
    """Attach multiplicity-adjusted p-values to a subgroup scan.

    ``method`` is ``"holm"`` (family-wise control; the defensible default
    for legal findings) or ``"bh"`` (Benjamini–Hochberg FDR control).
    Returns new findings in the original order; ``significant()`` then
    checks the adjusted values.
    """
    from dataclasses import replace

    from repro.stats.multiple_testing import (
        benjamini_hochberg,
        holm_bonferroni,
    )

    if not findings:
        return []
    if method == "holm":
        adjusted = holm_bonferroni([f.p_value for f in findings])
    elif method == "bh":
        adjusted = benjamini_hochberg([f.p_value for f in findings])
    else:
        raise AuditError(
            f"unknown correction method {method!r}; use 'holm' or 'bh'"
        )
    return [
        replace(finding, adjusted_p_value=float(p))
        for finding, p in zip(findings, adjusted)
    ]


class GerrymanderingAuditor:
    """Learned-oracle subgroup search (Kearns et al. style).

    Fits a shallow :class:`DecisionTree` to the audited predictions using
    one-hot encodings of the protected attributes as inputs; tree leaves
    are regions of the protected space where the model's selection rate is
    internally homogeneous and maximally different from elsewhere — i.e.
    candidate gerrymandered subgroups.  The most disparate leaf is
    returned as the audit's certificate.
    """

    def __init__(
        self,
        max_depth: int = 3,
        min_leaf_fraction: float = 0.02,
    ):
        self.max_depth = check_positive_int(max_depth, "max_depth")
        self.min_leaf_fraction = check_probability(
            min_leaf_fraction, "min_leaf_fraction"
        )

    def find_worst_subgroup(
        self,
        predictions,
        dataset: TabularDataset,
        attributes: list[str] | None = None,
    ) -> SubgroupFinding:
        """The leaf subgroup with the largest absolute selection-rate gap."""
        predictions = check_binary_array(predictions, "predictions")
        if len(predictions) != dataset.n_rows:
            raise AuditError("predictions length does not match dataset")
        if attributes is None:
            attributes = dataset.schema.protected_names
        if not attributes:
            raise AuditError("no attributes to audit")

        blocks, encoders = [], {}
        feature_names: list[tuple[str, object]] = []
        for attribute in attributes:
            encoder = OneHotEncoder()
            blocks.append(encoder.fit_transform(dataset.column(attribute)))
            encoders[attribute] = encoder
            feature_names.extend(
                (attribute, category) for category in encoder.categories
            )
        X = np.hstack(blocks)

        min_leaf = max(1, int(self.min_leaf_fraction * dataset.n_rows))
        oracle = DecisionTree(
            max_depth=self.max_depth, min_samples_leaf=min_leaf
        )
        if len(np.unique(predictions)) < 2:
            raise AuditError(
                "predictions are constant; no subgroup disparity can exist"
            )
        oracle.fit(X, predictions)

        # Assign every row to its leaf and compare leaf rates.
        leaf_probs = oracle.predict_proba(X)
        if get_backend() == "reference":
            return self._best_leaf_reference(
                predictions, leaf_probs, min_leaf, X, feature_names
            )
        # Kernel path: one bincount pass yields every leaf's size and
        # positive count, and a single batched inference call scores all
        # candidate leaves at once — bit-identical to the per-leaf
        # scalar loop kept behind the reference backend.
        from repro.stats.batch import batch_score_counts

        leaf_values, leaf_codes = np.unique(leaf_probs, return_inverse=True)
        n_in = np.bincount(leaf_codes, minlength=len(leaf_values))
        pos_in = np.bincount(
            leaf_codes, weights=predictions, minlength=len(leaf_values)
        ).astype(np.int64)
        n_total = len(predictions)
        candidates = np.flatnonzero(
            (n_in >= min_leaf) & (n_total - n_in > 0)
        )
        if len(candidates) == 0:
            raise AuditError("oracle produced no usable leaves")
        payloads = batch_score_counts(
            pos_in[candidates], n_in[candidates],
            int(predictions.sum()), n_total,
        )
        gaps = np.array([payload["gap"] for payload in payloads])
        position = int(np.argmax(np.abs(gaps)))
        winner = int(candidates[position])
        mask = leaf_codes == winner
        conditions = self._describe_leaf(X, mask, feature_names)
        return SubgroupFinding(
            subgroup=Subgroup(
                conditions=conditions, size=int(n_in[winner]), mask=mask
            ),
            **payloads[position],
        )

    def _best_leaf_reference(
        self,
        predictions: np.ndarray,
        leaf_probs: np.ndarray,
        min_leaf: int,
        X: np.ndarray,
        feature_names: list,
    ) -> SubgroupFinding:
        """Pre-batch per-leaf scoring loop, kept verbatim as the
        executable specification for the batched leaf scoring."""
        best: SubgroupFinding | None = None
        for leaf_value in np.unique(leaf_probs):
            mask = leaf_probs == leaf_value
            inside = predictions[mask]
            outside = predictions[~mask]
            if len(inside) < min_leaf or len(outside) == 0:
                continue
            rate = float(inside.mean())
            complement = float(outside.mean())
            gap = rate - complement
            test = two_proportion_z_test(
                int(inside.sum()), len(inside), int(outside.sum()), len(outside)
            )
            lo, hi = wilson_interval(int(inside.sum()), len(inside))
            conditions = self._describe_leaf(X, mask, feature_names)
            finding = SubgroupFinding(
                subgroup=Subgroup(
                    conditions=conditions, size=int(mask.sum()), mask=mask
                ),
                rate=rate,
                complement_rate=complement,
                gap=gap,
                ci_low=lo,
                ci_high=hi,
                p_value=test.p_value,
            )
            if best is None or abs(finding.gap) > abs(best.gap):
                best = finding
        if best is None:
            raise AuditError("oracle produced no usable leaves")
        return best

    @staticmethod
    def _describe_leaf(
        X: np.ndarray, mask: np.ndarray, feature_names: list
    ) -> tuple:
        """Conditions (attribute, value) constant across all leaf members."""
        conditions = []
        members = X[mask]
        for j, (attribute, value) in enumerate(feature_names):
            column = members[:, j]
            if np.all(column == 1.0):
                conditions.append((attribute, value))
        return tuple(conditions)
