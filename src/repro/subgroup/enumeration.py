"""Subgroup enumeration with explicit complexity accounting (paper IV.C).

The paper: *"computational issues arise when trying to drill down to more
granular subgroups, since complexity increases exponentially."*  The
enumerator makes that cost visible: it reports, for each conjunction
order, how many subgroups exist, and refuses to enumerate past an
explicit budget instead of silently hanging.

Sizing is done by the kernel's joint-contingency engine: one
``np.bincount`` over combined codes counts every value combination of an
attribute subset at once, instead of one O(n) mask build per subgroup.
Member masks are materialised lazily from the kernel's cached
per-category masks (``np.logical_and.reduce``) only when actually read.
"""

from __future__ import annotations

from itertools import combinations, product

import numpy as np

from repro._validation import check_positive_int
from repro.data.dataset import TabularDataset
from repro.exceptions import AuditError, ValidationError
from repro.kernel import combined_codes, joint_counts

__all__ = ["Subgroup", "enumerate_subgroups", "subgroup_space_size"]


class Subgroup:
    """A conjunction of attribute=value conditions and its member mask.

    ``mask`` is computed on first access when the subgroup was built with
    a ``mask_factory`` (the enumerator's cached-mask conjunction); scans
    that never touch the mask — the kernel path scores from counts —
    skip the O(n) materialisation entirely.
    """

    __slots__ = ("conditions", "size", "_mask", "_mask_factory")

    def __init__(self, conditions: tuple, size: int, mask=None, mask_factory=None):
        self.conditions = tuple(conditions)
        self.size = int(size)
        if mask is None and mask_factory is None:
            raise ValidationError("Subgroup requires a mask or a mask_factory")
        self._mask = mask
        self._mask_factory = mask_factory

    @property
    def mask(self) -> np.ndarray:
        """Boolean member mask (materialised lazily, then kept)."""
        if self._mask is None:
            self._mask = self._mask_factory()
        return self._mask

    @property
    def order(self) -> int:
        """Number of conjoined conditions."""
        return len(self.conditions)

    def label(self) -> str:
        """Readable label like ``gender=female ∧ race=caucasian``."""
        return " ∧ ".join(f"{a}={v}" for a, v in self.conditions)

    def __repr__(self) -> str:
        return f"Subgroup({self.label()}, n={self.size})"


def subgroup_space_size(category_counts: list[int], max_order: int) -> int:
    """Number of subgroups definable by conjunctions up to ``max_order``.

    ``category_counts`` holds the number of categories per attribute.
    For attributes with c_1..c_k categories, order-m conjunctions number
    sum over m-subsets of the product of their category counts — the
    exponential blow-up the paper warns about.
    """
    if any(c < 1 for c in category_counts):
        raise ValidationError("category counts must be positive")
    check_positive_int(max_order, "max_order")
    total = 0
    k = len(category_counts)
    for order in range(1, min(max_order, k) + 1):
        for subset in combinations(range(k), order):
            size = 1
            for index in subset:
                size *= category_counts[index]
            total += size
    return total


def _conjunction_factory(tables: list, values: tuple):
    """Deferred AND over the tables' cached per-category masks."""

    def build(tables=tables, values=values) -> np.ndarray:
        if len(tables) == 1:
            return tables[0].mask(values[0])
        return np.logical_and.reduce(
            [table.mask(value) for table, value in zip(tables, values)]
        )

    return build


def enumerate_subgroups(
    dataset: TabularDataset,
    attributes: list[str],
    max_order: int = 2,
    min_size: int = 1,
    budget: int = 100_000,
) -> list[Subgroup]:
    """All attribute-conjunction subgroups up to ``max_order``.

    Parameters
    ----------
    attributes:
        Discrete columns to conjoin (typically the protected ones, but
        legitimate factors can be included for context strata).
    min_size:
        Subgroups with fewer members are dropped (they would be
        statistically unusable anyway; see Section IV.C).
    budget:
        Upper bound on the subgroup-space size; exceeding it raises
        :class:`AuditError` with the computed size, so callers confront
        the exponential cost explicitly.
    """
    if not attributes:
        raise ValidationError("attributes must be non-empty")
    check_positive_int(max_order, "max_order")
    categories: dict[str, list] = {}
    for attribute in attributes:
        column = dataset.schema[attribute]
        if not column.is_discrete:
            raise AuditError(
                f"subgroup enumeration requires discrete columns; "
                f"{attribute!r} is {column.kind}"
            )
        if hasattr(dataset, "present_categories"):
            # packed datasets recorded the present categories at pack
            # time — no column scan needed.
            categories[attribute] = dataset.present_categories(attribute)
        else:
            present = set(dataset.column(attribute).tolist())
            categories[attribute] = [
                c for c in column.categories if c in present
            ]

    space = subgroup_space_size(
        [len(categories[a]) for a in attributes], max_order
    )
    if space > budget:
        raise AuditError(
            f"subgroup space has {space} members, exceeding budget {budget}; "
            "raise the budget explicitly or lower max_order (paper IV.C: "
            "complexity increases exponentially)"
        )

    tables = {a: dataset.codes(a) for a in attributes}
    chunked_counts = getattr(dataset, "subset_counts", None)
    subgroups: list[Subgroup] = []
    for order in range(1, min(max_order, len(attributes)) + 1):
        for attrs in combinations(attributes, order):
            attr_tables = [tables[a] for a in attrs]
            if chunked_counts is not None:
                # bounded-memory accumulation over the packed code
                # files; bit-identical to the one-shot bincount below.
                sizes = chunked_counts(attrs)
            else:
                codes, n_cells = combined_codes(attr_tables)
                sizes = joint_counts(codes, n_cells)
            for values in product(*(categories[a] for a in attrs)):
                cell = 0
                for table, value in zip(attr_tables, values):
                    cell = cell * table.n_categories + table.index[value]
                size = int(sizes[cell])
                if size < min_size:
                    continue
                subgroups.append(
                    Subgroup(
                        conditions=tuple(zip(attrs, values)),
                        size=size,
                        mask_factory=_conjunction_factory(attr_tables, values),
                    )
                )
    return subgroups
