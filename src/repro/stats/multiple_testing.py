"""Multiple-testing corrections for subgroup scans (paper Section IV.C).

An intersectional audit tests tens or hundreds of subgroups; at α = 0.05
a clean model still "fails" several of them by chance.  The paper's
sparsity warning therefore needs family-wise control:

* :func:`holm_bonferroni` — strong FWER control, no independence
  assumptions (the defensible default for legal findings);
* :func:`benjamini_hochberg` — FDR control, more powerful when many
  subgroups are genuinely disparate.

Both return adjusted p-values aligned with the input order, so callers
can simply compare against their original α.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_array_1d
from repro.exceptions import ValidationError

__all__ = ["holm_bonferroni", "benjamini_hochberg"]


def _validated(p_values) -> np.ndarray:
    p = check_array_1d(p_values, "p_values").astype(float)
    if len(p) == 0:
        raise ValidationError("p_values must be non-empty")
    if np.any((p < 0) | (p > 1)) or np.any(np.isnan(p)):
        raise ValidationError("p_values must lie in [0, 1]")
    return p


def holm_bonferroni(p_values) -> np.ndarray:
    """Holm's step-down adjusted p-values (strong FWER control).

    adjusted_(i) = max over j ≤ i of min(1, (m − j + 1) · p_(j))
    where p_(1) ≤ … ≤ p_(m).
    """
    p = _validated(p_values)
    m = len(p)
    order = np.argsort(p, kind="mergesort")
    adjusted_sorted = np.empty(m)
    running_max = 0.0
    for rank, index in enumerate(order):
        value = min(1.0, (m - rank) * p[index])
        running_max = max(running_max, value)
        adjusted_sorted[rank] = running_max
    adjusted = np.empty(m)
    adjusted[order] = adjusted_sorted
    return adjusted


def benjamini_hochberg(p_values) -> np.ndarray:
    """Benjamini–Hochberg adjusted p-values (FDR control).

    adjusted_(i) = min over j ≥ i of min(1, m · p_(j) / j).
    """
    p = _validated(p_values)
    m = len(p)
    order = np.argsort(p, kind="mergesort")
    adjusted_sorted = np.empty(m)
    running_min = 1.0
    for rank in range(m - 1, -1, -1):
        index = order[rank]
        value = min(1.0, m * p[index] / (rank + 1))
        running_min = min(running_min, value)
        adjusted_sorted[rank] = running_min
    adjusted = np.empty(m)
    adjusted[order] = adjusted_sorted
    return adjusted
