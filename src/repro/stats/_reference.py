"""Pre-batch scalar inference implementations, kept verbatim.

ISSUE 5 turned the public primitives of :mod:`repro.stats.tests` into
thin wrappers over the vectorized engine in :mod:`repro.stats.batch`.
The original scalar implementations live here, byte-for-byte as they
were before the batch engine existed, and are executed whenever the
``"reference"`` kernel backend is selected
(:func:`repro.kernel.use_backend`) — so batch↔scalar equivalence stays
testable forever, exactly like the PR 3 contingency kernel.

Nothing here should be "improved": this module is the executable
specification the batch engine is compared against.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np
from scipy import stats as sp_stats

from repro._validation import (
    check_array_1d,
    check_positive_int,
    check_probability,
    check_random_state,
)
from repro.exceptions import ValidationError

__all__ = [
    "two_proportion_z_test",
    "permutation_test",
    "bootstrap_ci",
    "wilson_interval",
    "min_detectable_gap",
]


def two_proportion_z_test(
    successes_a: int, n_a: int, successes_b: int, n_b: int
) -> tuple[float, float]:
    """Scalar (statistic, p_value) of the pooled two-proportion z-test."""
    for name, value in (
        ("successes_a", successes_a),
        ("n_a", n_a),
        ("successes_b", successes_b),
        ("n_b", n_b),
    ):
        if value < 0:
            raise ValidationError(f"{name} must be non-negative, got {value}")
    if n_a == 0 or n_b == 0:
        raise ValidationError("both groups must be non-empty")
    if successes_a > n_a or successes_b > n_b:
        raise ValidationError("successes cannot exceed group size")

    p_a = successes_a / n_a
    p_b = successes_b / n_b
    pooled = (successes_a + successes_b) / (n_a + n_b)
    variance = pooled * (1 - pooled) * (1 / n_a + 1 / n_b)
    if variance == 0:
        # Degenerate: all outcomes identical in the pooled sample.
        z = 0.0 if p_a == p_b else float("inf")
        p_value = 1.0 if p_a == p_b else 0.0
        return z, p_value
    z = (p_a - p_b) / np.sqrt(variance)
    p_value = float(2.0 * sp_stats.norm.sf(abs(z)))
    return float(z), p_value


def permutation_test(
    x,
    y,
    statistic: Callable[[np.ndarray, np.ndarray], float] | None = None,
    n_permutations: int = 2000,
    random_state: int | np.random.Generator | None = None,
) -> tuple[float, float]:
    """Scalar (observed, p_value) of the shuffle-loop permutation test."""
    x = check_array_1d(x, "x").astype(float)
    y = check_array_1d(y, "y").astype(float)
    if len(x) == 0 or len(y) == 0:
        raise ValidationError("both samples must be non-empty")
    n_permutations = check_positive_int(n_permutations, "n_permutations")
    rng = check_random_state(random_state)
    if statistic is None:
        statistic = lambda a, b: float(np.mean(a) - np.mean(b))

    observed = abs(statistic(x, y))
    pooled = np.concatenate([x, y])
    n_x = len(x)
    exceed = 0
    for __ in range(n_permutations):
        rng.shuffle(pooled)
        value = abs(statistic(pooled[:n_x], pooled[n_x:]))
        if value >= observed - 1e-15:
            exceed += 1
    p_value = (exceed + 1) / (n_permutations + 1)
    return float(observed), float(p_value)


def bootstrap_ci(
    values,
    statistic: Callable[[np.ndarray], float] | None = None,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    random_state: int | np.random.Generator | None = None,
) -> tuple[float, float]:
    """Percentile bootstrap CI via the original per-resample loop."""
    values = check_array_1d(values, "values").astype(float)
    if len(values) == 0:
        raise ValidationError("values must be non-empty")
    check_probability(confidence, "confidence")
    n_resamples = check_positive_int(n_resamples, "n_resamples")
    rng = check_random_state(random_state)
    if statistic is None:
        statistic = lambda a: float(np.mean(a))

    estimates = np.empty(n_resamples)
    n = len(values)
    for i in range(n_resamples):
        estimates[i] = statistic(values[rng.integers(0, n, n)])
    alpha = 1.0 - confidence
    lo, hi = np.quantile(estimates, [alpha / 2.0, 1.0 - alpha / 2.0])
    return float(lo), float(hi)


def wilson_interval(
    successes: int, n: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval via the original scalar arithmetic."""
    if n <= 0:
        raise ValidationError(f"n must be positive, got {n}")
    if not 0 <= successes <= n:
        raise ValidationError("successes must lie in [0, n]")
    check_probability(confidence, "confidence")
    z = float(sp_stats.norm.ppf(1.0 - (1.0 - confidence) / 2.0))
    p = successes / n
    denom = 1.0 + z**2 / n
    centre = (p + z**2 / (2 * n)) / denom
    half = (z / denom) * np.sqrt(p * (1 - p) / n + z**2 / (4 * n**2))
    return max(0.0, centre - half), min(1.0, centre + half)


def min_detectable_gap(
    n_a: int, n_b: int, base_rate: float = 0.5, alpha: float = 0.05, power: float = 0.8
) -> float:
    """Two-proportion power approximation via the original scalar code."""
    check_positive_int(n_a, "n_a")
    check_positive_int(n_b, "n_b")
    check_probability(base_rate, "base_rate")
    check_probability(alpha, "alpha")
    check_probability(power, "power")
    z_alpha = float(sp_stats.norm.ppf(1.0 - alpha / 2.0))
    z_beta = float(sp_stats.norm.ppf(power))
    variance = base_rate * (1.0 - base_rate) * (1.0 / n_a + 1.0 / n_b)
    return float((z_alpha + z_beta) * np.sqrt(variance))
