"""Sample complexity of bias detection (paper Section IV.F).

The paper: *"These [distances] are expected to be calculated with an
accuracy increasing in the number of samples ... The relationship between
the number of samples, and the error in estimating the bias is known as
the sample complexity of bias detection."*

:func:`sample_complexity_curve` measures exactly that relationship for
any discrete distance: at each sample size it draws repeated samples from
a known distribution, estimates the distance to a reference, and records
the mean absolute estimation error against the true distance.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

import numpy as np

from repro._validation import (
    check_positive_int,
    check_random_state,
)
from repro.exceptions import ValidationError

__all__ = [
    "empirical_distribution",
    "sample_from_distribution",
    "SampleComplexityPoint",
    "SampleComplexityCurve",
    "sample_complexity_curve",
    "estimate_required_samples",
    "hoeffding_sample_bound",
    "dkw_sample_bound",
]


def hoeffding_sample_bound(epsilon: float, delta: float = 0.05) -> int:
    """Samples guaranteeing a proportion estimate within ε w.p. ≥ 1−δ.

    Hoeffding's inequality for a Bernoulli mean:
    ``n ≥ ln(2/δ) / (2 ε²)``.  This is the worst-case theoretical
    counterpart of the empirical curves from
    :func:`sample_complexity_curve` — the paper's IV.F "sample
    complexity of bias detection", in closed form for a single group
    proportion.
    """
    if epsilon <= 0 or epsilon > 1:
        raise ValidationError(f"epsilon must be in (0, 1], got {epsilon}")
    if not 0 < delta < 1:
        raise ValidationError(f"delta must be in (0, 1), got {delta}")
    return int(np.ceil(np.log(2.0 / delta) / (2.0 * epsilon**2)))


def dkw_sample_bound(epsilon: float, delta: float = 0.05) -> int:
    """Samples bounding the sup-norm CDF error (DKW inequality).

    ``n ≥ ln(2/δ) / (2 ε²)`` also bounds
    ``sup_x |F_n(x) − F(x)| ≤ ε`` with probability ≥ 1−δ
    (Dvoretzky–Kiefer–Wolfowitz with Massart's constant), which in turn
    bounds the total-variation estimate for distributions on the line
    and the 1-D Wasserstein error on a bounded range.
    """
    # same closed form; kept separate because the guarantee differs
    return hoeffding_sample_bound(epsilon, delta)


def empirical_distribution(values) -> dict:
    """Normalised value→frequency mapping of a categorical sample."""
    values = np.asarray(values)
    if values.ndim != 1 or len(values) == 0:
        raise ValidationError("values must be a non-empty 1-D array")
    uniques, counts = np.unique(values, return_counts=True)
    return {
        u: c / len(values) for u, c in zip(uniques.tolist(), counts.tolist())
    }


def _distribution_support(
    distribution: Mapping[object, float],
) -> tuple[list, np.ndarray]:
    """Validated (keys, normalised probability vector) of a mapping."""
    keys = list(distribution)
    probs = np.array([float(distribution[k]) for k in keys])
    if np.any(probs < 0) or probs.sum() <= 0:
        raise ValidationError("distribution must have non-negative mass")
    return keys, probs / probs.sum()


def _keys_array(keys: list) -> np.ndarray:
    """Keys as a 1-D array suitable for ``np.take``.

    Homogeneous keys keep their natural dtype (numeric stays numeric,
    strings stay strings); mixed-type keys get an ``object`` array so
    no value is silently coerced (``np.array(['a', 1])`` would turn the
    ``1`` into ``'1'``).
    """
    types = {type(key) for key in keys}
    if len(types) == 1 or all(
        isinstance(key, (int, float, np.number))
        and not isinstance(key, bool)
        for key in keys
    ):
        candidate = np.asarray(keys)
        if candidate.ndim == 1 and len(candidate) == len(keys):
            return candidate
    arr = np.empty(len(keys), dtype=object)
    arr[:] = keys
    return arr


def sample_from_distribution(
    distribution: Mapping[object, float],
    n: int,
    random_state: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Draw ``n`` iid categorical samples from a value→probability mapping.

    The result is one vectorized ``np.take`` gather on the key array —
    homogeneous numeric keys keep their numeric dtype, mixed-type keys
    come back as ``object`` with every value preserved exactly.
    """
    n = check_positive_int(n, "n")
    rng = check_random_state(random_state)
    keys, probs = _distribution_support(distribution)
    indices = rng.choice(len(keys), size=n, p=probs)
    return np.take(_keys_array(keys), indices)


def _batched_estimates(
    distance: Callable[[Mapping, Mapping], float],
    population: Mapping[object, float],
    reference: Mapping[object, float],
    n: int,
    n_trials: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """All ``n_trials`` distance estimates at one sample size, batched.

    One ``(n_trials × n)`` categorical draw (stream-identical to
    ``n_trials`` sequential draws) and one bincount per trial row;
    empirical dicts are built in the sorted-key order
    :func:`empirical_distribution` would produce, with zero-count
    values dropped, so any distance callable sees the same input as on
    the reference path.
    """
    from repro.stats.batch import _infer_span

    keys, probs = _distribution_support(population)
    n_keys = len(keys)
    with _infer_span("sample_complexity", n_trials):
        samples = rng.choice(n_keys, size=(n_trials, n), p=probs)
        counts = np.bincount(
            (np.arange(n_trials)[:, None] * n_keys + samples).ravel(),
            minlength=n_trials * n_keys,
        ).reshape(n_trials, n_keys)
        order = sorted(range(n_keys), key=lambda i: keys[i])
        estimates = np.empty(n_trials)
        for t in range(n_trials):
            empirical = {
                keys[i]: counts[t, i] / n for i in order if counts[t, i]
            }
            estimates[t] = distance(empirical, reference)
    return estimates


@dataclass(frozen=True)
class SampleComplexityPoint:
    """Error statistics of a distance estimator at one sample size."""

    n: int
    mean_abs_error: float
    std_error: float
    mean_estimate: float


@dataclass(frozen=True)
class SampleComplexityCurve:
    """Error-vs-n curve for one distance estimator."""

    distance_name: str
    true_value: float
    points: tuple = field(default_factory=tuple)

    def sample_sizes(self) -> list[int]:
        return [p.n for p in self.points]

    def errors(self) -> list[float]:
        return [p.mean_abs_error for p in self.points]

    def empirical_rate(self) -> float:
        """Fitted exponent b in error ≈ a·n^(−b) (log–log least squares).

        A well-behaved plug-in estimator exhibits b ≈ 0.5 (the
        root-n rate the paper alludes to).
        """
        ns = np.array(self.sample_sizes(), dtype=float)
        errs = np.array(self.errors(), dtype=float)
        mask = errs > 0
        if mask.sum() < 2:
            return float("nan")
        slope, __ = np.polyfit(np.log(ns[mask]), np.log(errs[mask]), 1)
        return float(-slope)


def sample_complexity_curve(
    distance: Callable[[Mapping, Mapping], float],
    population: Mapping[object, float],
    reference: Mapping[object, float],
    sample_sizes: list[int],
    n_trials: int = 30,
    distance_name: str = "distance",
    random_state: int | np.random.Generator | None = None,
) -> SampleComplexityCurve:
    """Measure estimation error of ``distance`` as sample size grows.

    At each n, draws ``n_trials`` samples of size n from ``population``,
    computes ``distance(empirical_sample, reference)``, and compares to the
    true ``distance(population, reference)``.

    On the default kernel backend all trials for one ``n`` are drawn as
    a single ``(n_trials × n)`` categorical sample and reduced to
    empirical distributions with one bincount per trial row; the
    ``"reference"`` backend keeps the original one-sample-per-trial
    loop.  Both consume the random stream identically, so a seeded
    curve is the same on either backend.
    """
    from repro.kernel._backend import get_backend

    if not sample_sizes:
        raise ValidationError("sample_sizes must be non-empty")
    n_trials = check_positive_int(n_trials, "n_trials")
    rng = check_random_state(random_state)
    true_value = float(distance(population, reference))
    batched = get_backend() != "reference"

    points = []
    for n in sorted(set(int(s) for s in sample_sizes)):
        check_positive_int(n, "sample size")
        if batched:
            estimates = _batched_estimates(
                distance, population, reference, n, n_trials, rng
            )
        else:
            estimates = np.empty(n_trials)
            for t in range(n_trials):
                sample = sample_from_distribution(population, n, rng)
                estimates[t] = distance(
                    empirical_distribution(sample), reference
                )
        errors = np.abs(estimates - true_value)
        points.append(
            SampleComplexityPoint(
                n=n,
                mean_abs_error=float(errors.mean()),
                std_error=float(errors.std()),
                mean_estimate=float(estimates.mean()),
            )
        )
    return SampleComplexityCurve(
        distance_name=distance_name,
        true_value=true_value,
        points=tuple(points),
    )


def estimate_required_samples(
    curve: SampleComplexityCurve, target_error: float
) -> int:
    """Extrapolate the sample size needed to reach ``target_error``.

    Uses the fitted power law of :meth:`SampleComplexityCurve.empirical_rate`.
    """
    if target_error <= 0:
        raise ValidationError(f"target_error must be positive, got {target_error}")
    ns = np.array(curve.sample_sizes(), dtype=float)
    errs = np.array(curve.errors(), dtype=float)
    mask = errs > 0
    if mask.sum() < 2:
        raise ValidationError("curve has too few informative points to fit")
    slope, intercept = np.polyfit(np.log(ns[mask]), np.log(errs[mask]), 1)
    if slope >= 0:
        raise ValidationError(
            "estimation error does not decrease with n; cannot extrapolate"
        )
    log_n = (np.log(target_error) - intercept) / slope
    return int(np.ceil(np.exp(log_n)))
