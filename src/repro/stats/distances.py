"""Distribution distances for bias detection (paper Section IV.F).

The paper lists Hellinger, total variation, Wasserstein (OT), and maximum
mean discrepancy as the distances practitioners use to compare a protected
attribute's distribution in training data against the population.  All of
them are implemented here, each in two flavours where meaningful:

* **discrete** — on two categorical probability vectors (aligned supports);
* **empirical** — on two samples of a 1-D continuous quantity.

Plus the optimal-transport machinery (exact 1-D Wasserstein, discrete
Kantorovich LP via scipy, and entropic Sinkhorn) that the group-blind
repair of :mod:`repro.mitigation.ot_repair` builds on.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np
from scipy import optimize

from repro._validation import (
    check_array_1d,
    check_nonnegative,
    check_positive_int,
)
from repro.exceptions import ConvergenceError, ValidationError

__all__ = [
    "align_distributions",
    "hellinger_distance",
    "total_variation_distance",
    "kl_divergence",
    "js_divergence",
    "wasserstein1_empirical",
    "wasserstein_discrete",
    "sinkhorn_plan",
    "mmd_rbf",
    "DISTANCE_REGISTRY",
]


def _as_distribution(p: Mapping | np.ndarray, name: str) -> np.ndarray:
    if isinstance(p, Mapping):
        p = np.array([float(v) for v in p.values()])
    arr = check_array_1d(p, name).astype(float)
    if np.any(arr < 0):
        raise ValidationError(f"{name} has negative mass")
    total = arr.sum()
    if total <= 0:
        raise ValidationError(f"{name} has zero total mass")
    return arr / total


def align_distributions(
    p: Mapping[object, float], q: Mapping[object, float]
) -> tuple[np.ndarray, np.ndarray, list]:
    """Align two categorical distributions onto their union support.

    Returns (p_vec, q_vec, support) with both vectors normalised.
    """
    support = sorted(set(p) | set(q), key=repr)
    p_vec = np.array([float(p.get(k, 0.0)) for k in support])
    q_vec = np.array([float(q.get(k, 0.0)) for k in support])
    return (
        _as_distribution(p_vec, "p"),
        _as_distribution(q_vec, "q"),
        support,
    )


def hellinger_distance(p, q) -> float:
    """Hellinger distance between two discrete distributions, in [0, 1]."""
    p = _as_distribution(p, "p")
    q = _as_distribution(q, "q")
    if p.shape != q.shape:
        raise ValidationError(f"shape mismatch: {p.shape} vs {q.shape}")
    return float(np.sqrt(0.5 * np.sum((np.sqrt(p) - np.sqrt(q)) ** 2)))


def total_variation_distance(p, q) -> float:
    """Total variation distance, in [0, 1]: half the L1 gap."""
    p = _as_distribution(p, "p")
    q = _as_distribution(q, "q")
    if p.shape != q.shape:
        raise ValidationError(f"shape mismatch: {p.shape} vs {q.shape}")
    return float(0.5 * np.sum(np.abs(p - q)))


def kl_divergence(p, q, eps: float = 1e-12) -> float:
    """KL(p || q) with epsilon smoothing of q to keep it finite."""
    p = _as_distribution(p, "p")
    q = _as_distribution(q, "q")
    if p.shape != q.shape:
        raise ValidationError(f"shape mismatch: {p.shape} vs {q.shape}")
    q = np.clip(q, eps, None)
    q = q / q.sum()
    mask = p > 0
    return float(np.sum(p[mask] * np.log(p[mask] / q[mask])))


def js_divergence(p, q) -> float:
    """Jensen–Shannon divergence (symmetric, bounded by log 2)."""
    p = _as_distribution(p, "p")
    q = _as_distribution(q, "q")
    if p.shape != q.shape:
        raise ValidationError(f"shape mismatch: {p.shape} vs {q.shape}")
    m = 0.5 * (p + q)
    return float(0.5 * kl_divergence(p, m) + 0.5 * kl_divergence(q, m))


def wasserstein1_empirical(x, y) -> float:
    """Exact 1-D Wasserstein-1 distance between two samples.

    Computed from the quantile-function representation:
    ``W1 = ∫ |F_x^{-1}(t) − F_y^{-1}(t)| dt``, evaluated on the merged
    grid of both empirical CDFs.
    """
    x = np.sort(check_array_1d(x, "x").astype(float))
    y = np.sort(check_array_1d(y, "y").astype(float))
    if len(x) == 0 or len(y) == 0:
        raise ValidationError("samples must be non-empty")
    # Quantile levels where either empirical quantile function can jump.
    levels = np.union1d(
        np.arange(1, len(x)) / len(x), np.arange(1, len(y)) / len(y)
    )
    levels = np.concatenate([[0.0], levels, [1.0]])
    widths = np.diff(levels)
    midpoints = (levels[:-1] + levels[1:]) / 2.0
    qx = x[np.minimum((midpoints * len(x)).astype(int), len(x) - 1)]
    qy = y[np.minimum((midpoints * len(y)).astype(int), len(y) - 1)]
    return float(np.sum(widths * np.abs(qx - qy)))


def wasserstein_discrete(p, q, cost: np.ndarray) -> tuple[float, np.ndarray]:
    """Exact discrete optimal transport via linear programming.

    Parameters
    ----------
    p, q:
        Source and target histograms (normalised internally).
    cost:
        (len(p), len(q)) ground-cost matrix.

    Returns
    -------
    (total transport cost, optimal plan matrix)
    """
    p = _as_distribution(p, "p")
    q = _as_distribution(q, "q")
    cost = np.asarray(cost, dtype=float)
    if cost.shape != (len(p), len(q)):
        raise ValidationError(
            f"cost must have shape {(len(p), len(q))}, got {cost.shape}"
        )
    n, m = cost.shape
    # LP over the flattened plan: minimise <C, T> s.t. row sums = p, col sums = q.
    c = cost.ravel()
    A_eq = np.zeros((n + m, n * m))
    for i in range(n):
        A_eq[i, i * m : (i + 1) * m] = 1.0
    for j in range(m):
        A_eq[n + j, j::m] = 1.0
    b_eq = np.concatenate([p, q])
    result = optimize.linprog(
        c, A_eq=A_eq, b_eq=b_eq, bounds=(0, None), method="highs"
    )
    if not result.success:
        raise ConvergenceError(f"OT linear program failed: {result.message}")
    plan = result.x.reshape(n, m)
    return float(result.fun), plan


def sinkhorn_plan(
    p,
    q,
    cost: np.ndarray,
    epsilon: float = 0.05,
    max_iter: int = 5000,
    tol: float = 1e-9,
) -> tuple[float, np.ndarray]:
    """Entropic-regularised OT via Sinkhorn iterations.

    Returns (transport cost of the regularised plan, plan).  Smaller
    ``epsilon`` approaches the exact plan at the cost of more iterations —
    the accuracy/runtime trade-off benchmarked in experiment C6.
    """
    p = _as_distribution(p, "p")
    q = _as_distribution(q, "q")
    cost = np.asarray(cost, dtype=float)
    if cost.shape != (len(p), len(q)):
        raise ValidationError(
            f"cost must have shape {(len(p), len(q))}, got {cost.shape}"
        )
    check_nonnegative(epsilon, "epsilon")
    if epsilon == 0:
        raise ValidationError("epsilon must be positive; use wasserstein_discrete")
    check_positive_int(max_iter, "max_iter")

    # Log-domain Sinkhorn: stable for small epsilon, where the naive
    # kernel exp(-C/eps) underflows to zero.
    from scipy.special import logsumexp

    log_p = np.log(np.clip(p, 1e-300, None))
    log_q = np.log(np.clip(q, 1e-300, None))
    f = np.zeros(len(p))
    g = np.zeros(len(q))
    M = -cost / epsilon
    for __ in range(max_iter):
        f_new = epsilon * (
            log_p - logsumexp(M + g[None, :] / epsilon, axis=1)
        )
        g_new = epsilon * (
            log_q - logsumexp(M.T + f_new[None, :] / epsilon, axis=1)
        )
        drift = max(
            np.max(np.abs(f_new - f), initial=0.0),
            np.max(np.abs(g_new - g), initial=0.0),
        )
        f, g = f_new, g_new
        if drift < tol:
            break
    log_plan = M + f[:, None] / epsilon + g[None, :] / epsilon
    plan = np.exp(log_plan)
    return float(np.sum(plan * cost)), plan


def mmd_rbf(x, y, bandwidth: float | None = None) -> float:
    """Unbiased-ish (V-statistic) RBF maximum mean discrepancy of two samples.

    ``bandwidth`` defaults to the median pairwise distance heuristic over
    the pooled sample.
    """
    x = check_array_1d(x, "x").astype(float)
    y = check_array_1d(y, "y").astype(float)
    if len(x) == 0 or len(y) == 0:
        raise ValidationError("samples must be non-empty")
    pooled = np.concatenate([x, y])
    if bandwidth is None:
        diffs = np.abs(pooled[:, None] - pooled[None, :])
        positive = diffs[diffs > 0]
        bandwidth = float(np.median(positive)) if positive.size else 1.0
    check_nonnegative(bandwidth, "bandwidth")
    if bandwidth == 0:
        bandwidth = 1.0
    gamma = 1.0 / (2.0 * bandwidth**2)

    def kernel_mean(a: np.ndarray, b: np.ndarray) -> float:
        d2 = (a[:, None] - b[None, :]) ** 2
        return float(np.mean(np.exp(-gamma * d2)))

    value = (
        kernel_mean(x, x) + kernel_mean(y, y) - 2.0 * kernel_mean(x, y)
    )
    return float(np.sqrt(max(value, 0.0)))


#: name → callable(p_dict, q_dict) for discrete-distribution distances;
#: used by the sampling-complexity experiment to sweep all at once.
DISTANCE_REGISTRY = {
    "hellinger": lambda p, q: hellinger_distance(*align_distributions(p, q)[:2]),
    "total_variation": lambda p, q: total_variation_distance(
        *align_distributions(p, q)[:2]
    ),
    "jensen_shannon": lambda p, q: js_divergence(*align_distributions(p, q)[:2]),
}
