"""Vectorized statistical inference: batched tests, intervals, resampling.

Section IV.C makes statistical reliability the gatekeeper of every
fairness verdict — each finding carries a significance test, a
confidence interval, and a power caveat.  PR 3 vectorized the *counting*
side of the audit; this module vectorizes the *inference* side, which
had become the wall-clock bottleneck of large subgroup scans: every
scalar primitive in :mod:`repro.stats.tests` has an array-in/array-out
counterpart here operating on whole count vectors at once, and the
resampling procedures draw their full index/permutation matrices in one
shot and reduce along an axis instead of looping in Python.

Equivalence contract
--------------------
Each batch primitive reproduces the scalar reference arithmetic
*operation for operation* (same expression order, same degenerate-case
handling), so its outputs are bit-identical to a Python loop over
:mod:`repro.stats._reference` — the property suite in
``tests/perf/test_batch_stats.py`` and the ``bench_p2_stats.py``
regression guard both assert this on every run.  For the resampling
primitives the random streams are aligned too: drawing an
``(n_resamples × n)`` index matrix consumes a numpy ``Generator``
exactly as ``n_resamples`` sequential length-``n`` draws do, so
:func:`batch_bootstrap_ci` equals the reference loop bit-for-bit under
the same seed.  (:func:`batch_permutation_test` necessarily differs
draw-for-draw from the in-place ``shuffle`` loop; its permutation
matrix comes from one argsort of random keys instead.)

Instrumentation: every batch call increments ``stats.batch_calls`` and
adds its element count to ``stats.batch_size``; the compound scoring
entry point used by subgroup scans runs inside a ``stats.infer`` span.
"""

from __future__ import annotations

from collections.abc import Callable
from contextlib import contextmanager

import numpy as np
from scipy import stats as sp_stats

from repro._validation import (
    check_array_1d,
    check_positive_int,
    check_probability,
    check_random_state,
)
from repro.exceptions import ValidationError
from repro.observability.metrics import get_metrics
from repro.observability.trace import get_tracer

__all__ = [
    "batch_two_proportion_z",
    "batch_wilson_interval",
    "batch_min_detectable_gap",
    "batch_bootstrap_ci",
    "batch_permutation_test",
    "batch_score_counts",
]

#: element budget for one resampling block — caps the transient
#: ``(rows × n)`` matrices at ~128 MB of float64 regardless of inputs.
_BLOCK_ELEMENTS = 1 << 24


def _record(op: str, n: int) -> None:
    metrics = get_metrics()
    metrics.counter("stats.batch_calls").inc()
    metrics.counter("stats.batch_size").inc(int(n))


@contextmanager
def _infer_span(op: str, n: int):
    """One ``stats.infer`` span + throughput counters around a batch."""
    _record(op, n)
    with get_tracer().span("stats.infer", op=op, batch=int(n)):
        yield


def _count_array(values, name: str) -> np.ndarray:
    """Coerce counts (scalar or 1-D) to an int64 vector, exactly."""
    arr = np.asarray(values)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise ValidationError(
            f"{name} must be 1-dimensional, got shape {arr.shape}"
        )
    if arr.dtype.kind in "iu":
        return arr.astype(np.int64, copy=False)
    if arr.dtype == bool:
        return arr.astype(np.int64)
    try:
        cast = arr.astype(np.int64)
    except (TypeError, ValueError) as exc:
        raise ValidationError(
            f"{name} must be an integer, got dtype {arr.dtype}"
        ) from exc
    if arr.dtype.kind == "f" and not np.array_equal(cast, arr):
        raise ValidationError(f"{name} must be an integer, got {arr!r}")
    return cast


def _broadcast_counts(**named) -> tuple[np.ndarray, ...]:
    arrays = {
        name: _count_array(value, name) for name, value in named.items()
    }
    try:
        out = np.broadcast_arrays(*arrays.values())
    except ValueError as exc:
        detail = ", ".join(
            f"{name}={len(arr)}" for name, arr in arrays.items()
        )
        raise ValidationError(f"length mismatch: {detail}") from exc
    return tuple(np.ascontiguousarray(a) for a in out)


def _first(arr: np.ndarray, mask: np.ndarray):
    """The first offending value, for scalar-identical error messages."""
    return int(arr[mask][0])


def batch_two_proportion_z(
    successes_a, n_a, successes_b, n_b
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized pooled two-proportion z-test over count vectors.

    Array counterpart of
    :func:`repro.stats.tests.two_proportion_z_test`: element ``i`` of
    the returned ``(statistic, p_value)`` arrays is bit-identical to
    the scalar test on ``(successes_a[i], n_a[i], successes_b[i],
    n_b[i])``, including the degenerate zero-variance cells (``z = 0``
    / ``p = 1`` when both proportions agree, ``z = inf`` / ``p = 0``
    when they differ with no pooled variance).
    """
    sa, na, sb, nb = _broadcast_counts(
        successes_a=successes_a, n_a=n_a, successes_b=successes_b, n_b=n_b
    )
    for name, arr in (
        ("successes_a", sa), ("n_a", na), ("successes_b", sb), ("n_b", nb)
    ):
        negative = arr < 0
        if negative.any():
            raise ValidationError(
                f"{name} must be non-negative, got {_first(arr, negative)}"
            )
    if (na == 0).any() or (nb == 0).any():
        raise ValidationError("both groups must be non-empty")
    if (sa > na).any() or (sb > nb).any():
        raise ValidationError("successes cannot exceed group size")

    with _infer_span("two_proportion_z", len(sa)):
        p_a = sa / na
        p_b = sb / nb
        pooled = (sa + sb) / (na + nb)
        variance = pooled * (1 - pooled) * (1 / na + 1 / nb)
        degenerate = variance == 0
        equal = p_a == p_b
        with np.errstate(divide="ignore", invalid="ignore"):
            z = (p_a - p_b) / np.sqrt(variance)
        z = np.where(degenerate, np.where(equal, 0.0, np.inf), z)
        p_value = np.where(
            degenerate,
            np.where(equal, 1.0, 0.0),
            2.0 * sp_stats.norm.sf(np.abs(z)),
        )
    return z, p_value


def batch_wilson_interval(
    successes, n, confidence: float = 0.95
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized Wilson score intervals over count vectors.

    Array counterpart of :func:`repro.stats.tests.wilson_interval`;
    bounds are clipped into [0, 1] elementwise and returned as two
    float64 arrays ``(low, high)``.
    """
    s, n = _broadcast_counts(successes=successes, n=n)
    nonpositive = n <= 0
    if nonpositive.any():
        raise ValidationError(
            f"n must be positive, got {_first(n, nonpositive)}"
        )
    if ((s < 0) | (s > n)).any():
        raise ValidationError("successes must lie in [0, n]")
    check_probability(confidence, "confidence")
    z = float(sp_stats.norm.ppf(1.0 - (1.0 - confidence) / 2.0))

    with _infer_span("wilson", len(s)):
        p = s / n
        denom = 1.0 + z**2 / n
        centre = (p + z**2 / (2 * n)) / denom
        half = (z / denom) * np.sqrt(p * (1 - p) / n + z**2 / (4 * n**2))
        low = np.maximum(0.0, centre - half)
        high = np.minimum(1.0, centre + half)
    return low, high


def batch_min_detectable_gap(
    n_a, n_b, base_rate=0.5, alpha: float = 0.05, power: float = 0.8
) -> np.ndarray:
    """Vectorized minimum-detectable-gap power approximation.

    Array counterpart of :func:`repro.stats.tests.min_detectable_gap`;
    ``base_rate`` may be a scalar or a vector aligned with the sizes.
    """
    na, nb = _broadcast_counts(n_a=n_a, n_b=n_b)
    for name, arr in (("n_a", na), ("n_b", nb)):
        nonpositive = arr <= 0
        if nonpositive.any():
            raise ValidationError(
                f"{name} must be positive, got {_first(arr, nonpositive)}"
            )
    rate = np.asarray(base_rate, dtype=float)
    if rate.ndim == 0:
        check_probability(float(rate), "base_rate")
    elif ((rate < 0.0) | (rate > 1.0)).any():
        bad = float(rate[(rate < 0.0) | (rate > 1.0)][0])
        raise ValidationError(f"base_rate must be in [0, 1], got {bad}")
    check_probability(alpha, "alpha")
    check_probability(power, "power")
    z_alpha = float(sp_stats.norm.ppf(1.0 - alpha / 2.0))
    z_beta = float(sp_stats.norm.ppf(power))

    with _infer_span("min_detectable_gap", len(na)):
        variance = rate * (1.0 - rate) * (1.0 / na + 1.0 / nb)
        gap = (z_alpha + z_beta) * np.sqrt(variance)
    return np.broadcast_to(gap, na.shape).astype(float, copy=False)


def _rows_per_block(n_columns: int) -> int:
    return max(1, _BLOCK_ELEMENTS // max(1, n_columns))


def batch_bootstrap_ci(
    values,
    statistic: Callable[[np.ndarray], float] | None = None,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    random_state: int | np.random.Generator | None = None,
) -> tuple[float, float]:
    """Percentile bootstrap CI from one ``(n_resamples × n)`` index matrix.

    The whole resample index matrix is drawn in one shot (in row blocks
    bounded by a fixed memory budget, which leaves the random stream
    identical to sequential draws) and the default mean statistic
    reduces along axis 1 — no Python loop.  Under the same
    ``random_state`` the result is bit-identical to the scalar
    :func:`repro.stats.tests.bootstrap_ci` loop, for the default and
    for callable statistics alike.
    """
    values = check_array_1d(values, "values").astype(float)
    if len(values) == 0:
        raise ValidationError("values must be non-empty")
    check_probability(confidence, "confidence")
    n_resamples = check_positive_int(n_resamples, "n_resamples")
    rng = check_random_state(random_state)
    n = len(values)

    with _infer_span("bootstrap", n_resamples):
        estimates = np.empty(n_resamples)
        done = 0
        block = _rows_per_block(n)
        while done < n_resamples:
            rows = min(block, n_resamples - done)
            indices = rng.integers(0, n, size=(rows, n))
            resampled = values[indices]
            if statistic is None:
                estimates[done:done + rows] = resampled.mean(axis=1)
            else:
                for i in range(rows):
                    estimates[done + i] = statistic(resampled[i])
            done += rows
        alpha = 1.0 - confidence
        lo, hi = np.quantile(estimates, [alpha / 2.0, 1.0 - alpha / 2.0])
    return float(lo), float(hi)


def batch_permutation_test(
    x,
    y,
    statistic: Callable[[np.ndarray, np.ndarray], float] | None = None,
    n_permutations: int = 2000,
    random_state: int | np.random.Generator | None = None,
) -> tuple[float, float]:
    """Two-sided permutation test from one argsort-of-keys matrix.

    Replaces the per-iteration ``rng.shuffle`` + Python statistic of the
    scalar loop with a single permutation matrix: argsorting an
    ``(n_permutations × n)`` block of random keys yields one uniform
    permutation per row.  For the default difference-in-means statistic
    on binary (0/1) samples, the count-based fast path sums each row's
    first ``len(x)`` entries with ``np.add.reduceat`` over the permuted
    integer matrix — proportions then come from exact integer counts.
    For other numeric data the default statistic reduces with
    ``mean(axis=1)``; a callable ``statistic`` is applied row-by-row to
    the same permutation matrix (fallback preserved).

    Returns ``(observed, p_value)`` with the same add-one correction as
    the scalar test.  The permutation *stream* necessarily differs from
    the scalar shuffle loop, so p-values agree statistically rather
    than bitwise; the observed statistic is identical.
    """
    x = check_array_1d(x, "x").astype(float)
    y = check_array_1d(y, "y").astype(float)
    if len(x) == 0 or len(y) == 0:
        raise ValidationError("both samples must be non-empty")
    n_permutations = check_positive_int(n_permutations, "n_permutations")
    rng = check_random_state(random_state)

    if statistic is None:
        default = lambda a, b: float(np.mean(a) - np.mean(b))
        observed = abs(default(x, y))
    else:
        observed = abs(statistic(x, y))
    pooled = np.concatenate([x, y])
    n_x = len(x)
    n = len(pooled)
    n_y = n - n_x
    threshold = observed - 1e-15
    # Count-based fast path: binary pooled data under the default
    # statistic — row sums are integer success counts.
    binary = statistic is None and bool(
        np.all((pooled == 0.0) | (pooled == 1.0))
    )
    pooled_int = pooled.astype(np.int64) if binary else None

    with _infer_span("permutation", n_permutations):
        exceed = 0
        done = 0
        block = _rows_per_block(n)
        while done < n_permutations:
            rows = min(block, n_permutations - done)
            perm = np.argsort(rng.random((rows, n)), axis=1)
            if binary:
                permuted = pooled_int[perm]
                offsets = (
                    np.arange(rows)[:, None] * n + np.array([0, n_x])
                ).ravel()
                sums = np.add.reduceat(permuted.ravel(), offsets)
                stat = np.abs(sums[0::2] / n_x - sums[1::2] / n_y)
                exceed += int((stat >= threshold).sum())
            elif statistic is None:
                permuted = pooled[perm]
                stat = np.abs(
                    permuted[:, :n_x].mean(axis=1)
                    - permuted[:, n_x:].mean(axis=1)
                )
                exceed += int((stat >= threshold).sum())
            else:
                permuted = pooled[perm]
                for i in range(rows):
                    row = permuted[i]
                    if abs(statistic(row[:n_x], row[n_x:])) >= threshold:
                        exceed += 1
            done += rows
        p_value = (exceed + 1) / (n_permutations + 1)
    return float(observed), float(p_value)


def batch_score_counts(
    positives_inside, n_inside, positives_total: int, n_total: int
) -> list[dict | None]:
    """Score a whole vector of subgroups against their complements.

    The batched heart of the subgroup scan: given per-subgroup
    ``(positives_inside, n_inside)`` count vectors plus population
    totals, returns the same ``dict | None`` payloads as calling
    :func:`repro.kernel.score_counts` per subgroup — rates, signed gap,
    Wilson bounds, and the two-proportion p-value, each bit-identical
    to the scalar loop — with one z-test batch and one Wilson batch
    for the entire vector.  ``None`` marks subgroups that cover the
    whole population (no complement to compare against).
    """
    pos_in, n_in = _broadcast_counts(
        positives_inside=positives_inside, n_inside=n_inside
    )
    size = len(pos_in)
    if size == 0:
        return []
    with _infer_span("score_counts", size):
        n_out = int(n_total) - n_in
        pos_out = int(positives_total) - pos_in
        valid = n_out > 0
        payloads: list[dict | None] = [None] * size
        if valid.any():
            vi_pos, vi_n = pos_in[valid], n_in[valid]
            vo_pos, vo_n = pos_out[valid], n_out[valid]
            rate = vi_pos / vi_n
            complement = vo_pos / vo_n
            _, p_value = batch_two_proportion_z(vi_pos, vi_n, vo_pos, vo_n)
            ci_low, ci_high = batch_wilson_interval(vi_pos, vi_n)
            gap = rate - complement
            positions = np.flatnonzero(valid)
            for j, index in enumerate(positions):
                payloads[int(index)] = {
                    "rate": float(rate[j]),
                    "complement_rate": float(complement[j]),
                    "gap": float(gap[j]),
                    "ci_low": float(ci_low[j]),
                    "ci_high": float(ci_high[j]),
                    "p_value": float(p_value[j]),
                }
    return payloads
