"""Statistical substrate: distances, hypothesis tests, sample complexity.

The scalar primitives in :mod:`repro.stats.tests` are the public API;
each is a thin wrapper over its vectorized counterpart in
:mod:`repro.stats.batch`, which audits use directly to score thousands
of subgroups in one call (see ``docs/performance.md``, "Batched
inference").
"""

from repro.stats.batch import (
    batch_bootstrap_ci,
    batch_min_detectable_gap,
    batch_permutation_test,
    batch_score_counts,
    batch_two_proportion_z,
    batch_wilson_interval,
)
from repro.stats.distances import (
    DISTANCE_REGISTRY,
    align_distributions,
    hellinger_distance,
    js_divergence,
    kl_divergence,
    mmd_rbf,
    sinkhorn_plan,
    total_variation_distance,
    wasserstein1_empirical,
    wasserstein_discrete,
)
from repro.stats.sampling import (
    SampleComplexityCurve,
    SampleComplexityPoint,
    dkw_sample_bound,
    empirical_distribution,
    estimate_required_samples,
    hoeffding_sample_bound,
    sample_complexity_curve,
    sample_from_distribution,
)
from repro.stats.multiple_testing import benjamini_hochberg, holm_bonferroni
from repro.stats.tests import (
    TestResult,
    bootstrap_ci,
    chi_square_independence,
    min_detectable_gap,
    permutation_test,
    two_proportion_z_test,
    wilson_interval,
)

__all__ = [
    "batch_two_proportion_z",
    "batch_wilson_interval",
    "batch_min_detectable_gap",
    "batch_bootstrap_ci",
    "batch_permutation_test",
    "batch_score_counts",
    "align_distributions",
    "hellinger_distance",
    "total_variation_distance",
    "kl_divergence",
    "js_divergence",
    "wasserstein1_empirical",
    "wasserstein_discrete",
    "sinkhorn_plan",
    "mmd_rbf",
    "DISTANCE_REGISTRY",
    "TestResult",
    "two_proportion_z_test",
    "chi_square_independence",
    "permutation_test",
    "bootstrap_ci",
    "wilson_interval",
    "min_detectable_gap",
    "empirical_distribution",
    "sample_from_distribution",
    "SampleComplexityPoint",
    "SampleComplexityCurve",
    "sample_complexity_curve",
    "estimate_required_samples",
    "hoeffding_sample_bound",
    "dkw_sample_bound",
    "holm_bonferroni",
    "benjamini_hochberg",
]
