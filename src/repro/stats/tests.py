"""Hypothesis tests and interval estimates used by fairness audits.

Section IV.C of the paper warns that sparse subgroups make bias estimates
statistically unreliable; the audit layer therefore attaches significance
information from these primitives to every finding.

Since ISSUE 5 the scalar functions here are thin wrappers over the
vectorized engine in :mod:`repro.stats.batch` (a scalar call is a
length-1 batch).  The pre-batch implementations are kept verbatim in
:mod:`repro.stats._reference` and run whenever the ``"reference"``
kernel backend is selected (:func:`repro.kernel.use_backend`), so
batch↔scalar equivalence stays testable forever.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np
from scipy import stats as sp_stats

from repro._validation import check_positive_int, check_probability
from repro.exceptions import ValidationError
from repro.kernel._backend import get_backend
from repro.stats import _reference
from repro.stats.batch import (
    batch_bootstrap_ci,
    batch_min_detectable_gap,
    batch_permutation_test,
    batch_two_proportion_z,
    batch_wilson_interval,
)

__all__ = [
    "TestResult",
    "two_proportion_z_test",
    "chi_square_independence",
    "permutation_test",
    "bootstrap_ci",
    "wilson_interval",
    "min_detectable_gap",
]


@dataclass(frozen=True)
class TestResult:
    """Statistic + p-value + human-readable method tag."""

    statistic: float
    p_value: float
    method: str

    def significant(self, alpha: float = 0.05) -> bool:
        """True when the p-value falls below ``alpha``."""
        check_probability(alpha, "alpha")
        return self.p_value < alpha


def two_proportion_z_test(
    successes_a: int, n_a: int, successes_b: int, n_b: int
) -> TestResult:
    """Two-sided pooled z-test for equality of two proportions.

    The workhorse for "is the selection-rate gap between groups real?".
    A length-1 call into :func:`repro.stats.batch.batch_two_proportion_z`
    (the scalar loop under the ``"reference"`` backend).
    """
    if get_backend() == "reference":
        z, p_value = _reference.two_proportion_z_test(
            successes_a, n_a, successes_b, n_b
        )
    else:
        zs, ps = batch_two_proportion_z(successes_a, n_a, successes_b, n_b)
        z, p_value = float(zs[0]), float(ps[0])
    return TestResult(z, p_value, "two_proportion_z")


def chi_square_independence(table, correction: bool = True) -> TestResult:
    """Chi-square test of independence on a contingency table.

    ``correction`` toggles scipy's Yates continuity correction, which
    applies only to 2×2 tables (one degree of freedom).  The default
    ``True`` keeps the historical behaviour, but note the discrepancy it
    creates: on the same 2×2 counts the *uncorrected*
    :func:`two_proportion_z_test` satisfies ``chi2 == z**2`` with an
    identical p-value, while the Yates-corrected statistic is smaller
    (more conservative).  Pass ``correction=False`` when cross-checking
    a chi-square verdict against a z-test on the same table.
    """
    table = np.asarray(table, dtype=float)
    if table.ndim != 2 or min(table.shape) < 2:
        raise ValidationError(
            f"table must be at least 2x2, got shape {table.shape}"
        )
    if np.any(table < 0):
        raise ValidationError("table counts must be non-negative")
    if table.sum() == 0:
        raise ValidationError("table must contain observations")
    statistic, p_value, __, __ = sp_stats.chi2_contingency(
        table, correction=correction
    )
    return TestResult(float(statistic), float(p_value), "chi_square")


def permutation_test(
    x,
    y,
    statistic: Callable[[np.ndarray, np.ndarray], float] | None = None,
    n_permutations: int = 2000,
    random_state: int | np.random.Generator | None = None,
) -> TestResult:
    """Two-sided permutation test for a two-sample statistic.

    ``statistic`` defaults to the difference in means.  The p-value uses
    the add-one correction so it is never exactly zero.  The kernel
    backend draws one argsort-of-random-keys permutation matrix
    (:func:`repro.stats.batch.batch_permutation_test`); the
    ``"reference"`` backend runs the original shuffle loop, so the two
    agree statistically but not draw-for-draw under one seed.
    """
    if get_backend() == "reference":
        observed, p_value = _reference.permutation_test(
            x, y, statistic=statistic, n_permutations=n_permutations,
            random_state=random_state,
        )
    else:
        observed, p_value = batch_permutation_test(
            x, y, statistic=statistic, n_permutations=n_permutations,
            random_state=random_state,
        )
    return TestResult(observed, p_value, "permutation")


def bootstrap_ci(
    values,
    statistic: Callable[[np.ndarray], float] | None = None,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    random_state: int | np.random.Generator | None = None,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for a sample statistic.

    The kernel backend draws the full resample index matrix at once
    (:func:`repro.stats.batch.batch_bootstrap_ci`); under the same
    ``random_state`` it is bit-identical to the ``"reference"`` loop.
    """
    if get_backend() == "reference":
        return _reference.bootstrap_ci(
            values, statistic=statistic, confidence=confidence,
            n_resamples=n_resamples, random_state=random_state,
        )
    return batch_bootstrap_ci(
        values, statistic=statistic, confidence=confidence,
        n_resamples=n_resamples, random_state=random_state,
    )


def wilson_interval(
    successes: int, n: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation for the small subgroup counts
    that intersectional audits produce.  Both bounds are builtin
    ``float`` (never numpy scalars), so report payloads built from them
    serialize to JSON without coercion.
    """
    if get_backend() == "reference":
        low, high = _reference.wilson_interval(successes, n, confidence)
    else:
        lows, highs = batch_wilson_interval(successes, n, confidence)
        low, high = lows[0], highs[0]
    return float(low), float(high)


def min_detectable_gap(
    n_a: int, n_b: int, base_rate: float = 0.5, alpha: float = 0.05, power: float = 0.8
) -> float:
    """Smallest selection-rate gap detectable at given sizes/α/power.

    Standard two-proportion power approximation; audits use this to label
    a "no significant disparity" finding with how large a disparity could
    still be hiding (the Section IV.C uncertainty caveat).
    """
    if get_backend() == "reference":
        return _reference.min_detectable_gap(
            n_a, n_b, base_rate=base_rate, alpha=alpha, power=power
        )
    # Scalar-strict validation (the batch engine accepts integral floats;
    # the scalar API never did, on either backend).
    check_positive_int(n_a, "n_a")
    check_positive_int(n_b, "n_b")
    gaps = batch_min_detectable_gap(
        n_a, n_b, base_rate=base_rate, alpha=alpha, power=power
    )
    return float(gaps[0])
