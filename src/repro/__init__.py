"""repro — fairness auditing at the intersection of algorithms and law.

A faithful, self-contained reproduction of *"Fairness in AI: challenges
in bridging the gap between algorithms and law"* (Giannopoulos et al.,
Fairness in AI Workshop @ ICDE 2024): every fairness definition of the
paper's Section III, every selection criterion of Section IV, and the
legal mapping of Section II, as executable, tested code.

Quickstart
----------
>>> from repro import audit, AuditConfig, make_hiring
>>> data = make_hiring(n=2000, direct_bias=1.5, random_state=0)
>>> report = audit(data, config=AuditConfig(tolerance=0.05))
>>> report.is_clean
False

The same call audits chunked streams and merged shard state — see
``repro.streaming`` and ``docs/streaming.md``.

See ``examples/`` for end-to-end scenarios and ``DESIGN.md`` for the
full system inventory.
"""

import logging as _logging

# Library logging contract: modules log under the "repro" hierarchy and
# the root "repro" logger carries a NullHandler, so embedding
# applications hear nothing unless they (or the CLI's configure_logging)
# attach a handler.
_logging.getLogger("repro").addHandler(_logging.NullHandler())

from repro.core import (  # noqa: E402 — the handler must exist first
    METRIC_CATALOG,
    AuditReport,
    ConditionalMetricResult,
    EqualityConcept,
    FairnessAudit,
    MetricResult,
    Recommendation,
    UseCaseProfile,
    calibration_within_groups,
    conditional_demographic_disparity,
    conditional_statistical_parity,
    counterfactual_fairness,
    demographic_disparity,
    demographic_parity,
    disparate_impact_ratio,
    equal_opportunity,
    equalized_odds,
    four_fifths_rule,
    predictive_parity,
    recommend_metrics,
    risk_flags,
)
from repro.data import (
    Column,
    PopulationMarginals,
    Schema,
    TabularDataset,
    make_credit,
    make_hiring,
    make_housing,
    make_intersectional,
    make_recidivism,
)
from repro.api import audit  # noqa: E402
from repro.core.config import (  # noqa: E402
    AuditConfig,
    MonitorConfig,
    ScanConfig,
)
from repro.streaming import (  # noqa: E402
    AuditAccumulator,
    FairnessMonitor,
    audit_stream,
)
from repro.monitor import MonitorFleet  # noqa: E402
from repro.workflow import ComplianceDossier, run_compliance_workflow  # noqa: E402
from repro.service import JobEngine, JobRecord  # noqa: E402

__version__ = "1.9.0"

__all__ = [
    "__version__",
    # data
    "Column",
    "Schema",
    "TabularDataset",
    "PopulationMarginals",
    "make_hiring",
    "make_credit",
    "make_housing",
    "make_recidivism",
    "make_intersectional",
    # metrics
    "demographic_parity",
    "conditional_statistical_parity",
    "equal_opportunity",
    "equalized_odds",
    "demographic_disparity",
    "conditional_demographic_disparity",
    "counterfactual_fairness",
    "calibration_within_groups",
    "predictive_parity",
    "disparate_impact_ratio",
    "METRIC_CATALOG",
    "MetricResult",
    "ConditionalMetricResult",
    "EqualityConcept",
    # legal / criteria / audit
    "four_fifths_rule",
    "UseCaseProfile",
    "Recommendation",
    "recommend_metrics",
    "risk_flags",
    "FairnessAudit",
    "AuditReport",
    "ComplianceDossier",
    "run_compliance_workflow",
    # façade / streaming
    "audit",
    "AuditConfig",
    "MonitorConfig",
    "ScanConfig",
    "AuditAccumulator",
    "FairnessMonitor",
    "MonitorFleet",
    "audit_stream",
    # service
    "JobEngine",
    "JobRecord",
]
