"""Tests for repro.stats.distances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.stats import (
    align_distributions,
    hellinger_distance,
    js_divergence,
    kl_divergence,
    mmd_rbf,
    sinkhorn_plan,
    total_variation_distance,
    wasserstein1_empirical,
    wasserstein_discrete,
)


UNIFORM2 = np.array([0.5, 0.5])
POINT = np.array([1.0, 0.0])


class TestDiscreteDistances:
    def test_identity_is_zero(self):
        for dist in (hellinger_distance, total_variation_distance,
                     kl_divergence, js_divergence):
            assert dist(UNIFORM2, UNIFORM2) == pytest.approx(0.0, abs=1e-9)

    def test_disjoint_supports_maximal(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert hellinger_distance(p, q) == pytest.approx(1.0)
        assert total_variation_distance(p, q) == pytest.approx(1.0)
        assert js_divergence(p, q) == pytest.approx(np.log(2))

    def test_known_tv_value(self):
        p = np.array([0.7, 0.3])
        q = np.array([0.4, 0.6])
        assert total_variation_distance(p, q) == pytest.approx(0.3)

    def test_kl_asymmetric(self):
        p = np.array([0.9, 0.1])
        q = np.array([0.5, 0.5])
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))

    def test_accepts_dict_input(self):
        assert total_variation_distance(
            {"a": 0.7, "b": 0.3}, {"a": 0.4, "b": 0.6}
        ) == pytest.approx(0.3)

    def test_normalises_unnormalised_input(self):
        assert total_variation_distance([7, 3], [4, 6]) == pytest.approx(0.3)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValidationError, match="shape mismatch"):
            hellinger_distance([0.5, 0.5], [0.3, 0.3, 0.4])

    def test_negative_mass_raises(self):
        with pytest.raises(ValidationError, match="negative"):
            total_variation_distance([-0.5, 1.5], [0.5, 0.5])

    def test_align_distributions(self):
        p, q, support = align_distributions({"a": 0.5, "b": 0.5}, {"b": 1.0})
        assert support == ["a", "b"]
        np.testing.assert_allclose(p, [0.5, 0.5])
        np.testing.assert_allclose(q, [0.0, 1.0])

    @given(
        st.lists(st.floats(0.01, 10), min_size=2, max_size=8),
        st.lists(st.floats(0.01, 10), min_size=2, max_size=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_metric_properties(self, p_raw, q_raw):
        size = min(len(p_raw), len(q_raw))
        p = np.array(p_raw[:size])
        q = np.array(q_raw[:size])
        h = hellinger_distance(p, q)
        tv = total_variation_distance(p, q)
        assert 0.0 <= h <= 1.0 + 1e-9
        assert 0.0 <= tv <= 1.0 + 1e-9
        # symmetry
        assert h == pytest.approx(hellinger_distance(q, p))
        assert tv == pytest.approx(total_variation_distance(q, p))
        # standard inequality: H^2 <= TV <= H * sqrt(2)
        assert h**2 <= tv + 1e-9
        assert tv <= h * np.sqrt(2) + 1e-9


class TestWasserstein1Empirical:
    def test_identical_samples(self):
        x = np.array([1.0, 2.0, 3.0])
        assert wasserstein1_empirical(x, x) == pytest.approx(0.0)

    def test_constant_shift(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, 4000)
        assert wasserstein1_empirical(x, x + 2.5) == pytest.approx(2.5, abs=0.05)

    def test_point_masses(self):
        assert wasserstein1_empirical([0.0], [3.0]) == pytest.approx(3.0)

    def test_different_sample_sizes(self):
        x = np.array([0.0, 1.0])
        y = np.array([0.0, 0.5, 1.0])
        value = wasserstein1_empirical(x, y)
        assert 0.0 <= value <= 0.5

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0, 1, 500)
        y = rng.normal(1, 2, 700)
        assert wasserstein1_empirical(x, y) == pytest.approx(
            wasserstein1_empirical(y, x)
        )


class TestDiscreteOT:
    def test_lp_matches_manual(self):
        p = np.array([0.5, 0.5])
        q = np.array([0.0, 1.0])
        cost = np.array([[0.0, 1.0], [1.0, 0.0]])
        value, plan = wasserstein_discrete(p, q, cost)
        assert value == pytest.approx(0.5)
        np.testing.assert_allclose(plan.sum(axis=1), p, atol=1e-8)
        np.testing.assert_allclose(plan.sum(axis=0), q, atol=1e-8)

    def test_identity_zero_cost(self):
        p = np.array([0.3, 0.7])
        cost = np.array([[0.0, 1.0], [1.0, 0.0]])
        value, __ = wasserstein_discrete(p, p, cost)
        assert value == pytest.approx(0.0, abs=1e-9)

    def test_cost_shape_checked(self):
        with pytest.raises(ValidationError, match="shape"):
            wasserstein_discrete([0.5, 0.5], [0.5, 0.5], np.zeros((3, 2)))

    def test_sinkhorn_approaches_exact(self):
        rng = np.random.default_rng(0)
        p = rng.random(5)
        q = rng.random(5)
        grid = np.arange(5, dtype=float)
        cost = np.abs(grid[:, None] - grid[None, :])
        exact, __ = wasserstein_discrete(p, q, cost)
        loose, __ = sinkhorn_plan(p, q, cost, epsilon=1.0)
        tight, __ = sinkhorn_plan(p, q, cost, epsilon=0.01)
        assert abs(tight - exact) < abs(loose - exact) + 1e-9
        assert abs(tight - exact) < 0.05

    def test_sinkhorn_marginals(self):
        p = np.array([0.2, 0.8])
        q = np.array([0.6, 0.4])
        cost = np.array([[0.0, 1.0], [1.0, 0.0]])
        __, plan = sinkhorn_plan(p, q, cost, epsilon=0.1)
        np.testing.assert_allclose(plan.sum(axis=1), p, atol=1e-6)
        np.testing.assert_allclose(plan.sum(axis=0), q, atol=1e-6)

    def test_sinkhorn_zero_epsilon_rejected(self):
        with pytest.raises(ValidationError, match="positive"):
            sinkhorn_plan([0.5, 0.5], [0.5, 0.5], np.zeros((2, 2)), epsilon=0.0)


class TestMMD:
    def test_identical_distributions_small(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, 400)
        y = rng.normal(0, 1, 400)
        assert mmd_rbf(x, y) < 0.1

    def test_separated_distributions_large(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, 400)
        y = rng.normal(5, 1, 400)
        assert mmd_rbf(x, y) > 0.5

    def test_monotone_in_separation(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, 300)
        near = mmd_rbf(x, x + 0.5, bandwidth=1.0)
        far = mmd_rbf(x, x + 3.0, bandwidth=1.0)
        assert far > near

    def test_empty_sample_rejected(self):
        with pytest.raises(ValidationError, match="non-empty"):
            mmd_rbf([], [1.0])


class TestOtProperties:
    @given(
        st.lists(st.floats(0.05, 10), min_size=2, max_size=6),
        st.lists(st.floats(0.05, 10), min_size=2, max_size=6),
        st.floats(0.05, 1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_sinkhorn_marginals_property(self, p_raw, q_raw, epsilon):
        size = min(len(p_raw), len(q_raw))
        p = np.array(p_raw[:size])
        q = np.array(q_raw[:size])
        grid = np.arange(size, dtype=float)
        cost = np.abs(grid[:, None] - grid[None, :])
        __, plan = sinkhorn_plan(p, q, cost, epsilon=epsilon, max_iter=8000)
        np.testing.assert_allclose(plan.sum(axis=1), p / p.sum(), atol=1e-4)
        np.testing.assert_allclose(plan.sum(axis=0), q / q.sum(), atol=1e-4)
        assert np.all(plan >= -1e-12)

    @given(
        st.lists(st.floats(-100, 100), min_size=2, max_size=40),
        st.lists(st.floats(-100, 100), min_size=2, max_size=40),
        st.lists(st.floats(-100, 100), min_size=2, max_size=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_w1_triangle_inequality(self, xs, ys, zs):
        x, y, z = np.array(xs), np.array(ys), np.array(zs)
        d_xy = wasserstein1_empirical(x, y)
        d_yz = wasserstein1_empirical(y, z)
        d_xz = wasserstein1_empirical(x, z)
        assert d_xz <= d_xy + d_yz + 1e-6

    @given(
        st.lists(st.floats(-50, 50), min_size=2, max_size=40),
        st.floats(-20, 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_w1_translation_property(self, xs, shift):
        x = np.array(xs)
        assert wasserstein1_empirical(x, x + shift) == pytest.approx(
            abs(shift), abs=1e-9
        )
