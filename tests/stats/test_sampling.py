"""Tests for repro.stats.sampling (Section IV.F sample complexity)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.stats import (
    DISTANCE_REGISTRY,
    dkw_sample_bound,
    empirical_distribution,
    estimate_required_samples,
    hoeffding_sample_bound,
    sample_complexity_curve,
    sample_from_distribution,
)


POPULATION = {"male": 0.5, "female": 0.5}
SKEWED = {"male": 0.8, "female": 0.2}


class TestEmpiricalDistribution:
    def test_counts(self):
        dist = empirical_distribution(["a", "a", "b", "a"])
        assert dist == {"a": 0.75, "b": 0.25}

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            empirical_distribution([])


class TestSampleFromDistribution:
    def test_respects_probabilities(self):
        sample = sample_from_distribution(SKEWED, 20000, random_state=0)
        share = np.mean(sample == "male")
        assert share == pytest.approx(0.8, abs=0.01)

    def test_deterministic(self):
        a = sample_from_distribution(POPULATION, 50, random_state=3)
        b = sample_from_distribution(POPULATION, 50, random_state=3)
        np.testing.assert_array_equal(a, b)

    def test_bad_distribution_rejected(self):
        with pytest.raises(ValidationError):
            sample_from_distribution({"a": -1.0, "b": 2.0}, 10)

    def test_numeric_keys_keep_numeric_dtype(self):
        sample = sample_from_distribution({0: 0.5, 1: 0.5}, 40, random_state=1)
        assert np.issubdtype(sample.dtype, np.integer)
        sample = sample_from_distribution(
            {0.25: 0.5, 0.75: 0.5}, 40, random_state=1
        )
        assert np.issubdtype(sample.dtype, np.floating)

    def test_string_keys_unchanged(self):
        sample = sample_from_distribution(POPULATION, 40, random_state=1)
        assert set(np.unique(sample)) <= {"male", "female"}

    def test_mixed_keys_not_coerced(self):
        # np.array(["a", 1]) would silently stringify the int; the
        # sampler must keep heterogeneous keys as objects instead.
        sample = sample_from_distribution({"a": 0.5, 1: 0.5}, 60,
                                          random_state=2)
        assert sample.dtype == object
        assert set(sample.tolist()) <= {"a", 1}
        assert any(isinstance(v, int) for v in sample.tolist())


class TestSampleComplexityCurve:
    @pytest.mark.parametrize("name", sorted(DISTANCE_REGISTRY))
    def test_error_decreases_with_n(self, name):
        curve = sample_complexity_curve(
            DISTANCE_REGISTRY[name],
            population=SKEWED,
            reference=POPULATION,
            sample_sizes=[30, 300, 3000],
            n_trials=25,
            distance_name=name,
            random_state=0,
        )
        errors = curve.errors()
        assert errors[0] > errors[-1]
        assert curve.true_value > 0

    def test_rate_near_root_n(self):
        curve = sample_complexity_curve(
            DISTANCE_REGISTRY["total_variation"],
            population=SKEWED,
            reference=POPULATION,
            sample_sizes=[50, 200, 800, 3200],
            n_trials=40,
            random_state=1,
        )
        rate = curve.empirical_rate()
        assert 0.3 < rate < 0.8  # ≈ 0.5 up to noise

    def test_required_samples_extrapolation(self):
        curve = sample_complexity_curve(
            DISTANCE_REGISTRY["total_variation"],
            population=SKEWED,
            reference=POPULATION,
            sample_sizes=[50, 200, 800],
            n_trials=30,
            random_state=2,
        )
        target = curve.errors()[-1] / 4
        needed = estimate_required_samples(curve, target)
        assert needed > 800

    def test_empty_sizes_rejected(self):
        with pytest.raises(ValidationError, match="non-empty"):
            sample_complexity_curve(
                DISTANCE_REGISTRY["hellinger"], SKEWED, POPULATION, []
            )

    def test_bad_target_rejected(self):
        curve = sample_complexity_curve(
            DISTANCE_REGISTRY["hellinger"], SKEWED, POPULATION,
            [50, 100], n_trials=5, random_state=0,
        )
        with pytest.raises(ValidationError, match="positive"):
            estimate_required_samples(curve, 0.0)


class TestTheoreticalBounds:
    def test_hoeffding_known_value(self):
        # ln(2/0.05)/(2*0.01^2) ≈ 18444.4
        assert hoeffding_sample_bound(0.01, 0.05) == 18445

    def test_bound_shrinks_with_looser_epsilon(self):
        assert hoeffding_sample_bound(0.1) < hoeffding_sample_bound(0.01)

    def test_bound_grows_with_confidence(self):
        assert hoeffding_sample_bound(0.05, delta=0.001) > (
            hoeffding_sample_bound(0.05, delta=0.1)
        )

    def test_dkw_matches_hoeffding_form(self):
        assert dkw_sample_bound(0.02, 0.05) == hoeffding_sample_bound(0.02, 0.05)

    def test_bound_dominates_empirical_error(self):
        # at the bound's sample size, the observed error should be within
        # epsilon (with margin to spare, since Hoeffding is worst-case)
        epsilon = 0.05
        n = hoeffding_sample_bound(epsilon, delta=0.05)
        curve = sample_complexity_curve(
            DISTANCE_REGISTRY["total_variation"],
            population={"a": 0.7, "b": 0.3},
            reference={"a": 0.5, "b": 0.5},
            sample_sizes=[n],
            n_trials=15,
            random_state=0,
        )
        assert curve.errors()[0] < epsilon

    def test_validation(self):
        import pytest as _pytest
        from repro.exceptions import ValidationError as _VE

        with _pytest.raises(_VE):
            hoeffding_sample_bound(0.0)
        with _pytest.raises(_VE):
            hoeffding_sample_bound(0.1, delta=1.5)
