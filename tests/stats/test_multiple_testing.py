"""Tests for multiple-testing corrections and their subgroup integration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import make_intersectional
from repro.exceptions import AuditError, ValidationError
from repro.stats import benjamini_hochberg, holm_bonferroni
from repro.subgroup import adjust_for_multiple_testing, audit_subgroups


class TestHolmBonferroni:
    def test_single_test_unchanged(self):
        np.testing.assert_allclose(holm_bonferroni([0.03]), [0.03])

    def test_known_example(self):
        # sorted p: 0.01, 0.02, 0.04 with m=3:
        # 3*0.01=0.03, 2*0.02=0.04, 1*0.04=0.04
        adjusted = holm_bonferroni([0.04, 0.01, 0.02])
        np.testing.assert_allclose(adjusted, [0.04, 0.03, 0.04])

    def test_monotone_in_input_order_of_sorted(self):
        adjusted = holm_bonferroni([0.001, 0.01, 0.05, 0.2])
        assert np.all(np.diff(adjusted) >= 0)

    def test_capped_at_one(self):
        adjusted = holm_bonferroni([0.5] * 10)
        assert np.all(adjusted == 1.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            holm_bonferroni([])
        with pytest.raises(ValidationError):
            holm_bonferroni([1.5])


class TestBenjaminiHochberg:
    def test_known_example(self):
        # sorted p: 0.01, 0.02, 0.03, 0.04 with m=4:
        # 4*0.01/1=0.04, 4*0.02/2=0.04, 4*0.03/3=0.04, 4*0.04/4=0.04
        adjusted = benjamini_hochberg([0.01, 0.02, 0.03, 0.04])
        np.testing.assert_allclose(adjusted, [0.04] * 4)

    def test_less_conservative_than_holm(self):
        p = [0.001, 0.008, 0.039, 0.041, 0.1]
        holm = holm_bonferroni(p)
        bh = benjamini_hochberg(p)
        assert np.all(bh <= holm + 1e-12)

    @given(st.lists(st.floats(0.0, 1.0), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_adjusted_at_least_raw_and_bounded(self, p_values):
        for method in (holm_bonferroni, benjamini_hochberg):
            adjusted = method(p_values)
            assert np.all(adjusted >= np.asarray(p_values) - 1e-12)
            assert np.all(adjusted <= 1.0 + 1e-12)

    @given(st.lists(st.floats(0.0, 1.0), min_size=2, max_size=20),
           st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_permutation_equivariance(self, p_values, seed):
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(p_values))
        p = np.asarray(p_values)
        for method in (holm_bonferroni, benjamini_hochberg):
            direct = method(p)[order]
            permuted = method(p[order])
            np.testing.assert_allclose(direct, permuted)


class TestSubgroupIntegration:
    @pytest.fixture(scope="class")
    def findings(self):
        ds = make_intersectional(n=6000, subgroup_penalty=0.3, random_state=0)
        return audit_subgroups(
            ds.labels(), ds, attributes=["gender", "race"], max_order=2
        )

    def test_adjustment_attaches_values(self, findings):
        adjusted = adjust_for_multiple_testing(findings)
        assert len(adjusted) == len(findings)
        for before, after in zip(findings, adjusted):
            assert before.adjusted_p_value is None
            assert after.adjusted_p_value is not None
            assert after.adjusted_p_value >= before.p_value - 1e-12
            assert after.subgroup.label() == before.subgroup.label()

    def test_planted_disparity_survives_correction(self, findings):
        adjusted = adjust_for_multiple_testing(findings, method="holm")
        crossed = [
            f for f in adjusted
            if f.subgroup.label() == "gender=female ∧ race=caucasian"
        ][0]
        assert crossed.significant()

    def test_marginal_noise_does_not_survive(self, findings):
        adjusted = adjust_for_multiple_testing(findings)
        marginals = [f for f in adjusted if f.subgroup.order == 1]
        assert all(not f.significant() for f in marginals)

    def test_bh_method(self, findings):
        adjusted = adjust_for_multiple_testing(findings, method="bh")
        assert all(f.adjusted_p_value is not None for f in adjusted)

    def test_unknown_method_raises(self, findings):
        with pytest.raises(AuditError, match="unknown correction"):
            adjust_for_multiple_testing(findings, method="magic")

    def test_empty_input(self):
        assert adjust_for_multiple_testing([]) == []
