"""Tests for repro.stats.tests."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.stats import (
    bootstrap_ci,
    chi_square_independence,
    min_detectable_gap,
    permutation_test,
    two_proportion_z_test,
    wilson_interval,
)


class TestTwoProportionZ:
    def test_obvious_difference_significant(self):
        result = two_proportion_z_test(90, 100, 10, 100)
        assert result.significant()
        assert result.p_value < 1e-10

    def test_identical_proportions_not_significant(self):
        result = two_proportion_z_test(50, 100, 50, 100)
        assert not result.significant()
        assert result.p_value == pytest.approx(1.0)

    def test_small_samples_wide(self):
        # 2/3 vs 1/3 on three observations each: nowhere near significant
        result = two_proportion_z_test(2, 3, 1, 3)
        assert not result.significant()

    def test_degenerate_all_same(self):
        result = two_proportion_z_test(0, 10, 0, 10)
        assert result.p_value == 1.0

    def test_validation(self):
        with pytest.raises(ValidationError, match="non-empty"):
            two_proportion_z_test(0, 0, 1, 2)
        with pytest.raises(ValidationError, match="exceed"):
            two_proportion_z_test(5, 3, 1, 2)
        with pytest.raises(ValidationError, match="non-negative"):
            two_proportion_z_test(-1, 3, 1, 2)


class TestChiSquare:
    def test_independent_table(self):
        table = [[50, 50], [50, 50]]
        result = chi_square_independence(table)
        assert not result.significant()

    def test_dependent_table(self):
        table = [[90, 10], [10, 90]]
        result = chi_square_independence(table)
        assert result.significant()

    def test_rejects_1d(self):
        with pytest.raises(ValidationError, match="2x2"):
            chi_square_independence([1, 2, 3])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError, match="observations"):
            chi_square_independence([[0, 0], [0, 0]])

    def test_correction_flag_changes_statistic(self):
        table = [[40, 60], [55, 45]]
        corrected = chi_square_independence(table)
        uncorrected = chi_square_independence(table, correction=False)
        # Yates' correction shrinks the statistic, never grows it.
        assert uncorrected.statistic > corrected.statistic
        assert uncorrected.p_value < corrected.p_value

    def test_uncorrected_chi2_equals_z_squared(self):
        # Documented discrepancy: on a 2x2 table the *uncorrected*
        # chi-square equals the square of the two-proportion z — the
        # default (Yates-corrected) statistic deliberately does not.
        table = [[40, 60], [55, 45]]
        chi = chi_square_independence(table, correction=False)
        z = two_proportion_z_test(40, 100, 55, 100)
        assert chi.statistic == pytest.approx(z.statistic**2, abs=1e-9)
        assert chi.p_value == pytest.approx(z.p_value, abs=1e-9)


class TestPermutationTest:
    def test_shifted_samples_significant(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, 80)
        y = rng.normal(1.5, 1, 80)
        result = permutation_test(x, y, random_state=1)
        assert result.significant()

    def test_same_distribution_not_significant(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, 80)
        y = rng.normal(0, 1, 80)
        result = permutation_test(x, y, random_state=1)
        assert result.p_value > 0.05

    def test_p_value_never_zero(self):
        result = permutation_test(
            [0.0] * 20, [10.0] * 20, n_permutations=100, random_state=0
        )
        assert result.p_value > 0

    def test_custom_statistic(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, 60)
        y = rng.normal(0, 4, 60)  # same mean, different variance
        mean_result = permutation_test(x, y, random_state=2)
        var_result = permutation_test(
            x, y,
            statistic=lambda a, b: float(np.var(a) - np.var(b)),
            random_state=2,
        )
        assert var_result.p_value < mean_result.p_value


class TestBootstrapCI:
    def test_covers_true_mean(self):
        rng = np.random.default_rng(0)
        values = rng.normal(5.0, 1.0, 400)
        lo, hi = bootstrap_ci(values, random_state=1)
        assert lo < 5.0 < hi
        assert hi - lo < 0.5

    def test_higher_confidence_wider(self):
        rng = np.random.default_rng(0)
        values = rng.normal(0, 1, 200)
        lo90, hi90 = bootstrap_ci(values, confidence=0.90, random_state=1)
        lo99, hi99 = bootstrap_ci(values, confidence=0.99, random_state=1)
        assert (hi99 - lo99) > (hi90 - lo90)

    def test_custom_statistic(self):
        values = np.arange(100.0)
        lo, hi = bootstrap_ci(
            values, statistic=lambda a: float(np.median(a)), random_state=0
        )
        assert lo < 49.5 < hi


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(30, 100)
        assert lo < 0.3 < hi

    def test_returns_builtin_floats(self):
        # Regression: the bounds used to come back as np.float64, which
        # leaks numpy scalars into serialized reports.
        lo, hi = wilson_interval(30, 100)
        assert type(lo) is float
        assert type(hi) is float

    def test_bounds_clipped(self):
        lo, __ = wilson_interval(0, 10)
        __, hi = wilson_interval(10, 10)
        assert lo == pytest.approx(0.0, abs=1e-12)
        assert hi == pytest.approx(1.0, abs=1e-12)

    def test_narrows_with_n(self):
        lo_s, hi_s = wilson_interval(5, 10)
        lo_l, hi_l = wilson_interval(500, 1000)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_validation(self):
        with pytest.raises(ValidationError):
            wilson_interval(5, 0)
        with pytest.raises(ValidationError):
            wilson_interval(11, 10)


class TestMinDetectableGap:
    def test_shrinks_with_sample_size(self):
        small = min_detectable_gap(50, 50)
        large = min_detectable_gap(5000, 5000)
        assert large < small

    def test_reasonable_magnitude(self):
        # ~0.28 for n=100 each at p=0.5
        gap = min_detectable_gap(100, 100)
        assert 0.15 < gap < 0.35

    def test_unbalanced_groups_hurt(self):
        balanced = min_detectable_gap(500, 500)
        unbalanced = min_detectable_gap(950, 50)
        assert unbalanced > balanced
