"""Unit tests for repro._validation and the exception hierarchy."""

import numpy as np
import pytest

from repro._validation import (
    check_array_1d,
    check_binary_array,
    check_in_range,
    check_matrix_2d,
    check_membership,
    check_nonempty,
    check_nonnegative,
    check_positive_int,
    check_probability,
    check_random_state,
    check_same_length,
)
from repro.exceptions import (
    AuditError,
    CausalModelError,
    DatasetError,
    InsufficientDataError,
    LegalCatalogError,
    MetricError,
    MitigationError,
    NotFittedError,
    ReproError,
    SchemaError,
    ValidationError,
)


class TestArrayChecks:
    def test_array_1d_accepts_lists(self):
        arr = check_array_1d([1, 2, 3], "x")
        assert arr.shape == (3,)

    def test_array_1d_rejects_scalar(self):
        with pytest.raises(ValidationError, match="scalar"):
            check_array_1d(5, "x")

    def test_array_1d_rejects_2d(self):
        with pytest.raises(ValidationError, match="1-dimensional"):
            check_array_1d(np.zeros((2, 2)), "x")

    def test_binary_accepts_bools(self):
        arr = check_binary_array([True, False], "y")
        assert arr.dtype == np.int64
        assert arr.tolist() == [1, 0]

    def test_binary_accepts_integer_floats(self):
        arr = check_binary_array([1.0, 0.0], "y")
        assert arr.tolist() == [1, 0]

    def test_binary_rejects_fractional_floats(self):
        with pytest.raises(ValidationError, match="non-integer"):
            check_binary_array([0.5, 1.0], "y")

    def test_binary_rejects_other_integers(self):
        with pytest.raises(ValidationError, match="0/1"):
            check_binary_array([0, 1, 2], "y")

    def test_binary_rejects_strings(self):
        with pytest.raises(ValidationError, match="binary"):
            check_binary_array(["a", "b"], "y")

    def test_matrix_2d_reshapes_vectors(self):
        arr = check_matrix_2d([1.0, 2.0], "X")
        assert arr.shape == (2, 1)

    def test_matrix_2d_rejects_3d(self):
        with pytest.raises(ValidationError, match="2-dimensional"):
            check_matrix_2d(np.zeros((2, 2, 2)), "X")

    def test_matrix_2d_rejects_nan_and_inf(self):
        with pytest.raises(ValidationError, match="NaN or infinite"):
            check_matrix_2d([[np.inf, 0.0]], "X")

    def test_same_length_reports_names(self):
        with pytest.raises(ValidationError, match="a=2, b=3"):
            check_same_length(("a", [1, 2]), ("b", [1, 2, 3]))


class TestScalarChecks:
    def test_probability_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ValidationError):
            check_probability(-0.1, "p")
        with pytest.raises(ValidationError):
            check_probability(1.1, "p")

    def test_positive_int(self):
        assert check_positive_int(3, "n") == 3
        with pytest.raises(ValidationError):
            check_positive_int(0, "n")
        with pytest.raises(ValidationError):
            check_positive_int(2.5, "n")
        with pytest.raises(ValidationError):
            check_positive_int(True, "n")  # bools are not counts

    def test_nonnegative(self):
        assert check_nonnegative(0.0, "x") == 0.0
        with pytest.raises(ValidationError):
            check_nonnegative(-1e-9, "x")

    def test_in_range(self):
        assert check_in_range(0.5, "x", 0, 1) == 0.5
        with pytest.raises(ValidationError, match=r"\[0, 1\]"):
            check_in_range(2.0, "x", 0, 1)

    def test_membership(self):
        assert check_membership("a", "x", ["a", "b"]) == "a"
        with pytest.raises(ValidationError, match="one of"):
            check_membership("c", "x", ["a", "b"])

    def test_nonempty(self):
        assert check_nonempty([1], "xs") == [1]
        with pytest.raises(ValidationError, match="empty"):
            check_nonempty([], "xs")


class TestRandomState:
    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = check_random_state(7).random(3)
        b = check_random_state(7).random(3)
        np.testing.assert_allclose(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert check_random_state(rng) is rng

    def test_rejects_other_types(self):
        with pytest.raises(ValidationError):
            check_random_state("seed")
        with pytest.raises(ValidationError):
            check_random_state(True)


class TestExceptionHierarchy:
    @pytest.mark.parametrize("exc", [
        ValidationError, SchemaError, DatasetError, NotFittedError,
        CausalModelError, MetricError, InsufficientDataError, AuditError,
        LegalCatalogError, MitigationError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_validation_error_is_value_error(self):
        assert issubclass(ValidationError, ValueError)

    def test_not_fitted_is_runtime_error(self):
        assert issubclass(NotFittedError, RuntimeError)

    def test_insufficient_data_carries_context(self):
        exc = InsufficientDataError("empty", group="g", count=0)
        assert exc.group == "g"
        assert exc.count == 0
        assert issubclass(InsufficientDataError, MetricError)
