"""Tests for the lattice-pruned / incremental scanner (repro.subgroup.search).

The contract under test is the ISSUE's equivalence guarantee: every
strategy produces the same flagged set, the same Holm/BH-adjusted
values on that set, and byte-identical final checkpoint files — the
pruned strategies merely skip work that provably cannot flag.
"""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro.core.config import ScanConfig
from repro.data import Column, Schema, TabularDataset, make_intersectional
from repro.exceptions import AuditError, CheckpointError, ValidationError
from repro.kernel import use_backend
from repro.streaming.accumulator import AuditAccumulator
from repro.subgroup import (
    ScanState,
    adjust_for_multiple_testing,
    audit_subgroups,
    rescan,
    scan_subgroups,
)


def _noisy_dataset(n=3000, seed=0, n_attrs=3, cats=("a", "b", "c")):
    """Multi-attribute data with one planted disparity and much noise.

    More attributes / categories than ``make_intersectional`` so the
    lattice has enough cells for pruning to matter either way.
    """
    rng = np.random.default_rng(seed)
    columns = []
    data = {}
    for i in range(n_attrs):
        name = f"g{i}"
        columns.append(
            Column(name, kind="categorical", role="protected",
                   categories=tuple(cats))
        )
        data[name] = rng.choice(cats, size=n)
    columns.append(Column("y", kind="binary", role="label"))
    rate = 0.45 + 0.25 * ((data["g0"] == "a") & (data["g1"] == "b"))
    data["y"] = (rng.random(n) < rate).astype(int)
    return TabularDataset(Schema(tuple(columns)), data)


def _flag_key(findings, alpha):
    return sorted(
        (f.subgroup.label(), f.p_value, f.adjusted_p_value)
        for f in findings
        if f.significant(alpha)
    )


@pytest.fixture(scope="module")
def dataset():
    return _noisy_dataset()


@pytest.fixture(scope="module")
def intersectional():
    return make_intersectional(n=4000, subgroup_penalty=0.3, random_state=0)


class TestScanConfigValidation:
    def test_defaults_valid(self):
        config = ScanConfig()
        assert config.strategy == "exhaustive"

    @pytest.mark.parametrize("field,value", [
        ("checkpoint_every", 0),
        ("checkpoint_every", -3),
        ("max_order", 0),
        ("min_size", 0),
        ("jobs", 0),
    ])
    def test_rejects_nonpositive_naming_field(self, field, value):
        with pytest.raises(ValueError, match=field):
            ScanConfig(**{field: value})

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="strategy"):
            ScanConfig(strategy="depth_first")

    def test_rejects_negative_bound_slack(self):
        with pytest.raises(ValueError, match="bound_slack"):
            ScanConfig(bound_slack=-0.1)

    def test_legacy_kwargs_validated_with_field_name(self, dataset):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError, match="checkpoint_every"):
                audit_subgroups(
                    dataset.labels(), dataset, checkpoint_every=0
                )
            with pytest.raises(ValueError, match="max_order"):
                audit_subgroups(dataset.labels(), dataset, max_order=0)

    def test_roundtrip_and_unknown_key(self):
        config = ScanConfig(strategy="best_first", alpha=0.01, jobs=2)
        assert ScanConfig.from_dict(config.to_dict()) == config
        with pytest.raises(AuditError, match="bogus"):
            ScanConfig.from_dict({"bogus": 1})

    def test_fingerprint_covers_strategy_equivalence_key_does_not(self):
        a = ScanConfig(strategy="exhaustive")
        b = ScanConfig(strategy="best_first")
        assert a.fingerprint() != b.fingerprint()
        assert a.equivalence_key() == b.equivalence_key()


class TestDeprecationShim:
    def test_loose_kwargs_warn_once_with_names(self, dataset):
        with pytest.warns(DeprecationWarning, match="max_order"):
            audit_subgroups(
                dataset.labels(), dataset, max_order=1, min_size=20
            )

    def test_scan_config_does_not_warn(self, dataset):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            audit_subgroups(
                dataset.labels(), dataset,
                scan_config=ScanConfig(max_order=1, min_size=20),
            )

    def test_loose_kwarg_overrides_scan_config(self, dataset):
        with pytest.warns(DeprecationWarning):
            findings = audit_subgroups(
                dataset.labels(), dataset,
                scan_config=ScanConfig(max_order=2),
                max_order=1,
            )
        assert all(f.subgroup.order == 1 for f in findings)


class TestStrategyEquivalence:
    @pytest.mark.parametrize("correction", ["holm", "bh", "none"])
    def test_flagged_set_and_corrections_match(self, dataset, correction):
        config = ScanConfig(correction=correction, min_size=15)
        exhaustive = audit_subgroups(
            dataset.labels(), dataset, scan_config=config
        )
        if correction != "none":
            exhaustive = adjust_for_multiple_testing(
                exhaustive, method=correction
            )
        pruned = scan_subgroups(
            dataset.labels(), dataset,
            config=config.replace(strategy="best_first"),
        )
        assert pruned.pruned > 0
        assert _flag_key(pruned.findings, config.alpha) == _flag_key(
            exhaustive, config.alpha
        )

    @pytest.mark.parametrize("backend,jobs", [
        ("kernel", 1), ("kernel", 2), ("reference", 1),
    ])
    def test_checkpoint_bytes_identical(
        self, dataset, tmp_path, backend, jobs
    ):
        paths = {}
        for strategy in ("exhaustive", "best_first"):
            path = tmp_path / f"{backend}-{jobs}-{strategy}.json"
            with use_backend(backend):
                scan_subgroups(
                    dataset.labels(), dataset,
                    config=ScanConfig(
                        strategy=strategy, min_size=15, jobs=jobs
                    ),
                    checkpoint_path=str(path),
                )
            paths[strategy] = path.read_bytes()
        assert paths["exhaustive"] == paths["best_first"]

    def test_checkpoint_bytes_identical_across_backends(
        self, dataset, tmp_path
    ):
        blobs = []
        for backend in ("kernel", "reference"):
            path = tmp_path / f"{backend}.json"
            with use_backend(backend):
                scan_subgroups(
                    dataset.labels(), dataset,
                    config=ScanConfig(strategy="best_first", min_size=15),
                    checkpoint_path=str(path),
                )
            blobs.append(path.read_bytes())
        assert blobs[0] == blobs[1]

    def test_exhaustive_strategy_matches_legacy_scan(self, intersectional):
        legacy = audit_subgroups(
            intersectional.labels(), intersectional,
            scan_config=ScanConfig(),
        )
        legacy = adjust_for_multiple_testing(legacy, method="holm")
        result = scan_subgroups(
            intersectional.labels(), intersectional, config=ScanConfig()
        )
        assert result.pruned == 0
        assert [f.subgroup.label() for f in result.findings] == [
            f.subgroup.label() for f in legacy
        ]
        assert [f.adjusted_p_value for f in result.findings] == [
            f.adjusted_p_value for f in legacy
        ]

    def test_jobs_require_kernel_backend(self, dataset):
        with use_backend("reference"):
            with pytest.raises(AuditError, match="backend"):
                scan_subgroups(
                    dataset.labels(), dataset,
                    config=ScanConfig(strategy="best_first", jobs=2),
                )

    def test_dispatch_through_audit_subgroups(self, dataset):
        findings = audit_subgroups(
            dataset.labels(), dataset,
            scan_config=ScanConfig(strategy="best_first", min_size=15),
        )
        direct = scan_subgroups(
            dataset.labels(), dataset,
            config=ScanConfig(strategy="best_first", min_size=15),
        )
        assert [f.subgroup.label() for f in findings] == [
            f.subgroup.label() for f in direct.findings
        ]
        # corrections arrive pre-attached from the censored-exact pass
        assert any(f.adjusted_p_value is not None for f in findings)


class TestBoundSoundness:
    @pytest.mark.parametrize("seed", range(8))
    def test_never_prunes_a_flagged_subgroup(self, seed):
        """Property: across datasets the pruned flagged set is exact."""
        rng = np.random.default_rng(seed)
        data = _noisy_dataset(
            n=int(rng.integers(500, 2500)),
            seed=seed,
            n_attrs=int(rng.integers(2, 4)),
        )
        for correction in ("holm", "bh"):
            config = ScanConfig(correction=correction, min_size=10)
            exhaustive = scan_subgroups(
                data.labels(), data, config=config
            )
            pruned = scan_subgroups(
                data.labels(), data,
                config=config.replace(strategy="best_first"),
            )
            assert _flag_key(pruned.findings, config.alpha) == _flag_key(
                exhaustive.findings, config.alpha
            )
            assert pruned.total == exhaustive.total
            assert pruned.evaluated + pruned.pruned <= pruned.total


class TestIncremental:
    def _split(self, n_total, n_prefix, seed=3):
        full = _noisy_dataset(n=n_total, seed=seed)
        prefix = full.take(np.arange(n_prefix))
        return prefix, full

    def test_rescan_matches_from_scratch(self, tmp_path):
        prefix, full = self._split(3000, 2000)
        config = ScanConfig(strategy="incremental", min_size=15)
        state_path = tmp_path / "scan.state.json"
        first = scan_subgroups(
            prefix.labels(), prefix, config=config,
            state_path=str(state_path),
        )
        assert state_path.exists()
        ckpt_inc = tmp_path / "inc.ckpt.json"
        grown = scan_subgroups(
            full.labels(), full, config=config,
            state_path=str(state_path), checkpoint_path=str(ckpt_inc),
        )
        assert grown.rescored > 0
        scratch_state = tmp_path / "scratch.state.json"
        ckpt_scratch = tmp_path / "scratch.ckpt.json"
        scratch = scan_subgroups(
            full.labels(), full, config=config,
            state_path=str(scratch_state),
            checkpoint_path=str(ckpt_scratch),
        )
        assert _flag_key(grown.findings, config.alpha) == _flag_key(
            scratch.findings, config.alpha
        )
        assert [f.p_value for f in grown.findings] == [
            f.p_value for f in scratch.findings
        ]
        # the durable artifacts are byte-identical either way
        assert ckpt_inc.read_bytes() == ckpt_scratch.read_bytes()
        assert state_path.read_bytes() == scratch_state.read_bytes()
        assert first.rescored == 0

    def test_noop_rescan_rescores_nothing(self, tmp_path):
        prefix, _ = self._split(2000, 2000)
        config = ScanConfig(strategy="incremental", min_size=15)
        state_path = tmp_path / "scan.state.json"
        scan_subgroups(
            prefix.labels(), prefix, config=config,
            state_path=str(state_path),
        )
        again = scan_subgroups(
            prefix.labels(), prefix, config=config,
            state_path=str(state_path),
        )
        assert again.rescored == 0

    def test_shrunk_data_refused(self, tmp_path):
        prefix, full = self._split(2500, 1500)
        config = ScanConfig(strategy="incremental", min_size=15)
        state_path = tmp_path / "scan.state.json"
        scan_subgroups(
            full.labels(), full, config=config, state_path=str(state_path)
        )
        with pytest.raises(CheckpointError):
            scan_subgroups(
                prefix.labels(), prefix, config=config,
                state_path=str(state_path),
            )

    def test_incremental_requires_state_path(self, dataset):
        with pytest.raises(AuditError, match="state_path"):
            scan_subgroups(
                dataset.labels(), dataset,
                config=ScanConfig(strategy="incremental"),
            )

    def test_state_refuses_other_lattice_config(self, tmp_path, dataset):
        config = ScanConfig(strategy="incremental", min_size=15)
        state_path = tmp_path / "scan.state.json"
        scan_subgroups(
            dataset.labels(), dataset, config=config,
            state_path=str(state_path),
        )
        with pytest.raises(CheckpointError):
            scan_subgroups(
                dataset.labels(), dataset,
                config=config.replace(min_size=30),
                state_path=str(state_path),
            )

    def test_explicit_rescan_entrypoint(self, tmp_path):
        prefix, full = self._split(2400, 1600)
        config = ScanConfig(strategy="incremental", min_size=15)
        state_path = tmp_path / "scan.state.json"
        scan_subgroups(
            prefix.labels(), prefix, config=config,
            state_path=str(state_path),
        )
        state = ScanState.load(str(state_path))
        result = rescan(
            state, full.labels(), full, state_path=str(state_path)
        )
        scratch = scan_subgroups(
            full.labels(), full,
            config=config, state_path=str(tmp_path / "other.json"),
        )
        assert _flag_key(result.findings, config.alpha) == _flag_key(
            scratch.findings, config.alpha
        )


class TestAccumulatorDiff:
    def _accumulate(self, dataset, rows):
        acc = AuditAccumulator(["g0", "g1"], label=None)
        piece = dataset.take(np.arange(rows[0], rows[1]))
        acc.ingest(
            protected={
                "g0": np.asarray(piece.column("g0")),
                "g1": np.asarray(piece.column("g1")),
            },
            predictions=np.asarray(piece.column("y")),
        )
        return acc

    def test_diff_is_merge_inverse(self, dataset):
        base = self._accumulate(dataset, (0, 1000))
        tail = self._accumulate(dataset, (1000, 2000))
        merged = self._accumulate(dataset, (0, 1000))
        merged.merge(tail)
        delta = merged.diff(base)
        assert delta.n_rows == tail.n_rows
        assert delta.to_dict()["cells"] == tail.to_dict()["cells"]

    def test_diff_rejects_non_prefix(self, dataset):
        base = self._accumulate(dataset, (0, 1000))
        other = self._accumulate(dataset, (500, 600))
        with pytest.raises(AuditError):
            other.diff(base)

    def test_diff_rejects_layout_mismatch(self, dataset):
        base = AuditAccumulator(["g0"], label=None)
        grown = self._accumulate(dataset, (0, 1000))
        with pytest.raises(AuditError):
            grown.diff(base)


class TestResume:
    def test_complete_checkpoint_rewritten_identically(
        self, dataset, tmp_path
    ):
        path = tmp_path / "done.json"
        config = ScanConfig(strategy="best_first", min_size=15)
        scan_subgroups(
            dataset.labels(), dataset, config=config,
            checkpoint_path=str(path),
        )
        done = path.read_bytes()
        assert json.loads(done)["payload"]["complete"]
        scan_subgroups(
            dataset.labels(), dataset, config=config,
            checkpoint_path=str(path), resume=True,
        )
        assert path.read_bytes() == done

    def test_resume_needs_checkpoint_path(self, dataset):
        with pytest.raises(CheckpointError):
            scan_subgroups(
                dataset.labels(), dataset, config=ScanConfig(), resume=True
            )
