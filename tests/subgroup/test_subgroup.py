"""Tests for repro.subgroup (Section IV.C)."""

import numpy as np
import pytest

from repro.data import make_intersectional
from repro.exceptions import AuditError, ValidationError
from repro.subgroup import (
    GerrymanderingAuditor,
    audit_subgroups,
    enumerate_subgroups,
    subgroup_space_size,
)


@pytest.fixture(scope="module")
def intersectional():
    return make_intersectional(n=6000, subgroup_penalty=0.3, random_state=0)


class TestSpaceSize:
    def test_order_one(self):
        # two binary attributes: 2 + 2 = 4 order-1 subgroups
        assert subgroup_space_size([2, 2], max_order=1) == 4

    def test_order_two(self):
        # + 2*2 = 4 order-2 conjunctions
        assert subgroup_space_size([2, 2], max_order=2) == 8

    def test_exponential_growth(self):
        # ten 5-category attributes at order 5: the IV.C blow-up
        size = subgroup_space_size([5] * 10, max_order=5)
        assert size > 500_000

    def test_order_capped_at_attribute_count(self):
        assert subgroup_space_size([2, 2], max_order=10) == 8


class TestEnumeration:
    def test_order_one_and_two(self, intersectional):
        subgroups = enumerate_subgroups(
            intersectional, ["gender", "race"], max_order=2
        )
        labels = {s.label() for s in subgroups}
        assert "gender=female" in labels
        assert "gender=female ∧ race=caucasian" in labels
        assert len(subgroups) == 8

    def test_masks_partition_at_fixed_order(self, intersectional):
        subgroups = enumerate_subgroups(
            intersectional, ["gender", "race"], max_order=2
        )
        order2 = [s for s in subgroups if s.order == 2]
        total = sum(s.size for s in order2)
        assert total == intersectional.n_rows

    def test_min_size_filter(self, intersectional):
        subgroups = enumerate_subgroups(
            intersectional, ["gender", "race"], max_order=2,
            min_size=10**9,
        )
        assert subgroups == []

    def test_budget_enforced(self, intersectional):
        with pytest.raises(AuditError, match="exceeding budget"):
            enumerate_subgroups(
                intersectional, ["gender", "race"], max_order=2, budget=3
            )

    def test_non_discrete_rejected(self, intersectional):
        with pytest.raises(AuditError, match="discrete"):
            enumerate_subgroups(intersectional, ["score"])

    def test_empty_attributes_rejected(self, intersectional):
        with pytest.raises(ValidationError):
            enumerate_subgroups(intersectional, [])


class TestAuditSubgroups:
    def test_crossed_subgroups_most_disparate(self, intersectional):
        findings = audit_subgroups(
            intersectional.labels(), intersectional,
            attributes=["gender", "race"], max_order=2,
        )
        # top findings (by |gap|) must be the order-2 crossed subgroups
        top_labels = {f.subgroup.label() for f in findings[:4]}
        assert "gender=male ∧ race=non_caucasian" in top_labels
        assert "gender=female ∧ race=caucasian" in top_labels

    def test_marginal_subgroups_near_parity(self, intersectional):
        findings = audit_subgroups(
            intersectional.labels(), intersectional,
            attributes=["gender", "race"], max_order=1,
        )
        assert all(abs(f.gap) < 0.05 for f in findings)

    def test_disadvantaged_crossed_groups_significant(self, intersectional):
        findings = audit_subgroups(
            intersectional.labels(), intersectional,
            attributes=["gender", "race"], max_order=2,
        )
        crossed = [
            f for f in findings
            if f.subgroup.label() == "gender=female ∧ race=caucasian"
        ][0]
        # subgroup rate ≈ 0.2; complement mixes the other three cells
        # (≈ 0.6), so the expected gap is ≈ −0.4
        assert crossed.gap < -0.35
        assert crossed.significant()
        assert crossed.ci_low < crossed.rate < crossed.ci_high

    def test_prediction_length_checked(self, intersectional):
        with pytest.raises(AuditError, match="length"):
            audit_subgroups([1, 0], intersectional)

    def test_min_size_excludes_sparse(self, intersectional):
        findings = audit_subgroups(
            intersectional.labels(), intersectional,
            attributes=["gender", "race"], min_size=10**9,
        )
        assert findings == []


class TestGerrymanderingAuditor:
    def test_finds_crossed_subgroup(self, intersectional):
        auditor = GerrymanderingAuditor(max_depth=3)
        finding = auditor.find_worst_subgroup(
            intersectional.labels(), intersectional,
        )
        # the oracle should isolate (a union of) the two crossed cells:
        # gap magnitude close to the planted 0.6
        assert abs(finding.gap) > 0.4
        assert finding.significant()

    def test_constant_predictions_rejected(self, intersectional):
        auditor = GerrymanderingAuditor()
        with pytest.raises(AuditError, match="constant"):
            auditor.find_worst_subgroup(
                np.ones(intersectional.n_rows, dtype=int), intersectional
            )

    def test_leaf_conditions_describe_subgroup(self, intersectional):
        auditor = GerrymanderingAuditor(max_depth=2)
        finding = auditor.find_worst_subgroup(
            intersectional.labels(), intersectional,
        )
        for attribute, value in finding.subgroup.conditions:
            assert attribute in ("gender", "race")

    def test_scales_where_enumeration_cannot(self):
        # Build a dataset with many protected attributes; enumeration at
        # high order would explode, the oracle still runs.
        rng = np.random.default_rng(0)
        from repro.data import Column, Schema, TabularDataset

        n = 3000
        columns = []
        data = {}
        for i in range(8):
            name = f"attr{i}"
            columns.append(Column(
                name, kind="categorical", role="protected",
                categories=("x", "y"),
            ))
            data[name] = rng.choice(["x", "y"], n)
        columns.append(Column("outcome", kind="binary", role="label"))
        # plant disparity on attr0=x ∧ attr1=y
        planted = (data["attr0"] == "x") & (data["attr1"] == "y")
        data["outcome"] = np.where(
            planted, (rng.random(n) < 0.2), (rng.random(n) < 0.7)
        ).astype(int)
        ds = TabularDataset(Schema(tuple(columns)), data)

        finding = GerrymanderingAuditor(max_depth=3).find_worst_subgroup(
            ds.labels(), ds
        )
        assert abs(finding.gap) > 0.3
