"""Tests for the CLI, dataset file I/O, and report serialisation."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core import FairnessAudit
from repro.core.serialize import (
    finding_to_dict,
    metric_result_to_dict,
    report_to_dict,
    report_to_json,
)
from repro.core.metrics import demographic_parity
from repro.data import make_hiring
from repro.data.io import (
    load_dataset,
    save_dataset,
    schema_from_dict,
    schema_to_dict,
)
from repro.exceptions import SchemaError


class TestSchemaSerialisation:
    def test_roundtrip(self, biased_hiring):
        payload = schema_to_dict(biased_hiring.schema)
        rebuilt = schema_from_dict(payload)
        assert rebuilt.names() == biased_hiring.schema.names()
        assert rebuilt["sex"].role == "protected"
        assert rebuilt["sex"].categories == ("male", "female")
        assert rebuilt["sex"].statute_tags == ("title_vii", "eu_2006_54")

    def test_json_compatible(self, biased_hiring):
        text = json.dumps(schema_to_dict(biased_hiring.schema))
        assert "protected" in text

    def test_missing_columns_key(self):
        with pytest.raises(SchemaError, match="columns"):
            schema_from_dict({})

    def test_missing_name_key(self):
        with pytest.raises(SchemaError, match="missing required key"):
            schema_from_dict({"columns": [{"kind": "numeric"}]})


class TestDatasetIO:
    def test_roundtrip(self, tmp_path, biased_hiring):
        path = tmp_path / "data.csv"
        save_dataset(biased_hiring, path)
        assert path.exists()
        assert (tmp_path / "data.csv.schema.json").exists()
        back = load_dataset(path)
        assert back.n_rows == biased_hiring.n_rows
        np.testing.assert_array_equal(back.labels(), biased_hiring.labels())
        np.testing.assert_allclose(
            back.column("experience"), biased_hiring.column("experience")
        )

    def test_explicit_schema_path(self, tmp_path, tiny_dataset):
        data = tmp_path / "d.csv"
        schema = tmp_path / "s.json"
        save_dataset(tiny_dataset, data, schema)
        back = load_dataset(data, schema)
        assert back.n_rows == tiny_dataset.n_rows


class TestReportSerialisation:
    @pytest.fixture(scope="class")
    def report(self):
        ds = make_hiring(
            n=1200, direct_bias=1.5, proxy_strength=0.8, random_state=7
        )
        return FairnessAudit(ds, tolerance=0.05, strata="university").run()

    def test_metric_result_dict(self):
        result = demographic_parity(
            [1, 0, 1, 1], ["a", "a", "b", "b"], with_significance=True
        )
        payload = metric_result_to_dict(result)
        assert payload["metric"] == "demographic_parity"
        assert len(payload["groups"]) == 2
        assert "significance" in payload
        json.dumps(payload)  # must be JSON-able

    def test_report_dict_structure(self, report):
        payload = report_to_dict(report)
        assert payload["counts"]["violations"] == len(report.violations())
        assert len(payload["findings"]) == len(report.findings)
        assert payload["is_clean"] == report.is_clean

    def test_report_json_parses(self, report):
        parsed = json.loads(report_to_json(report))
        metrics = {f["metric"] for f in parsed["findings"]}
        assert "demographic_parity" in metrics
        assert "conditional_statistical_parity" in metrics

    def test_conditional_results_nested(self, report):
        finding = report.finding("sex", "conditional_statistical_parity")
        payload = finding_to_dict(finding)
        assert "strata" in payload["result"]
        json.dumps(payload)

    def test_four_fifths_serialised(self, report):
        finding = report.finding("sex", "disparate_impact_ratio")
        payload = finding_to_dict(finding)
        assert "four_fifths" in payload
        assert isinstance(payload["four_fifths"]["passes"], bool)


class TestCli:
    def test_generate_then_audit_markdown(self, tmp_path, capsys):
        out = tmp_path / "h.csv"
        code = main([
            "generate", "--workload", "hiring", "--n", "600",
            "--bias", "2.0", "--proxy", "0.9", "--seed", "1",
            "--out", str(out),
        ])
        assert code == 0
        assert out.exists()
        capsys.readouterr()

        code = main(["audit", "--data", str(out), "--tolerance", "0.05"])
        output = capsys.readouterr().out
        assert code == 1  # violations found → nonzero for CI gating
        assert "Fairness audit report" in output
        assert "VIOLATIONS FOUND" in output

    def test_audit_clean_data_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "clean.csv"
        main(["generate", "--workload", "hiring", "--n", "3000",
              "--bias", "0.0", "--seed", "2", "--out", str(out)])
        capsys.readouterr()
        code = main(["audit", "--data", str(out), "--tolerance", "0.1"])
        capsys.readouterr()
        assert code == 0

    def test_audit_json_format(self, tmp_path, capsys):
        out = tmp_path / "h.csv"
        main(["generate", "--workload", "credit", "--n", "500",
              "--seed", "3", "--out", str(out)])
        capsys.readouterr()
        main(["audit", "--data", str(out), "--format", "json"])
        parsed = json.loads(capsys.readouterr().out)
        assert "findings" in parsed

    def test_audit_missing_file_exits_2(self, tmp_path, capsys):
        code = main(["audit", "--data", str(tmp_path / "absent.csv")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_recommend(self, capsys):
        code = main([
            "recommend", "--jurisdiction", "eu", "--structural-bias",
            "--affirmative-action", "--no-reliable-labels",
            "--legitimate-factor", "seniority", "--proxy-risk",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "demographic_parity" in output
        assert "proxy_discrimination" in output

    def test_statutes(self, capsys):
        code = main(["statutes", "--attribute", "sex",
                     "--sector", "employment", "--jurisdiction", "us"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Title VII" in output
        assert "Equal Pay Act" in output

    def test_statutes_no_match(self, capsys):
        code = main(["statutes", "--attribute", "favorite_color"])
        assert code == 0
        assert "no cataloged statute" in capsys.readouterr().out

    @pytest.mark.parametrize("workload", [
        "hiring", "credit", "housing", "recidivism", "intersectional",
    ])
    def test_all_workloads_generate(self, tmp_path, capsys, workload):
        out = tmp_path / f"{workload}.csv"
        code = main(["generate", "--workload", workload, "--n", "100",
                     "--seed", "0", "--out", str(out)])
        assert code == 0
        back = load_dataset(out)
        assert back.n_rows == 100


class TestCliDefineAndWorkflow:
    def test_define(self, capsys):
        code = main(["define", "disparate", "impact"])
        assert code == 0
        output = capsys.readouterr().out
        assert "disparate impact" in output
        assert "II.B.4" in output
        assert "see also" in output

    def test_define_unknown_exits_2(self, capsys):
        code = main(["define", "vibes"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_workflow_biased_exits_1(self, tmp_path, capsys):
        out = tmp_path / "h.csv"
        main(["generate", "--workload", "hiring", "--n", "1500",
              "--bias", "2.0", "--proxy", "0.9", "--seed", "4",
              "--out", str(out)])
        capsys.readouterr()
        code = main([
            "workflow", "--data", str(out),
            "--structural-bias", "--no-reliable-labels",
            "--strata", "university", "--proxy-risk",
        ])
        output = capsys.readouterr().out
        assert code == 1
        assert "Compliance dossier" in output
        assert "FAIL" in output

    def test_workflow_clean_exits_0(self, tmp_path, capsys):
        out = tmp_path / "clean.csv"
        main(["generate", "--workload", "hiring", "--n", "3000",
              "--bias", "0.0", "--seed", "5", "--out", str(out)])
        capsys.readouterr()
        code = main(["workflow", "--data", str(out),
                     "--strata", "university"])
        capsys.readouterr()
        assert code == 0
