"""HTTP API tests: references, pagination, 429s, and serve-level recovery."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro import make_hiring
from repro.service import serve

_SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture
def server(make_engine):
    engine = make_engine()
    httpd = serve(engine)
    yield httpd
    httpd.shutdown()


def _get(httpd, path, expect=200):
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{httpd.port}{path}"
        ) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        assert error.code == expect, error.read()
        return error.code, json.loads(error.read())


def _post(httpd, path, body=None, expect=None):
    request = urllib.request.Request(
        f"http://127.0.0.1:{httpd.port}{path}",
        data=json.dumps(body or {}).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, dict(response.headers), (
                json.loads(response.read())
            )
    except urllib.error.HTTPError as error:
        if expect is not None:
            assert error.code == expect
        return error.code, dict(error.headers), json.loads(error.read())


def _poll_done(httpd, job_id, timeout=60):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, job = _get(httpd, f"/jobs/{job_id}")
        if job["status"] in ("succeeded", "failed", "cancelled", "interrupted"):
            return job
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never finished")


class TestRoutes:
    def test_healthz_and_metrics(self, server):
        from repro.observability import PROM_CONTENT_TYPE, parse_prometheus

        status, health = _get(server, "/healthz")
        assert status == 200 and health["status"] == "ok"

        # default representation: Prometheus text that the strict
        # in-repo checker accepts
        with urllib.request.urlopen(
            f"http://127.0.0.1:{server.port}/metrics"
        ) as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == PROM_CONTENT_TYPE
            families = parse_prometheus(response.read().decode())
        assert isinstance(families, dict)
        assert all(name.startswith("repro_") for name in families)

        # JSON snapshot behind content negotiation
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/metrics",
            headers={"Accept": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            assert response.status == 200
            snapshot = json.loads(response.read())
        assert isinstance(snapshot, dict)

    def test_submit_poll_preview_paginate_raw(self, server, hiring_csv):
        status, _, job = _post(
            server, "/jobs", {"kind": "audit", "params": {"data": hiring_csv}}
        )
        assert status == 201
        assert job["href"] == f"/jobs/{job['job_id']}"
        done = _poll_done(server, job["job_id"])
        assert done["status"] == "succeeded"
        result_href = done["result"]

        # preview: reference-sized, findings behind a link
        status, preview = _get(server, result_href)
        assert status == 200
        assert preview["n_findings"] > 0
        assert "findings" not in preview.get("report", {})
        assert preview["is_clean"] in (True, False)

        # pagination: walk every page, never a megabyte response
        items, page_path = [], preview["findings"] + "?page=1&per_page=2"
        while page_path:
            status, page = _get(server, page_path)
            assert status == 200
            assert len(page["items"]) <= 2
            items.extend(page["items"])
            page_path = page["next"]
        assert len(items) == preview["n_findings"]

        # page past the end is empty, not an error
        status, beyond = _get(
            server, preview["findings"] + "?page=999&per_page=50"
        )
        assert status == 200 and beyond["items"] == []

        # raw: the stored object, byte-identical across fetches
        url = f"http://127.0.0.1:{server.port}{result_href}/raw"
        with urllib.request.urlopen(url) as response:
            first = response.read()
        with urllib.request.urlopen(url) as response:
            assert response.read() == first
        assert json.loads(first)["kind"] == "audit"

    def test_resubmission_is_200_cache_hit(self, server, hiring_csv):
        _, _, job = _post(
            server, "/jobs", {"kind": "audit", "params": {"data": hiring_csv}}
        )
        _poll_done(server, job["job_id"])
        status, _, again = _post(
            server, "/jobs", {"kind": "audit", "params": {"data": hiring_csv}}
        )
        assert status == 200
        assert again["cache_hit"] and again["status"] == "succeeded"

    def test_jobs_listing_filters_by_status(self, server, hiring_csv):
        _, _, job = _post(
            server, "/jobs", {"kind": "audit", "params": {"data": hiring_csv}}
        )
        _poll_done(server, job["job_id"])
        status, listing = _get(server, "/jobs?status=succeeded")
        assert status == 200
        assert any(j["job_id"] == job["job_id"] for j in listing["jobs"])
        _, empty = _get(server, "/jobs?status=failed")
        assert empty["jobs"] == []

    def test_cancel_endpoint(self, make_engine, fault_injector):
        fault_injector.inject_hang("service.job", seconds=60, times=None)
        engine = make_engine("cancel", workers=1, faults=fault_injector)
        httpd = serve(engine)
        try:
            job = engine.submit(
                "audit", dataset=make_hiring(120, random_state=0)
            )
            status, _, cancelled = _post(
                httpd, f"/jobs/{job.job_id}/cancel"
            )
            assert status == 200
            fault_injector.release()
            assert _poll_done(httpd, job.job_id)["status"] == "cancelled"
        finally:
            httpd.shutdown()

    def test_error_mapping(self, server, hiring_csv):
        assert _get(server, "/jobs/unknown", expect=404)[0] == 404
        assert _get(server, "/results/" + "ab" * 32, expect=404)[0] == 404
        assert _get(server, "/nope", expect=404)[0] == 404
        status, _, body = _post(server, "/jobs", {"kind": "nonsense"},
                                expect=400)
        assert status == 400 and "kind" in body["error"]
        status, _, body = _post(server, "/jobs", {}, expect=400)
        assert status == 400

    def test_malformed_content_length_is_rejected(self, server):
        # regression: a non-numeric Content-Length used to raise an
        # unhandled ValueError (connection dropped with no response),
        # and a negative one made rfile.read(-n) block reading to EOF
        import socket

        def exchange(value: bytes) -> bytes:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=5
            ) as sock:
                sock.sendall(
                    b"POST /jobs HTTP/1.1\r\n"
                    b"Host: localhost\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: " + value + b"\r\n"
                    b"\r\n"
                )
                data = b""
                while b"\r\n\r\n" not in data:
                    part = sock.recv(4096)
                    if not part:
                        break
                    data += part
                return data.split(b"\r\n", 1)[0]

        assert b"400" in exchange(b"banana")
        assert b"400" in exchange(b"-5")
        # the server is still healthy afterwards
        assert _get(server, "/healthz")[0] == 200


class TestAdmission429:
    def test_saturated_queue_maps_to_429_with_retry_after(
        self, make_engine, fault_injector, hiring_csv
    ):
        fault_injector.inject_hang("service.job", seconds=60, times=None)
        engine = make_engine(
            "q429", workers=1, queue_limit=1, faults=fault_injector
        )
        httpd = serve(engine)
        try:
            _, _, first = _post(
                httpd, "/jobs",
                {"kind": "audit", "params": {"data": hiring_csv}},
            )
            deadline = time.monotonic() + 10
            while engine.get(first["job_id"]).status != "running":
                assert time.monotonic() < deadline
                time.sleep(0.01)
            status, headers, body = _post(
                httpd, "/jobs",
                {"kind": "workflow", "params": {"data": hiring_csv}},
                expect=429,
            )
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            assert body["error"] == "queue saturated"
            assert body["queue_limit"] == 1
            # the engine survives: release and the first job completes
            fault_injector.release()
            assert _poll_done(httpd, first["job_id"])["status"] == "succeeded"
        finally:
            httpd.shutdown()


def _start_serve(root, env):
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--root", str(root), "--port", "0", "--workers", "1",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    line = proc.stdout.readline()
    assert "listening on" in line, line
    port = int(line.split("http://127.0.0.1:")[1].split(" ")[0].rstrip("/"))
    return proc, port


def _http(port, path, body=None):
    if body is None:
        request = f"http://127.0.0.1:{port}{path}"
    else:
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}",
            data=json.dumps(body).encode(), method="POST",
        )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


@pytest.mark.slow
class TestServeCrashRecovery:
    def test_kill_nine_restart_recovers_and_caches(self, tmp_path, hiring_csv):
        root = tmp_path / "serve-root"
        env = dict(os.environ, PYTHONPATH=_SRC)
        proc, port = _start_serve(root, env)
        try:
            job = _http(
                port, "/jobs",
                {"kind": "audit", "params": {"data": hiring_csv}},
            )
            deadline = time.monotonic() + 60
            while _http(port, f"/jobs/{job['job_id']}")["status"] != "succeeded":
                assert time.monotonic() < deadline
                time.sleep(0.05)
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait()
        # restart over the same root: journal replays the finished job,
        # and resubmission is answered from the result store
        proc, port = _start_serve(root, env)
        try:
            replayed = _http(port, f"/jobs/{job['job_id']}")
            assert replayed["status"] == "succeeded"
            again = _http(
                port, "/jobs",
                {"kind": "audit", "params": {"data": hiring_csv}},
            )
            assert again["cache_hit"]
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait()
