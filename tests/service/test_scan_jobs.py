"""Service integration for ScanConfig scan jobs, incl. kill -9 recovery.

Covers the PR 9 service surface: inline ``scan_config`` params (and the
top-level HTTP sugar), cache-key separation from legacy jobs, durable
ScanState journaling for incremental jobs, and the chaos path — a
killed incremental scan recovers from its checkpoint and later rescans
a grown dataset from the delta.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import AuditConfig, ScanConfig
from repro.data import Column, Schema, TabularDataset, make_intersectional
from repro.data.io import save_dataset
from repro.exceptions import ValidationError
from repro.observability.metrics import MetricsRegistry
from repro.service import JobEngine, serve

_SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture
def intersectional_csv(tmp_path):
    path = tmp_path / "intersectional.csv"
    save_dataset(make_intersectional(1200, random_state=7), path)
    return str(path)


class TestScanJobSubmission:
    def test_inline_scan_config_runs_best_first(
        self, make_engine, intersectional_csv
    ):
        engine = make_engine()
        job = engine.submit(
            "subgroups",
            {"data": intersectional_csv,
             "scan_config": {"strategy": "best_first"}},
        )
        record = engine.wait(job.job_id, timeout=120)
        assert record.status == "succeeded"
        payload = engine.result(record)
        assert payload["strategy"] == "best_first"
        assert payload["scan"]["pruned"] > 0
        assert payload["n_significant"] == len(
            [f for f in payload["findings"] if f["significant"]]
        )

    def test_scan_config_changes_cache_key(
        self, make_engine, intersectional_csv
    ):
        engine = make_engine()
        legacy = engine.submit("subgroups", {"data": intersectional_csv})
        scan = engine.submit(
            "subgroups",
            {"data": intersectional_csv,
             "scan_config": {"strategy": "best_first"}},
        )
        assert engine._job_key(legacy) != engine._job_key(scan)
        engine.wait(legacy.job_id, timeout=120)
        engine.wait(scan.job_id, timeout=120)
        # legacy payloads are byte-stable: no scan-era keys appear
        assert "strategy" not in engine.result(legacy)

    def test_flagged_set_matches_legacy_job(
        self, make_engine, intersectional_csv
    ):
        engine = make_engine()
        legacy = engine.wait(
            engine.submit("subgroups", {"data": intersectional_csv}).job_id,
            timeout=120,
        )
        scan = engine.wait(
            engine.submit(
                "subgroups",
                {"data": intersectional_csv,
                 "scan_config": {"strategy": "best_first"}},
            ).job_id,
            timeout=120,
        )

        def flagged(record):
            return sorted(
                (str(f["conditions"]), f["adjusted_p_value"])
                for f in engine.result(record)["findings"]
                if f["significant"]
            )

        assert flagged(legacy) == flagged(scan)

    def test_audit_config_scan_drives_strategy(
        self, make_engine, intersectional_csv
    ):
        engine = make_engine()
        job = engine.submit(
            "subgroups",
            {"data": intersectional_csv},
            config=AuditConfig(scan=ScanConfig(strategy="best_first")),
        )
        record = engine.wait(job.job_id, timeout=120)
        assert engine.result(record)["strategy"] == "best_first"

    def test_invalid_scan_config_rejected_at_submit(
        self, make_engine, intersectional_csv
    ):
        engine = make_engine()
        with pytest.raises(ValidationError, match="scan_config"):
            engine.submit(
                "subgroups",
                {"data": intersectional_csv,
                 "scan_config": {"strategy": "bogus"}},
            )
        with pytest.raises(ValidationError, match="scan_config"):
            engine.submit(
                "subgroups",
                {"data": intersectional_csv,
                 "scan_config": {"checkpoint_every": 0}},
            )

    def test_unsafe_state_name_rejected(
        self, make_engine, intersectional_csv
    ):
        engine = make_engine()
        for name in ("../escape", "a/b", ".hidden", ""):
            with pytest.raises(ValidationError, match="state"):
                engine.submit(
                    "subgroups",
                    {"data": intersectional_csv,
                     "scan_config": {"strategy": "incremental"},
                     "state": name},
                )

    def test_incremental_job_journals_state_and_keeps_it(
        self, make_engine, intersectional_csv
    ):
        engine = make_engine()
        job = engine.submit(
            "subgroups",
            {"data": intersectional_csv,
             "scan_config": {"strategy": "incremental"},
             "state": "grower"},
        )
        record = engine.wait(job.job_id, timeout=120)
        assert record.status == "succeeded"
        state_path = Path(engine.result(record)["state_path"])
        assert state_path.name == "grower.scanstate.json"
        # the durable state survives the post-success checkpoint cleanup
        assert state_path.exists()
        assert not (
            engine.checkpoint_dir / f"{job.job_id}.scan.json"
        ).exists()
        events = [
            event for event in engine.journal.replay()
            if event.get("event") == "scan_state"
        ]
        assert events and events[0]["path"] == str(state_path)
        assert events[0]["job_id"] == job.job_id


class TestScanJobsHTTP:
    @pytest.fixture
    def server(self, make_engine):
        httpd = serve(make_engine())
        yield httpd
        httpd.shutdown()

    def _post(self, httpd, body, expect=201):
        request = urllib.request.Request(
            f"http://127.0.0.1:{httpd.port}/jobs",
            data=json.dumps(body).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request) as response:
                assert response.status == expect
                return json.loads(response.read())
        except urllib.error.HTTPError as error:
            assert error.code == expect, error.read()
            return json.loads(error.read())

    def test_top_level_scan_config_accepted(
        self, server, intersectional_csv
    ):
        ref = self._post(server, {
            "kind": "subgroups",
            "params": {"data": intersectional_csv},
            "scan_config": {"strategy": "best_first"},
        })
        record = server.engine.wait(ref["job_id"], timeout=120)
        assert record.status == "succeeded"
        assert server.engine.result(record)["strategy"] == "best_first"

    def test_bad_scan_config_is_a_400(self, server, intersectional_csv):
        self._post(server, {
            "kind": "subgroups",
            "params": {"data": intersectional_csv},
            "scan_config": {"strategy": "bogus"},
        }, expect=400)
        self._post(server, {
            "kind": "subgroups",
            "params": {"data": intersectional_csv},
            "scan_config": ["not", "an", "object"],
        }, expect=400)


def _wide_pair(prefix_path, full_path, n_prefix=60000, n_full=80000, seed=0):
    """One draw, two files: ``prefix`` is the first rows of ``full``."""
    rng = np.random.default_rng(seed)
    cats = tuple("abcde")
    columns = [Column("score", kind="numeric")]
    data = {"score": rng.normal(size=n_full)}
    for name in ("g1", "g2", "g3", "g4"):
        columns.append(
            Column(name, kind="categorical", role="protected",
                   categories=cats)
        )
        data[name] = rng.choice(cats, size=n_full)
    columns.append(Column("y", kind="binary", role="label"))
    data["y"] = (
        rng.random(n_full) < 0.4 + 0.2 * (data["g1"] == "a")
    ).astype(int)
    full = TabularDataset(Schema(tuple(columns)), data)
    save_dataset(full.take(np.arange(n_prefix)), prefix_path)
    save_dataset(full, full_path)


_SCAN_CONFIG = {
    "strategy": "incremental",
    "max_order": 3,
    "min_size": 25,
    "checkpoint_every": 8,
    # threshold >= 1 keeps every cell scored, so the kill window is as
    # wide as the legacy chaos test's exhaustive scan
    "bound_slack": 1.0,
}

_DRIVER = textwrap.dedent("""
    import json, sys, time
    from repro.service import JobEngine

    root, data = sys.argv[1], sys.argv[2]
    engine = JobEngine(root, workers=1)
    job = engine.submit(
        "subgroups",
        {"data": data, "state": "grower",
         "scan_config": %s},
    )
    print(json.dumps({"job_id": job.job_id}), flush=True)
    time.sleep(300)  # killed long before this returns
""") % json.dumps(_SCAN_CONFIG)


@pytest.mark.slow
class TestIncrementalKillNine:
    def test_killed_incremental_job_recovers_then_rescans_delta(
        self, tmp_path
    ):
        prefix = tmp_path / "prefix.csv"
        full = tmp_path / "full.csv"
        _wide_pair(prefix, full)
        root = tmp_path / "victim"
        driver = tmp_path / "driver.py"
        driver.write_text(_DRIVER)
        env = dict(os.environ, PYTHONPATH=_SRC)
        proc = subprocess.Popen(
            [sys.executable, str(driver), str(root), str(prefix)],
            stdout=subprocess.PIPE, text=True, env=env,
        )
        try:
            job_id = json.loads(proc.stdout.readline())["job_id"]
            checkpoint = root / "checkpoints" / f"{job_id}.scan.json"
            deadline = time.monotonic() + 60
            while not checkpoint.exists():
                assert proc.poll() is None, "driver died before checkpointing"
                assert time.monotonic() < deadline, "scan never checkpointed"
                time.sleep(0.01)
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait()
        assert checkpoint.exists()

        # the journal recorded where the durable scan state will live,
        # before the kill
        engine = JobEngine(root, workers=1, metrics=MetricsRegistry())
        state_events = [
            event for event in engine.journal.replay()
            if event.get("event") == "scan_state"
        ]
        assert state_events
        state_path = Path(state_events[0]["path"])

        # recovery: the requeued job resumes from the checkpoint and
        # finishes the incremental scan, leaving the state behind
        record = engine.wait(job_id, timeout=300)
        assert record.status == "succeeded"
        assert record.recovered
        assert state_path.exists()
        first = engine.result(record)
        assert first["strategy"] == "incremental"
        assert first["scan"]["rescored"] == 0

        # the grown dataset re-scores from the delta through the same
        # named state...
        grown = engine.wait(
            engine.submit(
                "subgroups",
                {"data": str(full), "state": "grower",
                 "scan_config": dict(_SCAN_CONFIG)},
            ).job_id,
            timeout=300,
        )
        assert grown.status == "succeeded"
        delta = engine.result(grown)
        assert delta["scan"]["rescored"] > 0

        # ...and lands on exactly the findings of a from-scratch scan
        scratch = engine.wait(
            engine.submit(
                "subgroups",
                {"data": str(full), "state": "scratch",
                 "scan_config": dict(_SCAN_CONFIG)},
            ).job_id,
            timeout=300,
        )
        assert engine.result(scratch)["findings"] == delta["findings"]
        engine.shutdown()
