"""Job-engine behaviour: execution, caching, admission, drain, recovery."""

from __future__ import annotations

import time

import pytest

from repro import AuditConfig, audit, make_hiring
from repro.core.serialize import report_to_dict
from repro.exceptions import (
    AdmissionError,
    CheckpointError,
    EngineClosedError,
    ValidationError,
)
from repro.service import JobEngine, JobJournal, JobRecord, file_fingerprint


def _wait_status(engine, job_id, status, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if engine.get(job_id).status == status:
            return
        time.sleep(0.01)
    raise AssertionError(
        f"job {job_id} never reached {status!r}; "
        f"stuck at {engine.get(job_id).status!r}"
    )


class TestExecution:
    def test_inline_audit_matches_direct_audit(self, make_engine):
        engine = make_engine()
        dataset = make_hiring(300, random_state=3)
        job = engine.wait(engine.submit("audit", dataset=dataset).job_id)
        assert job.status == "succeeded"
        direct = report_to_dict(audit(dataset))
        stored = engine.result(job)["report"]
        assert stored["findings"] == direct["findings"]
        assert stored["counts"] == direct["counts"]

    def test_path_audit_job(self, make_engine, hiring_csv):
        engine = make_engine()
        job = engine.wait(engine.submit("audit", {"data": hiring_csv}).job_id)
        assert job.status == "succeeded"
        assert job.resumable
        assert engine.result(job)["kind"] == "audit"

    def test_chunked_submission_shares_cache_with_in_memory(
        self, make_engine, hiring_csv
    ):
        # chunk_size shapes execution, not the result, so it is not part
        # of the content address: the streamed resubmission is a hit.
        engine = make_engine()
        plain = engine.wait(engine.submit("audit", {"data": hiring_csv}).job_id)
        chunked = engine.submit(
            "audit", {"data": hiring_csv, "chunk_size": 64}
        )
        assert chunked.cache_hit
        assert chunked.result_key == plain.result_key

    def test_subgroups_job(self, make_engine, hiring_csv):
        engine = make_engine()
        job = engine.wait(
            engine.submit(
                "subgroups", {"data": hiring_csv},
                config=AuditConfig(max_order=2, min_size=10),
            ).job_id,
            timeout=60,
        )
        assert job.status == "succeeded"
        result = engine.result(job)
        assert result["n_subgroups"] == len(result["findings"]) > 0
        assert all("adjusted_p_value" in f for f in result["findings"])

    def test_workflow_job(self, make_engine, hiring_csv):
        engine = make_engine()
        job = engine.wait(
            engine.submit(
                "workflow",
                {"data": hiring_csv, "profile": {"name": "tenant A"}},
            ).job_id,
            timeout=60,
        )
        assert job.status == "succeeded"
        assert engine.result(job)["verdict"] in ("pass", "fail", "inconclusive")

    def test_unknown_kind_rejected(self, make_engine):
        with pytest.raises(ValidationError, match="kind"):
            make_engine().submit("nonsense", {"data": "x.csv"})

    def test_pathless_submission_rejected(self, make_engine):
        with pytest.raises(ValidationError, match="data"):
            make_engine().submit("audit", {})


class TestResultCache:
    def test_resubmission_hits_without_recompute(self, make_engine, hiring_csv):
        engine = make_engine()
        first = engine.wait(engine.submit("audit", {"data": hiring_csv}).job_id)
        second = engine.submit("audit", {"data": hiring_csv})
        assert second.cache_hit and second.status == "succeeded"
        assert second.result_key == first.result_key
        # byte-identical report, and no second execution happened
        assert engine.store.get_bytes(first.result_key) == (
            engine.store.get_bytes(second.result_key)
        )
        assert engine.metrics.counter("service.jobs_submitted").value == 1
        assert engine.metrics.counter("service.cache_hits").value == 1

    def test_config_change_misses(self, make_engine, hiring_csv):
        engine = make_engine()
        a = engine.wait(engine.submit("audit", {"data": hiring_csv}).job_id)
        b = engine.submit(
            "audit", {"data": hiring_csv}, config=AuditConfig(tolerance=0.2)
        )
        assert not b.cache_hit

    def test_data_change_misses(self, make_engine, tmp_path, hiring_csv):
        engine = make_engine()
        engine.wait(engine.submit("audit", {"data": hiring_csv}).job_id)
        with open(hiring_csv, "a") as handle:
            handle.write("")  # touch without change: still a hit
        assert engine.submit("audit", {"data": hiring_csv}).cache_hit
        from repro.data.io import load_dataset, save_dataset

        save_dataset(make_hiring(301, random_state=8), hiring_csv)
        assert not engine.submit("audit", {"data": hiring_csv}).cache_hit

    def test_different_inline_predictions_miss(self, make_engine):
        # regression: the prediction array is part of the content
        # address — the same (dataset, config) audited against other
        # predictions is a different audit, never a cache hit
        import numpy as np

        engine = make_engine()
        dataset = make_hiring(200, random_state=5)
        ones = np.ones(dataset.n_rows, dtype=int)
        zeros = np.zeros(dataset.n_rows, dtype=int)
        first = engine.wait(
            engine.submit("audit", dataset=dataset, predictions=ones).job_id
        )
        second = engine.submit("audit", dataset=dataset, predictions=zeros)
        assert not second.cache_hit
        second = engine.wait(second.job_id)
        assert second.result_key != first.result_key
        assert engine.result(second) != engine.result(first)

    def test_predictions_and_label_audits_do_not_collide(self, make_engine):
        import numpy as np

        engine = make_engine()
        dataset = make_hiring(200, random_state=5)
        labels_only = engine.wait(engine.submit("audit", dataset=dataset).job_id)
        ones = np.ones(dataset.n_rows, dtype=int)
        with_preds = engine.submit("audit", dataset=dataset, predictions=ones)
        assert not with_preds.cache_hit
        with_preds = engine.wait(with_preds.job_id)
        assert with_preds.result_key != labels_only.result_key
        # identical resubmission *with* the same predictions still hits
        again = engine.submit("audit", dataset=dataset, predictions=ones)
        assert again.cache_hit
        assert again.result_key == with_preds.result_key


class TestAdmissionControl:
    def test_saturated_queue_rejects_with_retry_after(
        self, make_engine, fault_injector
    ):
        fault_injector.inject_hang("service.job", seconds=60, times=None)
        engine = make_engine(
            workers=1, queue_limit=3, faults=fault_injector
        )
        datasets = [make_hiring(120, random_state=i) for i in range(4)]
        first = engine.submit("audit", dataset=datasets[0])
        _wait_status(engine, first.job_id, "running")
        engine.submit("audit", dataset=datasets[1])
        engine.submit("audit", dataset=datasets[2])
        with pytest.raises(AdmissionError) as excinfo:
            engine.submit("audit", dataset=datasets[3])
        rejection = excinfo.value
        assert rejection.retry_after > 0
        assert rejection.active == 3
        assert rejection.queue_limit == 3
        assert rejection.to_dict()["retry_after"] == rejection.retry_after
        assert engine.metrics.counter("service.jobs_rejected").value == 1
        # the engine survives rejection: release the hang, drain, resubmit
        fault_injector.release()
        for job in engine.jobs():
            assert engine.wait(job.job_id, timeout=30).status == "succeeded"
        accepted = engine.submit("audit", dataset=datasets[3])
        assert engine.wait(accepted.job_id, timeout=30).status == "succeeded"

    def test_cache_hits_bypass_admission(self, make_engine, fault_injector):
        dataset = make_hiring(120, random_state=0)
        engine = make_engine(workers=1, queue_limit=1)
        done = engine.wait(engine.submit("audit", dataset=dataset).job_id)
        assert done.status == "succeeded"
        # saturate the queue with a hanging job...
        fault_injector.inject_hang("service.job", seconds=60, times=None)
        engine.faults = fault_injector
        blocker = engine.submit(
            "audit", dataset=make_hiring(120, random_state=1)
        )
        _wait_status(engine, blocker.job_id, "running")
        # ...and the repeat audit is still answered, from the store
        hit = engine.submit("audit", dataset=dataset)
        assert hit.cache_hit
        fault_injector.release()


class TestCancellation:
    def test_cancel_queued_job(self, make_engine, fault_injector):
        fault_injector.inject_hang("service.job", seconds=60, times=None)
        engine = make_engine(workers=1, faults=fault_injector)
        blocker = engine.submit(
            "audit", dataset=make_hiring(120, random_state=0)
        )
        _wait_status(engine, blocker.job_id, "running")
        queued = engine.submit(
            "audit", dataset=make_hiring(120, random_state=1)
        )
        engine.cancel(queued.job_id)
        fault_injector.release()
        record = engine.wait(queued.job_id, timeout=30)
        assert record.status == "cancelled"
        assert record.result_key is None

    def test_cancel_running_job(self, make_engine, fault_injector):
        fault_injector.inject_hang("service.job", seconds=60, times=None)
        engine = make_engine(workers=1, faults=fault_injector)
        job = engine.submit("audit", dataset=make_hiring(120, random_state=0))
        _wait_status(engine, job.job_id, "running")
        engine.cancel(job.job_id)
        fault_injector.release()
        record = engine.wait(job.job_id, timeout=30)
        assert record.status == "cancelled"
        assert record.error_type == "JobCancelledError"

    def test_cancel_terminal_job_is_noop(self, make_engine, hiring_csv):
        engine = make_engine()
        job = engine.wait(engine.submit("audit", {"data": hiring_csv}).job_id)
        assert engine.cancel(job.job_id).status == "succeeded"

    def test_cancel_unknown_job_raises(self, make_engine):
        with pytest.raises(ValidationError, match="unknown job"):
            make_engine().cancel("nope")


class TestDrainAndRecovery:
    def test_shutdown_drains_running_and_keeps_queued_pending(
        self, tmp_path, hiring_csv, fault_injector
    ):
        from repro.observability.metrics import MetricsRegistry

        root = tmp_path / "drain"
        fault_injector.inject_hang("service.job", seconds=60, times=None)
        engine = JobEngine(
            root, workers=1, faults=fault_injector,
            metrics=MetricsRegistry(), journal_fsync=False,
        )
        running = engine.submit("audit", {"data": hiring_csv})
        _wait_status(engine, running.job_id, "running")
        queued = engine.submit(
            "audit", {"data": hiring_csv}, config=AuditConfig(tolerance=0.2)
        )
        # release the hang and drain: the running job completes, the
        # queued one must stay journaled as pending work
        fault_injector.release()
        engine.shutdown(drain=True, timeout=30)
        assert engine.get(running.job_id).status == "succeeded"
        assert engine.get(queued.job_id).status == "queued"
        with pytest.raises(EngineClosedError):
            engine.submit("audit", {"data": hiring_csv})
        # a fresh engine over the same root picks the pending job up
        second = JobEngine(
            root, workers=1, metrics=MetricsRegistry(), journal_fsync=False
        )
        record = second.wait(queued.job_id, timeout=30)
        assert record.status == "succeeded"
        assert record.recovered
        assert second.metrics.counter("service.jobs_recovered").value == 1
        second.shutdown()

    def test_running_resumable_job_requeued_after_crash(
        self, tmp_path, hiring_csv
    ):
        from repro.observability.metrics import MetricsRegistry

        root = tmp_path / "crashed"
        root.mkdir()
        schema = hiring_csv + ".schema.json"
        record = JobRecord(
            job_id="deadbeef0001",
            kind="audit",
            params={"data": hiring_csv, "schema": schema},
            config=AuditConfig().to_dict(),
            status="running",
            submitted_at=1.0,
            started_at=2.0,
            dataset_fingerprint=file_fingerprint(hiring_csv, schema),
            config_fingerprint=AuditConfig().fingerprint(),
        )
        journal = JobJournal(root / "journal.jsonl", fsync=False)
        journal.append({"event": "submitted", "job": record.to_dict()})
        journal.close()
        engine = JobEngine(root, metrics=MetricsRegistry(), journal_fsync=False)
        job = engine.wait("deadbeef0001", timeout=30)
        assert job.status == "succeeded"
        assert job.recovered
        engine.shutdown()

    def test_running_inline_job_marked_interrupted(self, tmp_path):
        from repro.observability.metrics import MetricsRegistry

        root = tmp_path / "inline-crash"
        root.mkdir()
        record = JobRecord(
            job_id="deadbeef0002",
            kind="audit",
            status="running",
            submitted_at=1.0,
            resumable=False,
            dataset_fingerprint="ab" * 32,
            config_fingerprint="cd" * 32,
        )
        journal = JobJournal(root / "journal.jsonl", fsync=False)
        journal.append({"event": "submitted", "job": record.to_dict()})
        journal.close()
        engine = JobEngine(root, metrics=MetricsRegistry(), journal_fsync=False)
        job = engine.get("deadbeef0002")
        assert job.status == "interrupted"
        assert "process died" in job.error
        engine.shutdown()
        # the verdict is durable: a third engine replays it unchanged
        third = JobEngine(root, metrics=MetricsRegistry(), journal_fsync=False)
        assert third.get("deadbeef0002").status == "interrupted"
        third.shutdown()

    def test_queued_inline_job_marked_interrupted(self, tmp_path):
        # regression: a *queued* non-resumable job must settle as
        # interrupted, not be requeued — its dataset object died with
        # the process, so a requeue could only fail on the missing
        # params["data"] with a raw KeyError
        from repro.observability.metrics import MetricsRegistry

        root = tmp_path / "inline-queued-crash"
        root.mkdir()
        record = JobRecord(
            job_id="deadbeef0003",
            kind="audit",
            status="queued",
            submitted_at=1.0,
            resumable=False,
            dataset_fingerprint="ab" * 32,
            config_fingerprint="cd" * 32,
        )
        journal = JobJournal(root / "journal.jsonl", fsync=False)
        journal.append({"event": "submitted", "job": record.to_dict()})
        journal.close()
        engine = JobEngine(root, metrics=MetricsRegistry(), journal_fsync=False)
        job = engine.get("deadbeef0003")
        assert job.status == "interrupted"
        assert job.error_type == "InterruptedJob"
        assert "queued" in job.error
        assert engine.metrics.counter("service.jobs_interrupted").value == 1
        engine.shutdown()

    def test_invalid_journal_record_raises_checkpoint_error(self, tmp_path):
        root = tmp_path / "bad-journal"
        root.mkdir()
        journal = JobJournal(root / "journal.jsonl", fsync=False)
        journal.append({"event": "submitted", "job": {"job_id": "x"}})
        journal.close()
        with pytest.raises(CheckpointError, match="invalid job record"):
            JobEngine(root, journal_fsync=False)


class TestWorkerResilience:
    def test_store_failure_fails_job_and_keeps_worker_alive(
        self, make_engine, hiring_csv
    ):
        # regression: an exception outside the supervised runner (here
        # a full disk under store.put) must settle the job as failed —
        # not kill the worker thread and strand the job running forever
        engine = make_engine(workers=1)
        original_put = engine.store.put
        calls = {"n": 0}

        def flaky_put(key, payload):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("disk full")
            return original_put(key, payload)

        engine.store.put = flaky_put
        first = engine.wait(engine.submit("audit", {"data": hiring_csv}).job_id)
        assert first.status == "failed"
        assert first.error_type == "OSError"
        assert "disk full" in first.error
        assert engine.metrics.counter("service.worker_errors").value == 1
        # the lone worker survived: the next job still executes
        second = engine.wait(
            engine.submit(
                "audit", {"data": hiring_csv},
                config=AuditConfig(tolerance=0.2),
            ).job_id
        )
        assert second.status == "succeeded"


class TestMultiTenant:
    def test_concurrent_tenants_do_not_cross_contaminate(self, make_engine):
        engine = make_engine(workers=4, queue_limit=16)
        tenants = {
            seed: make_hiring(200 + seed, random_state=seed, direct_bias=bias)
            for seed, bias in [(1, 0.0), (2, 0.2), (3, 0.4), (4, 0.6)]
        }
        jobs = {
            seed: engine.submit("audit", dataset=dataset)
            for seed, dataset in tenants.items()
        }
        for seed, job in jobs.items():
            record = engine.wait(job.job_id, timeout=60)
            assert record.status == "succeeded"
            expected = report_to_dict(audit(tenants[seed]))
            assert engine.result(record)["report"]["findings"] == (
                expected["findings"]
            ), f"tenant {seed} got someone else's findings"


class TestJournalRotation:
    def test_journal_compacts_past_threshold(self, make_engine, hiring_csv):
        engine = make_engine(rotate_after=8, history_limit=2)
        keys = set()
        for tolerance in (0.05, 0.1, 0.15, 0.2, 0.25):
            job = engine.wait(
                engine.submit(
                    "audit", {"data": hiring_csv},
                    config=AuditConfig(tolerance=tolerance),
                ).job_id
            )
            keys.add(job.result_key)
        events = engine.journal.replay()
        # rotation happened: far fewer lines than transitions written
        assert len(events) < 5 * 3
        # but results are never rotated away — they live in the store
        assert all(engine.store.has(key) for key in keys)
