"""Content-addressing tests for the result store."""

from __future__ import annotations

import pytest

from repro.exceptions import CheckpointError
from repro.service import ResultStore, cache_key, file_fingerprint


class TestCacheKey:
    def test_deterministic(self):
        assert cache_key("audit", "d" * 8, "c" * 8) == cache_key(
            "audit", "d" * 8, "c" * 8
        )

    def test_sensitive_to_every_component(self):
        base = cache_key("audit", "dd", "cc", extra={"x": 1})
        assert cache_key("workflow", "dd", "cc", extra={"x": 1}) != base
        assert cache_key("audit", "DD", "cc", extra={"x": 1}) != base
        assert cache_key("audit", "dd", "CC", extra={"x": 1}) != base
        assert cache_key("audit", "dd", "cc", extra={"x": 2}) != base

    def test_extra_key_order_irrelevant(self):
        assert cache_key("audit", "d", "c", extra={"a": 1, "b": 2}) == (
            cache_key("audit", "d", "c", extra={"b": 2, "a": 1})
        )


class TestFileFingerprint:
    def test_changes_with_content(self, tmp_path):
        path = tmp_path / "d.csv"
        path.write_text("a,b\n1,2\n")
        before = file_fingerprint(path)
        path.write_text("a,b\n1,3\n")
        assert file_fingerprint(path) != before

    def test_absent_schema_distinct_from_empty_file(self, tmp_path):
        data = tmp_path / "d.csv"
        data.write_text("a\n1\n")
        empty = tmp_path / "s.json"
        empty.write_text("")
        assert file_fingerprint(data, None) != file_fingerprint(data, empty)

    def test_pair_order_matters(self, tmp_path):
        one, two = tmp_path / "one", tmp_path / "two"
        one.write_text("1")
        two.write_text("2")
        assert file_fingerprint(one, two) != file_fingerprint(two, one)


class TestResultStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ab" * 32
        store.put(key, {"x": [1, 2], "nested": {"y": True}})
        assert store.get(key) == {"x": [1, 2], "nested": {"y": True}}
        assert store.has(key)
        assert store.keys() == [key]
        assert len(store) == 1

    def test_get_bytes_is_stable(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "cd" * 32
        store.put(key, {"b": 2, "a": 1})
        assert store.get_bytes(key) == store.get_bytes(key)
        # canonical form: sorted keys, trailing newline
        assert store.get_bytes(key).endswith(b"\n")

    def test_first_write_wins(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ef" * 32
        store.put(key, {"first": True})
        store.put(key, {"second": True})
        assert store.get(key) == {"first": True}

    def test_missing_key_raises_checkpoint_error(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(CheckpointError, match="no stored result"):
            store.get_bytes("aa" * 32)

    def test_malformed_key_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        for bad in ("", "../../etc/passwd", "XYZ", "ab/cd"):
            with pytest.raises(CheckpointError, match="malformed"):
                store.path_for(bad)

    def test_corrupt_object_raises_with_path(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "01" * 32
        store.put(key, {"fine": True})
        store.path_for(key).write_text("{broken")
        with pytest.raises(CheckpointError, match="corrupt stored result"):
            store.get(key)
