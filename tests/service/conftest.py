"""Shared fixtures for the audit-service test suite."""

from __future__ import annotations

import pytest

from repro.data import make_hiring
from repro.data.io import save_dataset
from repro.observability.metrics import MetricsRegistry
from repro.robustness import ExecutionPolicy, FaultInjector
from repro.service import JobEngine


@pytest.fixture
def hiring_csv(tmp_path):
    """A small hiring workload on disk, with its schema sidecar."""
    path = tmp_path / "hiring.csv"
    save_dataset(make_hiring(300, random_state=7), path)
    return str(path)


@pytest.fixture
def fault_injector():
    injector = FaultInjector()
    yield injector
    injector.release()


@pytest.fixture
def make_engine(tmp_path):
    """Engine factory over a per-test root; everything shut down at exit.

    Engines get their own :class:`MetricsRegistry` so counter
    assertions are not polluted by other tests sharing the process
    registry, and a no-sleep retry-friendly default policy so chaos
    tests run at full speed.
    """
    engines = []

    def build(name="svc", *, policy=None, **kwargs):
        kwargs.setdefault("metrics", MetricsRegistry())
        kwargs.setdefault("journal_fsync", False)
        if policy is None:
            policy = ExecutionPolicy(sleep=lambda s: None)
        engine = JobEngine(tmp_path / name, policy=policy, **kwargs)
        engines.append(engine)
        return engine

    yield build
    for engine in engines:
        engine.shutdown(drain=False)
