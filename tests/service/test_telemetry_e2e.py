"""End-to-end telemetry: one trace_id from the HTTP edge to the pool
workers, Prometheus exposition of merged counters, and the /events feed.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.kernel import use_backend
from repro.observability import (
    EventBus,
    MetricsRegistry,
    PROM_CONTENT_TYPE,
    TraceContext,
    Tracer,
    parse_prometheus,
    read_trace,
    use_event_bus,
)
from repro.service.httpd import serve


def _request(server, path, *, method="GET", body=None, headers=None):
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}",
        data=json.dumps(body).encode() if body is not None else None,
        headers={"Content-Type": "application/json", **(headers or {})},
        method=method,
    )
    with urllib.request.urlopen(request) as response:
        return response.status, dict(response.headers), response.read()


def _wait_done(server, job_id, timeout=120):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, _, raw = _request(server, f"/jobs/{job_id}")
        job = json.loads(raw)
        if job["status"] in (
            "succeeded", "failed", "cancelled", "interrupted"
        ):
            return job
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never finished")


class TestTracedScanEndToEnd:
    # jobs > 1 is kernel-only by design: the reference backend runs the
    # same traced scan serially, so both backends are covered end to end
    @pytest.mark.parametrize(
        "backend,jobs", [("kernel", 4), ("reference", 1)]
    )
    def test_one_trace_from_post_to_pool_chunks(
        self, make_engine, hiring_csv, tmp_path, backend, jobs
    ):
        tracer = Tracer(run_id="svc")
        registry = MetricsRegistry()
        engine = make_engine(
            f"svc-{backend}", tracer=tracer, metrics=registry
        )
        server = serve(engine)
        incoming = TraceContext.generate()
        try:
            with use_backend(backend):
                status, _, raw = _request(
                    server, "/jobs", method="POST",
                    body={
                        "kind": "subgroups",
                        "params": {"data": hiring_csv},
                        "config": {"jobs": jobs, "min_size": 5},
                    },
                    headers={"traceparent": incoming.to_traceparent()},
                )
                assert status == 201
                job = json.loads(raw)
                assert job["trace_id"] == incoming.trace_id
                done = _wait_done(server, job["job_id"])
                assert done["status"] == "succeeded"
        finally:
            server.shutdown()

        out = tmp_path / "trace.jsonl"
        tracer.write(out)
        lines = read_trace(out)
        spans = [l for l in lines if l.get("kind") == "span"]

        # one trace: every span carries the caller's trace_id
        assert {s["trace_id"] for s in spans} == {incoming.trace_id}

        # the parent chain is fully resolvable, up to the caller's span
        ids = {s["span_id"] for s in spans}
        for span in spans:
            parent = span.get("parent_span_id")
            assert parent in ids or parent == incoming.span_id

        # the request span heads the in-service tree...
        request_span = next(
            s for s in spans if s["name"] == "http.request"
        )
        assert request_span["parent_span_id"] == incoming.span_id
        job_span = next(s for s in spans if s["name"] == "service.job")
        assert job_span["parent_span_id"] == request_span["span_id"]

        if jobs > 1:
            # ...and the deepest chunk spans ran in pool-worker processes
            chunk_spans = [
                s for s in spans if s["name"] == "subgroups.score_chunk"
            ]
            assert chunk_spans
            meta = next(
                l for l in lines if l.get("kind") == "trace_meta"
            )
            assert all(
                s["process_id"] != meta["process_id"]
                for s in chunk_spans
            )
            # worker metric deltas merged into the engine registry
            snapshot = registry.snapshot()
            assert snapshot["counters"]["subgroups.chunks_scored"] >= 1
            assert snapshot["counters"]["subgroups.entries_scored"] >= 1
        else:
            scan_span = next(
                s for s in spans if s["name"] == "subgroups.scan"
            )
            assert scan_span["trace_id"] == incoming.trace_id

    def test_unsampled_traceparent_suppresses_spans(
        self, make_engine, hiring_csv
    ):
        tracer = Tracer(run_id="svc")
        engine = make_engine("svc-unsampled", tracer=tracer)
        server = serve(engine)
        incoming = TraceContext(
            trace_id=TraceContext.generate().trace_id,
            span_id=TraceContext.generate().span_id,
            sampled=False,
        )
        try:
            status, _, raw = _request(
                server, "/jobs", method="POST",
                body={"kind": "audit", "params": {"data": hiring_csv}},
                headers={"traceparent": incoming.to_traceparent()},
            )
            assert status == 201
            _wait_done(server, json.loads(raw)["job_id"])
        finally:
            server.shutdown()
        assert not any(
            span.name == "http.request" for span in tracer.spans
        )

    def test_sample_rate_zero_heads_no_traces(
        self, make_engine, hiring_csv
    ):
        tracer = Tracer(run_id="svc")
        engine = make_engine("svc-rate0", tracer=tracer)
        server = serve(engine, trace_sample_rate=0.0)
        try:
            status, _, raw = _request(
                server, "/jobs", method="POST",
                body={"kind": "audit", "params": {"data": hiring_csv}},
            )
            assert status == 201
            _wait_done(server, json.loads(raw)["job_id"])
        finally:
            server.shutdown()
        assert not any(
            span.name == "http.request" for span in tracer.spans
        )


class TestMetricsRoute:
    def test_prometheus_exposition_includes_scan_counters(
        self, make_engine, hiring_csv
    ):
        registry = MetricsRegistry()
        engine = make_engine("svc-prom", metrics=registry)
        server = serve(engine)
        try:
            _, _, raw = _request(
                server, "/jobs", method="POST",
                body={
                    "kind": "subgroups",
                    "params": {"data": hiring_csv},
                    "config": {"jobs": 2, "min_size": 5},
                },
            )
            _wait_done(server, json.loads(raw)["job_id"])
            status, headers, raw = _request(server, "/metrics")
            assert status == 200
            assert headers["Content-Type"] == PROM_CONTENT_TYPE
            families = parse_prometheus(raw.decode())
        finally:
            server.shutdown()
        # pool-worker counters merged on join, visible at the edge
        assert "repro_subgroups_chunks_scored_total" in families
        assert "repro_service_jobs_submitted_total" in families
        assert "repro_service_job_elapsed" in families

    def test_json_snapshot_behind_accept_header(self, make_engine):
        engine = make_engine("svc-json")
        server = serve(engine)
        try:
            status, headers, raw = _request(
                server, "/metrics",
                headers={"Accept": "application/json"},
            )
        finally:
            server.shutdown()
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        snapshot = json.loads(raw)
        assert set(snapshot) >= {"counters", "histograms"}


class TestEventsRoute:
    def test_events_cursor_pagination_and_kind_filter(self, make_engine):
        with use_event_bus(EventBus()) as bus:
            engine = make_engine("svc-events")
            server = serve(engine)
            try:
                bus.publish("monitor.drift", stream="s1", delta=0.2)
                bus.publish("job.failed", job_id="x")
                bus.publish("job.rejected", job_kind="audit")

                _, _, raw = _request(server, "/events")
                feed = json.loads(raw)
                assert feed["last_seq"] == 3
                assert [e["kind"] for e in feed["events"]] == [
                    "monitor.drift", "job.failed", "job.rejected",
                ]

                _, _, raw = _request(server, "/events?since=1")
                assert len(json.loads(raw)["events"]) == 2

                _, _, raw = _request(server, "/events?kind=job")
                assert [
                    e["kind"] for e in json.loads(raw)["events"]
                ] == ["job.failed", "job.rejected"]

                _, _, raw = _request(server, "/events?limit=1")
                assert [
                    e["kind"] for e in json.loads(raw)["events"]
                ] == ["monitor.drift"]
            finally:
                server.shutdown()

    def test_bad_cursor_is_400(self, make_engine):
        engine = make_engine("svc-events-bad")
        server = serve(engine)
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _request(server, "/events?since=nope")
            assert excinfo.value.code == 400
        finally:
            server.shutdown()

    def test_failed_job_publishes_event(
        self, make_engine, fault_injector, hiring_csv
    ):
        fault_injector.inject_error(
            "service.job", RuntimeError("chaos"), times=1
        )
        with use_event_bus(EventBus()):
            engine = make_engine("svc-events-fail", faults=fault_injector)
            server = serve(engine)
            try:
                status, _, raw = _request(
                    server, "/jobs", method="POST",
                    body={
                        "kind": "audit",
                        "params": {"data": hiring_csv},
                    },
                )
                assert status == 201
                done = _wait_done(server, json.loads(raw)["job_id"])
                assert done["status"] == "failed"
                _, _, raw = _request(server, "/events?kind=job.failed")
                events = json.loads(raw)["events"]
            finally:
                server.shutdown()
        assert len(events) == 1
        assert events[0]["payload"]["job_id"] == done["job_id"]
        assert events[0]["payload"]["error_type"] == "RuntimeError"
