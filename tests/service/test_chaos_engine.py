"""Chaos tests: injected errors, hangs, degradation, and kill -9 recovery."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro import AuditConfig, make_hiring
from repro.data import Column, Schema, TabularDataset
from repro.data.io import save_dataset
from repro.exceptions import StageTimeoutError
from repro.observability.metrics import MetricsRegistry
from repro.robustness import ExecutionPolicy
from repro.service import JobEngine

_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _no_sleep_policy(**kwargs):
    return ExecutionPolicy(sleep=lambda s: None, **kwargs)


class TestInjectedErrors:
    def test_transient_error_retried_to_success(
        self, make_engine, fault_injector
    ):
        fault_injector.inject_error("service.job", RuntimeError("flaky"), times=2)
        engine = make_engine(
            policy=_no_sleep_policy(max_retries=3, retryable=(RuntimeError,)),
            faults=fault_injector,
        )
        job = engine.wait(
            engine.submit(
                "audit", dataset=make_hiring(150, random_state=0)
            ).job_id,
            timeout=30,
        )
        assert job.status == "succeeded"
        assert job.attempts == 3

    def test_unretried_error_fails_job_with_cause(
        self, make_engine, fault_injector
    ):
        fault_injector.inject_error("service.job", RuntimeError("hard"), times=1)
        engine = make_engine(faults=fault_injector)
        job = engine.wait(
            engine.submit(
                "audit", dataset=make_hiring(150, random_state=0)
            ).job_id,
            timeout=30,
        )
        assert job.status == "failed"
        assert job.error_type == "RuntimeError"
        assert "hard" in job.error
        assert job.result_key is None

    def test_exhausted_retries_fail_with_retry_history(
        self, make_engine, fault_injector
    ):
        fault_injector.inject_error(
            "service.job", RuntimeError("always"), times=None
        )
        engine = make_engine(
            policy=_no_sleep_policy(max_retries=2, retryable=(RuntimeError,)),
            faults=fault_injector,
        )
        job = engine.wait(
            engine.submit(
                "audit", dataset=make_hiring(150, random_state=0)
            ).job_id,
            timeout=30,
        )
        assert job.status == "failed"
        assert job.error_type == "RetryExhaustedError"
        assert job.attempts == 3


class TestHangs:
    def test_hang_times_out_to_failed(self, make_engine, fault_injector):
        fault_injector.inject_hang("service.job", seconds=60, times=1)
        engine = make_engine(
            policy=_no_sleep_policy(deadline=0.3), faults=fault_injector
        )
        job = engine.wait(
            engine.submit(
                "audit", dataset=make_hiring(150, random_state=0)
            ).job_id,
            timeout=30,
        )
        assert job.status == "failed"
        assert job.error_type == "StageTimeoutError"

    def test_hang_timeout_retry_succeeds(self, make_engine, fault_injector):
        # the opt-in path: a policy that *names* StageTimeoutError as
        # retryable treats a hang as transient — timeout, retry, succeed
        fault_injector.inject_hang("service.job", seconds=60, times=1)
        engine = make_engine(
            policy=_no_sleep_policy(
                deadline=1.0, max_retries=1, retryable=(StageTimeoutError,)
            ),
            faults=fault_injector,
        )
        job = engine.wait(
            engine.submit(
                "audit", dataset=make_hiring(150, random_state=0)
            ).job_id,
            timeout=30,
        )
        assert job.status == "succeeded"
        assert job.attempts == 2


class TestDegradedJobs:
    def test_inner_stage_faults_degrade_but_succeed(self, make_engine):
        # chaos inside the *audit* (config-level faults), not the engine:
        # the job completes with degraded=True — the exit-code-3 analogue
        from repro.robustness import FaultInjector

        inner = FaultInjector()
        inner.inject_error("audit", RuntimeError("metric backend down"),
                           times=None)
        engine = make_engine()
        config = AuditConfig(faults=inner)
        job = engine.wait(
            engine.submit(
                "audit", dataset=make_hiring(150, random_state=0),
                config=config,
            ).job_id,
            timeout=30,
        )
        assert job.status == "succeeded"
        assert job.degraded
        result = engine.result(job)
        assert result["degraded"]
        assert result["report"]["degradations"]
        assert engine.metrics.counter("service.jobs_degraded").value == 1


def _wide_dataset(path, n=60000, seed=0):
    """A dataset whose subgroup scan is slow enough to kill mid-flight."""
    import numpy as np

    rng = np.random.default_rng(seed)
    cats = tuple("abcde")
    columns = [Column("score", kind="numeric")]
    data = {"score": rng.normal(size=n)}
    for name in ("g1", "g2", "g3", "g4"):
        columns.append(
            Column(name, kind="categorical", role="protected",
                   categories=cats)
        )
        data[name] = rng.choice(cats, size=n)
    columns.append(Column("y", kind="binary", role="label"))
    data["y"] = (
        rng.random(n) < 0.4 + 0.2 * (data["g1"] == "a")
    ).astype(int)
    dataset = TabularDataset(Schema(tuple(columns)), data)
    save_dataset(dataset, path)
    return dataset


_DRIVER = textwrap.dedent("""
    import json, sys, time
    from repro import AuditConfig
    from repro.service import JobEngine

    root, data = sys.argv[1], sys.argv[2]
    engine = JobEngine(root, workers=1)
    job = engine.submit(
        "subgroups",
        {"data": data, "checkpoint_every": 8},
        config=AuditConfig(max_order=3, min_size=25),
    )
    print(json.dumps({"job_id": job.job_id}), flush=True)
    time.sleep(300)  # killed long before this returns
""")


@pytest.mark.slow
class TestKillNineRecovery:
    def test_killed_scan_resumes_from_checkpoint_byte_identical(
        self, tmp_path
    ):
        data = tmp_path / "wide.csv"
        _wide_dataset(data)
        root = tmp_path / "victim"
        driver = tmp_path / "driver.py"
        driver.write_text(_DRIVER)
        env = dict(os.environ, PYTHONPATH=_SRC)
        proc = subprocess.Popen(
            [sys.executable, str(driver), str(root), str(data)],
            stdout=subprocess.PIPE, text=True, env=env,
        )
        try:
            import json

            job_id = json.loads(proc.stdout.readline())["job_id"]
            checkpoint = root / "checkpoints" / f"{job_id}.scan.json"
            deadline = time.monotonic() + 60
            while not checkpoint.exists():
                assert proc.poll() is None, "driver died before checkpointing"
                assert time.monotonic() < deadline, "scan never checkpointed"
                time.sleep(0.01)
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait()
        # mid-scan state survived the kill
        assert checkpoint.exists()

        # recovery: a fresh engine over the same root requeues the job
        # and the scan resumes from the checkpoint
        engine = JobEngine(root, workers=1, metrics=MetricsRegistry())
        record = engine.wait(job_id, timeout=120)
        assert record.status == "succeeded"
        assert record.recovered
        assert engine.metrics.counter("service.jobs_recovered").value == 1
        recovered_bytes = engine.store.get_bytes(record.result_key)

        # byte-identity: an uninterrupted run over a pristine root
        # produces the same key and the same stored bytes
        clean = JobEngine(
            tmp_path / "clean", workers=1, metrics=MetricsRegistry()
        )
        clean_record = clean.wait(
            clean.submit(
                "subgroups",
                {"data": str(data), "checkpoint_every": 8},
                config=AuditConfig(max_order=3, min_size=25),
            ).job_id,
            timeout=300,
        )
        assert clean_record.status == "succeeded"
        assert clean_record.result_key == record.result_key
        assert clean.store.get_bytes(clean_record.result_key) == recovered_bytes

        # resubmission to the recovered engine is a journaled cache hit
        resubmitted = engine.submit(
            "subgroups",
            {"data": str(data), "checkpoint_every": 8},
            config=AuditConfig(max_order=3, min_size=25),
        )
        assert resubmitted.cache_hit
        assert any(
            event.get("job", {}).get("job_id") == resubmitted.job_id
            for event in engine.journal.replay()
        )
        # success consumed the resume checkpoint
        assert not checkpoint.exists()
        clean.shutdown()
        engine.shutdown()
