"""End-to-end fleet alerting: drift -> event bus -> HTTP feed -> CLI tail.

The monitoring fleet's alert path has four hops — the drift detector
publishes on the event bus, the bus fans out to its JSON-lines sink,
the monitor HTTP server serves the ring at ``GET /events``, and
``repro events tail --follow`` follows the sink like a log.  This suite
drives real drift through a :class:`~repro.monitor.MonitorFleet` and
checks each hop sees the same ``stream``-labeled events.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import AuditConfig, MonitorConfig
from repro.monitor import MonitorFleet, MonitorService, serve_http
from repro.observability.events import EventBus, read_events, use_event_bus

CFG = AuditConfig(metrics=("demographic_parity",))
REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _population(n, *, bias, seed):
    rng = np.random.default_rng(seed)
    sex = np.where(rng.random(n) < 0.5, "female", "male")
    y = (rng.random(n) < 0.5).astype(int)
    p = y.copy()
    deny = (sex == "female") & (rng.random(n) < bias)
    p[deny] = 0
    return y, p, sex


def _drive_drift(fleet):
    """Two streams: "checkout" drifts hard, "signup" stays clean."""
    for stream, biases in (
        ("checkout", (0.0, 0.0, 0.9)),
        ("signup", (0.0, 0.0, 0.0)),
    ):
        for index, bias in enumerate(biases):
            y, p, sex = _population(300, bias=bias, seed=index)
            fleet.observe(
                stream, y_true=y, predictions=p, protected={"sex": sex}
            )


@pytest.fixture
def sink(tmp_path):
    return tmp_path / "events.jsonl"


@pytest.fixture
def drifted(sink):
    """A fleet driven to drift inside a sink-backed scoped bus."""
    with use_event_bus(EventBus(sink=sink)) as bus:
        fleet = MonitorFleet(
            ["sex"], config=CFG,
            monitor=MonitorConfig(window=300, drift_threshold=0.1),
        )
        _drive_drift(fleet)
        yield fleet, bus


class TestBusHop:
    def test_drift_reaches_the_bus_with_stream_labels(self, drifted):
        fleet, bus = drifted
        events = bus.since(0, kind="monitor.drift")
        assert events
        assert {e.payload["stream"] for e in events} == {"checkout"}
        payload = events[0].payload
        assert payload["attribute"] == "sex"
        assert payload["metric"] == "demographic_parity"
        assert payload["rows"] == [600, 900]

    def test_sink_file_carries_the_same_events(self, drifted, sink):
        fleet, bus = drifted
        on_bus = bus.since(0, kind="monitor.drift", stream="checkout")
        on_disk = read_events(sink, kind="monitor.drift", stream="checkout")
        assert [e.to_dict() for e in on_bus] == on_disk
        assert read_events(sink, kind="monitor.drift", stream="signup") == []


class TestHTTPHop:
    def test_events_endpoint_filters_by_kind_and_stream(
        self, drifted, tmp_path
    ):
        fleet, bus = drifted
        bus.publish("job.failed", stream="checkout")  # must be filtered out
        spool = tmp_path / "spool"
        spool.mkdir()
        service = MonitorService(
            fleet, spool, prediction_column="decision"
        )
        server = serve_http(service)
        try:
            url = (
                f"http://127.0.0.1:{server.port}"
                "/events?kind=monitor.drift&stream=checkout"
            )
            with urllib.request.urlopen(url) as response:
                payload = json.loads(response.read())
        finally:
            server.shutdown()
        assert payload["events"]
        kinds = {e["kind"] for e in payload["events"]}
        streams = {e["payload"]["stream"] for e in payload["events"]}
        assert kinds == {"monitor.drift"}
        assert streams == {"checkout"}
        expected = bus.since(0, kind="monitor.drift", stream="checkout")
        assert payload["events"] == [e.to_dict() for e in expected]


class TestCLITailHop:
    def test_follow_sees_a_live_event(self, sink):
        sink.touch()
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "events", "tail", str(sink),
             "--follow", "--kind", "monitor.drift",
             "--stream", "checkout", "--json"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env,
        )
        try:
            # give the tailer a poll cycle, then publish live drift
            time.sleep(0.5)
            with use_event_bus(EventBus(sink=sink)) as bus:
                fleet = MonitorFleet(
                    ["sex"], config=CFG,
                    monitor=MonitorConfig(window=300, drift_threshold=0.1),
                )
                _drive_drift(fleet)
            line = proc.stdout.readline()
            event = json.loads(line)
            assert event["kind"] == "monitor.drift"
            assert event["payload"]["stream"] == "checkout"
        finally:
            proc.terminate()
            proc.wait(timeout=10)

    def test_without_follow_prints_existing_and_exits(self, sink):
        with use_event_bus(EventBus(sink=sink)):
            fleet = MonitorFleet(
                ["sex"], config=CFG,
                monitor=MonitorConfig(window=300, drift_threshold=0.1),
            )
            _drive_drift(fleet)
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        done = subprocess.run(
            [sys.executable, "-m", "repro", "events", "tail", str(sink),
             "--kind", "monitor.drift", "--stream", "signup", "--json"],
            capture_output=True, text=True, timeout=60, env=env,
        )
        assert done.returncode == 0
        assert done.stdout.strip() == ""
        done = subprocess.run(
            [sys.executable, "-m", "repro", "events", "tail", str(sink),
             "--kind", "monitor.drift", "--stream", "checkout", "--json"],
            capture_output=True, text=True, timeout=60, env=env,
        )
        lines = [json.loads(l) for l in done.stdout.splitlines()]
        assert lines
        assert all(l["payload"]["stream"] == "checkout" for l in lines)
