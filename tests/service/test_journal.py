"""Crash-safety tests for the append-only job journal."""

from __future__ import annotations

import json
import threading

import pytest

from repro.exceptions import CheckpointError
from repro.service import JobJournal
from repro.service.journal import JOURNAL_VERSION


class TestAppendReplay:
    def test_roundtrip(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl", fsync=False)
        events = [{"event": "submitted", "n": i} for i in range(5)]
        for event in events:
            journal.append(event)
        journal.close()
        replayed = journal.replay()
        assert replayed[0] == {"event": "journal", "version": JOURNAL_VERSION}
        assert replayed[1:] == events

    def test_missing_file_replays_empty(self, tmp_path):
        assert JobJournal(tmp_path / "absent.jsonl").replay() == []

    def test_empty_file_replays_empty(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert JobJournal(path).replay() == []

    def test_append_is_thread_safe(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl", fsync=False)
        threads = [
            threading.Thread(
                target=lambda worker=w: [
                    journal.append({"event": "e", "worker": worker, "i": i})
                    for i in range(50)
                ]
            )
            for w in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        journal.close()
        events = journal.replay()
        # every line parsed — no interleaved/torn writes — and none lost
        assert len(events) == 1 + 8 * 50


class TestTornTail:
    def test_torn_final_line_is_dropped(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl", fsync=False)
        journal.append({"event": "a"})
        journal.append({"event": "b"})
        journal.close()
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "c", "truncat')  # crash mid-append
        events = journal.replay()
        assert [e["event"] for e in events] == ["journal", "a", "b"]

    def test_torn_tail_even_when_valid_json_prefix(self, tmp_path):
        # A complete JSON value with no trailing newline is still a torn
        # append: the fsync'd newline is what commits an event.
        journal = JobJournal(tmp_path / "j.jsonl", fsync=False)
        journal.append({"event": "a"})
        journal.close()
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "c"}')
        events = journal.replay()
        assert [e["event"] for e in events] == ["journal", "a", "c"]

    def test_corrupt_interior_line_raises(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl", fsync=False)
        journal.append({"event": "a"})
        journal.close()
        text = journal.path.read_text()
        journal.path.write_text(text + "{garbled!!\n" + '{"event": "b"}\n')
        with pytest.raises(CheckpointError, match="line 3"):
            journal.replay()

    def test_non_object_line_raises(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl", fsync=False)
        journal.append({"event": "a"})
        journal.close()
        journal.path.write_text(
            journal.path.read_text() + "[1, 2, 3]\n"
        )
        with pytest.raises(CheckpointError, match="JSON objects"):
            journal.replay()


class TestRotation:
    def test_rotate_compacts_and_preserves_events(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl", fsync=False)
        for i in range(20):
            journal.append({"event": "e", "i": i})
        journal.rotate([{"event": "snapshot", "kept": True}])
        events = journal.replay()
        assert [e["event"] for e in events] == ["journal", "snapshot"]
        assert journal.entries_written == 2

    def test_append_after_rotate(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl", fsync=False)
        journal.append({"event": "a"})
        journal.rotate([])
        journal.append({"event": "b"})
        journal.close()
        assert [e["event"] for e in journal.replay()] == ["journal", "b"]

    def test_rotated_file_is_complete_json_lines(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl", fsync=False)
        journal.rotate([{"event": "snapshot", "i": i} for i in range(3)])
        lines = journal.path.read_text().splitlines()
        assert len(lines) == 4
        for line in lines:
            assert isinstance(json.loads(line), dict)
