"""Tests for repro.feedback (Section IV.D)."""

import numpy as np
import pytest

from repro.data import make_hiring
from repro.feedback import FeedbackLoopSimulator


@pytest.fixture(scope="module")
def biased_seed():
    return make_hiring(
        n=1500, direct_bias=2.0, proxy_strength=0.85, random_state=3
    )


class TestMechanics:
    def test_history_length(self, biased_seed):
        sim = FeedbackLoopSimulator(
            initial_data=biased_seed, cohort_size=300, random_state=0
        )
        history = sim.run(n_rounds=4)
        assert len(history.records) == 4
        assert [r.round_index for r in history.records] == [0, 1, 2, 3]

    def test_training_data_grows_by_cohort(self, biased_seed):
        sim = FeedbackLoopSimulator(
            initial_data=biased_seed, cohort_size=250, random_state=0
        )
        history = sim.run(n_rounds=3)
        sizes = [r.training_size for r in history.records]
        assert sizes == [1500, 1750, 2000]

    def test_deterministic_given_seed(self, biased_seed):
        a = FeedbackLoopSimulator(
            initial_data=biased_seed, cohort_size=200, random_state=9
        ).run(3)
        b = FeedbackLoopSimulator(
            initial_data=biased_seed, cohort_size=200, random_state=9
        ).run(3)
        assert a.dp_gaps() == pytest.approx(b.dp_gaps())


class TestBiasDynamics:
    def test_bias_persists_through_self_labelling(self, biased_seed):
        sim = FeedbackLoopSimulator(
            initial_data=biased_seed, cohort_size=400, random_state=1
        )
        history = sim.run(n_rounds=6)
        # the seed bias never washes out even though every cohort is
        # generated unbiased — the loop perpetuates it (paper IV.D)
        assert history.dp_gaps()[-1] > 0.05

    def test_discouragement_shrinks_female_share(self, biased_seed):
        sim = FeedbackLoopSimulator(
            initial_data=biased_seed, cohort_size=400,
            discouragement=0.6, random_state=1,
        )
        history = sim.run(n_rounds=6)
        shares = history.application_share("female")
        assert shares[-1] < shares[0] - 0.05

    def test_no_discouragement_keeps_share_stable(self, biased_seed):
        sim = FeedbackLoopSimulator(
            initial_data=biased_seed, cohort_size=400,
            discouragement=0.0, random_state=1,
        )
        history = sim.run(n_rounds=6)
        shares = history.application_share("female")
        assert abs(shares[-1] - shares[0]) < 0.08


class TestIntervention:
    def test_parity_intervention_flattens_gap(self, biased_seed):
        def parity_fix(decisions, cohort):
            # lift every group's selection rate to the best-treated
            # group's rate by promoting its rejected members
            sex = cohort.column("sex")
            fixed = decisions.copy()
            rates = {
                g: decisions[sex == g].mean()
                for g in ("male", "female")
                if (sex == g).any()
            }
            target = max(rates.values())
            for group, rate in rates.items():
                mask = sex == group
                deficit = int(round((target - rate) * mask.sum()))
                rejected = np.flatnonzero(mask & (decisions == 0))
                fixed[rejected[:deficit]] = 1
            return fixed

        baseline = FeedbackLoopSimulator(
            initial_data=biased_seed, cohort_size=400, random_state=2
        ).run(5)
        treated = FeedbackLoopSimulator(
            initial_data=biased_seed, cohort_size=400, random_state=2,
            intervention=parity_fix,
        ).run(5)
        assert treated.dp_gaps()[-1] < baseline.dp_gaps()[-1]
        assert treated.dp_gaps()[-1] < 0.07

    def test_bias_never_self_corrects(self, biased_seed):
        # The paper's claim is perpetuation: across every round the gap
        # stays well above the clean-data level even though all incoming
        # cohorts are generated unbiased.
        history = FeedbackLoopSimulator(
            initial_data=biased_seed, cohort_size=600, random_state=4,
            discouragement=0.5,
        ).run(5)
        assert float(np.mean(history.dp_gaps())) > 0.05
        assert history.amplification == pytest.approx(
            history.dp_gaps()[-1] - history.dp_gaps()[0]
        )
