"""Tests for the Section V compliance workflow."""

import pytest

from repro.core import UseCaseProfile
from repro.data import make_hiring
from repro.models import LogisticRegression, Standardizer
from repro.workflow import run_compliance_workflow


@pytest.fixture(scope="module")
def profile():
    return UseCaseProfile(
        name="graduate hiring",
        sector="employment",
        jurisdiction="eu",
        structural_bias_recognized=True,
        ground_truth_reliable=False,
        legitimate_factors=("university",),
        proxy_risk=True,
    )


@pytest.fixture(scope="module")
def biased():
    return make_hiring(
        n=2500, direct_bias=2.0, proxy_strength=0.9, random_state=47
    )


@pytest.fixture(scope="module")
def clean():
    return make_hiring(n=2500, direct_bias=0.0, random_state=47)


class TestWorkflow:
    def test_biased_data_fails(self, biased, profile):
        dossier = run_compliance_workflow(
            biased, profile, tolerance=0.05, strata="university"
        )
        assert dossier.verdict == "fail"
        assert dossier.primary_metric in {
            r.metric for r in dossier.recommendations if r.feasible
        }

    def test_clean_data_passes(self, clean, profile):
        dossier = run_compliance_workflow(
            clean, profile, tolerance=0.05, strata="university"
        )
        assert dossier.verdict == "pass"

    def test_primary_metric_is_top_feasible_evaluated(self, biased, profile):
        dossier = run_compliance_workflow(
            biased, profile, tolerance=0.05, strata="university"
        )
        feasible = [r for r in dossier.recommendations if r.feasible]
        evaluated = {
            f.metric for f in dossier.audit.all_findings()
            if f.satisfied is not None
        }
        expected = next(r.metric for r in feasible if r.metric in evaluated)
        assert dossier.primary_metric == expected

    def test_statutes_resolved_for_sex(self, biased, profile):
        dossier = run_compliance_workflow(
            biased, profile, strata="university"
        )
        keys = {s.key for s in dossier.statutes["sex"]}
        # from the generator's statute tags + the attribute-name lookup
        assert "title_vii" in keys
        assert "eu_2006_54" in keys

    def test_risk_flags_carried(self, biased, profile):
        dossier = run_compliance_workflow(biased, profile)
        risks = {f.risk for f in dossier.risks}
        assert "proxy_discrimination" in risks
        assert "sampling_requirements" in risks

    def test_model_predictions_path(self, biased, profile):
        X = Standardizer().fit_transform(biased.feature_matrix())
        model = LogisticRegression(max_iter=600).fit(X, biased.labels())
        dossier = run_compliance_workflow(
            biased, profile, predictions=model.predict(X),
            probabilities=model.predict_proba(X), strata="university",
        )
        assert dossier.verdict == "fail"
        cal = dossier.audit.finding("sex", "calibration_within_groups")
        assert cal.status == "ok"

    def test_markdown_rendering(self, biased, profile):
        dossier = run_compliance_workflow(
            biased, profile, strata="university"
        )
        text = dossier.to_markdown()
        assert "Compliance dossier" in text
        assert "verdict on primary metric: FAIL" in text
        assert "Applicable statutes" in text
        assert "Metric selection" in text
        assert "Cross-cutting risks" in text
        assert "Fairness audit report" in text
