"""Tests for repro.ranking (exposure fairness and fair re-ranking)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import MetricError, MitigationError
from repro.ranking import (
    exposure_parity,
    fair_rerank,
    group_exposure,
    position_weights,
    representation_at_k,
)


class TestPositionWeights:
    def test_decreasing(self):
        weights = position_weights(20)
        assert np.all(np.diff(weights) < 0)

    def test_first_weight_one(self):
        assert position_weights(5)[0] == pytest.approx(1.0)


class TestGroupExposure:
    def test_shares_sum_to_one(self):
        shares = group_exposure(["a", "b", "a", "b"])
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_top_positions_dominate(self):
        # group a holds the top half, b the bottom half: a's exposure
        # share must exceed its 50% headcount share
        ranking = ["a"] * 10 + ["b"] * 10
        shares = group_exposure(ranking)
        assert shares["a"] > 0.5 > shares["b"]

    def test_alternating_is_near_equal(self):
        ranking = ["a", "b"] * 25
        shares = group_exposure(ranking)
        assert abs(shares["a"] - shares["b"]) < 0.06

    def test_empty_rejected(self):
        with pytest.raises(MetricError, match="non-empty"):
            group_exposure([])


class TestExposureParity:
    def test_blocked_ranking_violates(self):
        ranking = ["a"] * 10 + ["b"] * 10
        result = exposure_parity(ranking, tolerance=0.02)
        assert not result.satisfied
        assert result.details["shortfalls"]["b"] > 0.02
        assert result.details["shortfalls"]["a"] == 0.0

    def test_alternating_satisfies(self):
        ranking = ["a", "b"] * 25
        result = exposure_parity(ranking, tolerance=0.05)
        assert result.satisfied

    def test_external_population_shares(self):
        # b is 30% of the ranking but 50% of the population: even an
        # alternating ranking underexposes b relative to the population
        ranking = ["a", "a", "b"] * 10
        result = exposure_parity(
            ranking, population_shares={"a": 0.5, "b": 0.5},
            tolerance=0.05,
        )
        assert not result.satisfied

    def test_missing_population_group_raises(self):
        with pytest.raises(MetricError, match="lacks groups"):
            exposure_parity(["a", "b"], population_shares={"a": 1.0})


class TestRepresentationAtK:
    def test_prefix_counts(self):
        ranking = ["a", "a", "b", "b", "b"]
        rep = representation_at_k(ranking, 2)
        assert rep == {"a": 1.0, "b": 0.0}
        rep5 = representation_at_k(ranking, 5)
        assert rep5["b"] == pytest.approx(0.6)

    def test_k_bounds_checked(self):
        with pytest.raises(MetricError, match="exceeds"):
            representation_at_k(["a"], 2)


class TestFairRerank:
    def _candidates(self, n=40, seed=0, score_gap=1.0):
        rng = np.random.default_rng(seed)
        groups = np.array(["maj"] * (n // 2) + ["min"] * (n // 2))
        scores = rng.normal(0, 1, n)
        scores[groups == "min"] -= score_gap  # minority scores lower
        return scores, groups

    def test_output_is_permutation(self):
        scores, groups = self._candidates()
        order = fair_rerank(scores, groups)
        assert sorted(order.tolist()) == list(range(len(scores)))

    def test_prefix_representation_enforced(self):
        scores, groups = self._candidates(score_gap=2.0)
        order = fair_rerank(scores, groups,
                            target_proportions={"min": 0.5, "maj": 0.5})
        ranked_groups = groups[order]
        for k in range(2, len(scores) + 1):
            min_share = np.mean(ranked_groups[:k] == "min")
            assert min_share >= 0.5 - 1.0 / k - 1e-9

    def test_improves_exposure(self):
        scores, groups = self._candidates(score_gap=2.0)
        merit_order = np.argsort(-scores)
        merit_share = group_exposure(groups[merit_order])["min"]
        fair_order = fair_rerank(scores, groups)
        fair_share = group_exposure(groups[fair_order])["min"]
        assert fair_share > merit_share

    def test_within_group_order_preserved(self):
        scores, groups = self._candidates()
        order = fair_rerank(scores, groups)
        for group in ("maj", "min"):
            member_scores = scores[order][groups[order] == group]
            assert np.all(np.diff(member_scores) <= 1e-12)

    def test_no_targets_defaults_to_shares(self):
        scores, groups = self._candidates()
        order = fair_rerank(scores, groups)
        assert len(order) == len(scores)

    def test_overfull_targets_rejected(self):
        with pytest.raises(MitigationError, match="> 1"):
            fair_rerank([1.0, 2.0], ["a", "b"],
                        target_proportions={"a": 0.7, "b": 0.7})

    def test_unknown_target_group_rejected(self):
        with pytest.raises(MitigationError, match="no candidates"):
            fair_rerank([1.0], ["a"], target_proportions={"z": 0.5})

    @given(st.integers(4, 30), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_permutation_property(self, n, seed):
        rng = np.random.default_rng(seed)
        scores = rng.normal(0, 1, n)
        groups = rng.choice(["a", "b"], n)
        if len(np.unique(groups)) < 2:
            return
        order = fair_rerank(scores, groups)
        assert sorted(order.tolist()) == list(range(n))
