"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Column, Schema, TabularDataset, make_hiring


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_schema():
    """Minimal schema: one numeric feature, one protected, one label."""
    return Schema((
        Column("score", kind="numeric"),
        Column(
            "sex",
            kind="categorical",
            role="protected",
            categories=("male", "female"),
        ),
        Column("hired", kind="binary", role="label"),
    ))


@pytest.fixture
def tiny_dataset(tiny_schema):
    return TabularDataset(tiny_schema, {
        "score": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        "sex": ["male", "female", "male", "female", "male", "female"],
        "hired": [1, 0, 1, 1, 0, 0],
    })


@pytest.fixture
def biased_hiring():
    """A mid-sized hiring dataset with direct label bias and a strong proxy."""
    return make_hiring(
        n=1200, direct_bias=1.5, proxy_strength=0.85, random_state=7
    )


@pytest.fixture
def clean_hiring():
    """An unbiased hiring dataset (labels driven by qualification only)."""
    return make_hiring(n=1200, direct_bias=0.0, proxy_strength=0.0, random_state=7)


@pytest.fixture
def paper_e1_arrays():
    """The paper's III.A example: 20 males (10 hired), 10 females (5 hired)."""
    predictions = [1] * 10 + [0] * 10 + [1] * 5 + [0] * 5
    groups = ["male"] * 20 + ["female"] * 10
    return np.array(predictions), np.array(groups)
