"""Tests for ProxyDetector and fairness-through-unawareness (IV.B)."""

import pytest

from repro.data import make_hiring
from repro.exceptions import DatasetError
from repro.proxy import (
    ProxyDetector,
    fairness_through_unawareness,
)


class TestProxyDetector:
    def test_strong_proxy_ranked_first(self):
        ds = make_hiring(n=2500, proxy_strength=0.9, random_state=0)
        report = ProxyDetector(random_state=0).scan(ds, "sex")
        ranked = report.ranked()
        assert ranked[0].feature == "university"
        assert ranked[0].combined > 0.5
        assert report.proxies()

    def test_no_proxy_when_strength_zero(self):
        ds = make_hiring(n=2500, proxy_strength=0.0, random_state=0)
        report = ProxyDetector(random_state=0).scan(ds, "sex")
        assert all(s.combined < 0.3 for s in report.scores)
        assert not report.attribute_is_reconstructible

    def test_reconstructibility_with_proxy(self):
        ds = make_hiring(n=2500, proxy_strength=1.0, random_state=0)
        report = ProxyDetector(random_state=0).scan(ds, "sex")
        assert report.attribute_is_reconstructible
        assert report.full_model_power > 0.9

    def test_every_feature_scored(self):
        ds = make_hiring(n=800, random_state=0)
        report = ProxyDetector(random_state=0).scan(ds, "sex")
        scored = {s.feature for s in report.scores}
        assert scored == set(ds.schema.feature_names)

    def test_non_protected_attribute_rejected(self):
        ds = make_hiring(n=200, random_state=0)
        with pytest.raises(DatasetError, match="not protected"):
            ProxyDetector().scan(ds, "experience")

    def test_reconstruction_power_bounded(self):
        ds = make_hiring(n=1000, proxy_strength=0.5, random_state=1)
        report = ProxyDetector(random_state=1).scan(ds, "sex")
        for score in report.scores:
            assert 0.5 <= score.reconstruction_power <= 1.0


class TestFairnessThroughUnawareness:
    def test_proxies_defeat_unawareness(self):
        # Strong label bias + strong proxy: dropping `sex` barely helps.
        ds = make_hiring(
            n=4000, direct_bias=2.5, proxy_strength=0.95, random_state=0
        )
        report = fairness_through_unawareness(ds, "sex", random_state=0)
        assert report.gap_unaware > 0.10
        assert "FAILS" in report.conclusion()
        assert not report.unawareness_sufficient()

    def test_unawareness_works_without_proxies(self):
        # Label bias but NO proxy: removing the attribute fixes most of it
        # (the model has nothing sex-correlated to latch onto).
        ds = make_hiring(
            n=4000, direct_bias=2.5, proxy_strength=0.0, random_state=0
        )
        report = fairness_through_unawareness(ds, "sex", random_state=0)
        assert report.gap_unaware < report.gap_aware
        assert report.gap_unaware < 0.1

    def test_accuracies_reported(self):
        ds = make_hiring(n=1500, direct_bias=1.0, random_state=0)
        report = fairness_through_unawareness(ds, "sex", random_state=0)
        assert 0.4 < report.accuracy_aware <= 1.0
        assert 0.4 < report.accuracy_unaware <= 1.0

    def test_requires_protected_column(self):
        ds = make_hiring(n=300, random_state=0)
        with pytest.raises(DatasetError, match="not protected"):
            fairness_through_unawareness(ds, "experience")
