"""Tests for repro.proxy.associations."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.proxy import (
    correlation_ratio,
    cramers_v,
    discretize,
    mutual_information,
    point_biserial,
)


class TestCramersV:
    def test_perfect_association(self):
        x = np.array(["a", "a", "b", "b"] * 50)
        y = np.array(["u", "u", "v", "v"] * 50)
        assert cramers_v(x, y) > 0.95

    def test_independence_near_zero(self):
        rng = np.random.default_rng(0)
        x = rng.choice(["a", "b"], 2000)
        y = rng.choice(["u", "v"], 2000)
        assert cramers_v(x, y) < 0.1

    def test_single_category_is_zero(self):
        assert cramers_v(["a"] * 10, ["u", "v"] * 5) == 0.0

    def test_symmetric(self):
        rng = np.random.default_rng(1)
        x = rng.choice(["a", "b", "c"], 500)
        y = np.where(x == "a", "u", rng.choice(["u", "v"], 500))
        assert cramers_v(x, y) == pytest.approx(cramers_v(y, x))

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            cramers_v([], [])


class TestPointBiserial:
    def test_strong_association(self):
        membership = np.array([0, 1] * 500)
        values = membership * 5.0 + np.random.default_rng(0).normal(0, 0.5, 1000)
        assert point_biserial(values, membership) > 0.9

    def test_independence(self):
        rng = np.random.default_rng(0)
        assert point_biserial(rng.normal(0, 1, 2000),
                              rng.integers(0, 2, 2000)) < 0.07

    def test_constant_values_zero(self):
        assert point_biserial([1.0] * 10, [0, 1] * 5) == 0.0

    def test_single_group_zero(self):
        assert point_biserial([1.0, 2.0, 3.0], [1, 1, 1]) == 0.0

    def test_absolute_value(self):
        membership = np.array([0, 1] * 500)
        values = -membership * 5.0 + np.random.default_rng(0).normal(0, 0.5, 1000)
        assert point_biserial(values, membership) > 0.9


class TestMutualInformation:
    def test_perfect_dependence(self):
        x = np.array(["a", "b"] * 500)
        y = np.array([0, 1] * 500)
        assert mutual_information(x, y) > 0.95

    def test_independence_near_zero(self):
        rng = np.random.default_rng(0)
        x = rng.choice(["a", "b"], 5000)
        y = rng.integers(0, 2, 5000)
        assert mutual_information(x, y) < 0.05

    def test_numeric_inputs_binned(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, 3000)
        y = x + rng.normal(0, 0.1, 3000)
        assert mutual_information(x, y) > 0.5

    def test_unnormalised_option(self):
        x = np.array(["a", "b"] * 500)
        y = np.array([0, 1] * 500)
        raw = mutual_information(x, y, normalized=False)
        assert raw == pytest.approx(np.log(2), abs=0.01)


class TestCorrelationRatio:
    def test_group_means_differ(self):
        groups = np.array(["a", "b", "c"] * 300)
        values = np.where(groups == "a", 0.0,
                          np.where(groups == "b", 5.0, 10.0))
        values = values + np.random.default_rng(0).normal(0, 0.5, 900)
        assert correlation_ratio(values, groups) > 0.95

    def test_no_group_effect(self):
        rng = np.random.default_rng(0)
        groups = rng.choice(["a", "b"], 3000)
        values = rng.normal(0, 1, 3000)
        assert correlation_ratio(values, groups) < 0.07

    def test_constant_values_zero(self):
        assert correlation_ratio([2.0] * 10, ["a", "b"] * 5) == 0.0


class TestDiscretize:
    def test_equal_frequency_bins(self):
        values = np.arange(1000, dtype=float)
        codes = discretize(values, n_bins=10)
        __, counts = np.unique(codes, return_counts=True)
        assert len(counts) == 10
        assert counts.min() >= 90

    def test_few_distinct_values(self):
        codes = discretize(np.array([1.0, 1.0, 2.0, 2.0]), n_bins=10)
        assert len(np.unique(codes)) == 2
