"""Tests for discrimination by association (paper IV.B)."""

import numpy as np
import pytest

from repro.data import make_hiring
from repro.exceptions import DatasetError, InsufficientDataError
from repro.models import LogisticRegression, Standardizer
from repro.proxy import association_harm


@pytest.fixture(scope="module")
def model_outputs():
    """Model predictions on a strongly proxied, biased hiring population."""
    ds = make_hiring(
        n=6000, direct_bias=2.5, proxy_strength=0.85, random_state=51
    )
    X = Standardizer().fit_transform(ds.feature_matrix())
    model = LogisticRegression(max_iter=800).fit(X, ds.labels())
    return ds, model.predict(X)


class TestAssociationHarm:
    def test_males_at_female_typical_university_are_harmed(self, model_outputs):
        ds, preds = model_outputs
        report = association_harm(ds, "sex", "university", preds)
        # the disadvantaged group is female; its typical university is
        # u_alpha (the generator encodes sex=female as u_alpha)
        assert report.disadvantaged_group == "female"
        assert report.associated_value == "u_alpha"
        # the paper's claim: males at the female-typical university are
        # hired at a lower rate than other males
        assert report.harm > 0.05
        assert report.is_harmful()
        assert "Discrimination by association" in report.summary()

    def test_no_harm_without_proxy_reliance(self):
        # no proxy correlation: the model cannot route bias through the
        # university, so no spill-over onto males
        ds = make_hiring(
            n=6000, direct_bias=2.5, proxy_strength=0.0, random_state=51
        )
        X = Standardizer().fit_transform(ds.feature_matrix())
        model = LogisticRegression(max_iter=800).fit(X, ds.labels())
        report = association_harm(
            ds, "sex", "university", model.predict(X),
            disadvantaged_group="female",
        )
        assert abs(report.harm) < 0.05
        assert not report.is_harmful()

    def test_explicit_disadvantaged_group(self, model_outputs):
        ds, preds = model_outputs
        report = association_harm(
            ds, "sex", "university", preds, disadvantaged_group="female"
        )
        assert report.disadvantaged_group == "female"

    def test_counts_partition_non_members(self, model_outputs):
        ds, preds = model_outputs
        report = association_harm(ds, "sex", "university", preds)
        n_males = int((ds.column("sex") == "male").sum())
        assert report.n_associated + report.n_not_associated == n_males

    def test_non_protected_attribute_rejected(self, model_outputs):
        ds, preds = model_outputs
        with pytest.raises(DatasetError, match="not protected"):
            association_harm(ds, "experience", "university", preds)

    def test_numeric_proxy_rejected(self, model_outputs):
        ds, preds = model_outputs
        with pytest.raises(DatasetError, match="discrete"):
            association_harm(ds, "sex", "experience", preds)

    def test_length_mismatch_rejected(self, model_outputs):
        ds, __ = model_outputs
        with pytest.raises(DatasetError, match="length"):
            association_harm(ds, "sex", "university", [1, 0])

    def test_one_sided_proxy_raises(self):
        # all non-members share the associated proxy value: no comparison
        ds = make_hiring(n=2000, proxy_strength=0.0, random_state=0)
        university = np.array(["u_alpha"] * ds.n_rows)
        ds = ds.with_column(ds.schema["university"], university)
        with pytest.raises(InsufficientDataError, match="both sides"):
            association_harm(ds, "sex", "university", ds.labels())
