"""The ``repro.audit`` façade and the deprecation shims for old kwargs."""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.core.audit import FairnessAudit
from repro.core.config import AuditConfig
from repro.exceptions import AuditError
from repro.workflow import run_compliance_workflow

from tests.streaming.conftest import comparable


class TestFacade:
    def test_exported_at_top_level(self):
        for name in ("audit", "AuditConfig", "AuditAccumulator",
                     "FairnessMonitor", "audit_stream"):
            assert name in repro.__all__
            assert hasattr(repro, name)

    def test_rejects_unknown_payload(self):
        with pytest.raises(AuditError, match="TabularDataset"):
            repro.audit(42)

    def test_accumulator_form_rejects_predictions(self, hiring, predictions):
        from repro.streaming import accumulator_for

        acc = accumulator_for(hiring)
        acc.ingest_dataset(hiring, predictions)
        with pytest.raises(AuditError, match="already carries"):
            repro.audit(acc, predictions=predictions)

    def test_stream_form_rejects_predictions_kwarg(self, hiring, predictions):
        with pytest.raises(AuditError, match="inside each"):
            repro.audit([(hiring, predictions)], predictions=predictions)

    def test_default_config_is_used(self, hiring):
        report = repro.audit(hiring)
        assert report.tolerance == AuditConfig().tolerance


class TestDeprecationShims:
    def test_legacy_tolerance_kwarg_warns(self, hiring):
        with pytest.warns(DeprecationWarning, match="AuditConfig"):
            FairnessAudit(hiring, tolerance=0.1)

    def test_legacy_strata_kwarg_warns(self, hiring):
        with pytest.warns(DeprecationWarning, match="strata"):
            FairnessAudit(hiring, strata="university")

    def test_config_path_does_not_warn(self, hiring):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            FairnessAudit(hiring, config=AuditConfig(tolerance=0.1))

    def test_legacy_kwargs_still_work(self, hiring):
        with pytest.warns(DeprecationWarning):
            legacy = FairnessAudit(hiring, tolerance=0.2).run()
        modern = FairnessAudit(
            hiring, config=AuditConfig(tolerance=0.2)
        ).run()
        assert comparable(legacy) == comparable(modern)

    def test_legacy_kwargs_override_config(self, hiring):
        with pytest.warns(DeprecationWarning):
            audit = FairnessAudit(
                hiring, tolerance=0.25, config=AuditConfig(tolerance=0.05)
            )
        assert audit.config.tolerance == 0.25

    def test_workflow_legacy_kwargs_warn(self, hiring):
        from repro.core.criteria import UseCaseProfile

        profile = UseCaseProfile(name="t", sector="employment",
                                 jurisdiction="eu")
        with pytest.warns(DeprecationWarning):
            run_compliance_workflow(hiring, profile, tolerance=0.1)

    def test_workflow_config_path_does_not_warn(self, hiring):
        from repro.core.criteria import UseCaseProfile

        profile = UseCaseProfile(name="t", sector="employment",
                                 jurisdiction="eu")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_compliance_workflow(
                hiring, profile, config=AuditConfig(tolerance=0.1)
            )

    def test_subgroups_accepts_config(self, hiring):
        from repro.subgroup.auditor import audit_subgroups

        via_config = audit_subgroups(
            hiring.labels(), hiring,
            config=AuditConfig(max_order=1, min_size=5, alpha=0.05),
        )
        direct = audit_subgroups(
            hiring.labels(), hiring, max_order=1, min_size=5, alpha=0.05
        )
        assert [f.subgroup.label() for f in via_config] == \
            [f.subgroup.label() for f in direct]

    def test_explicit_kwargs_override_subgroup_config(self, hiring):
        from repro.subgroup.auditor import audit_subgroups

        findings = audit_subgroups(
            hiring.labels(), hiring,
            max_order=1,
            config=AuditConfig(max_order=2),
        )
        assert all(f.subgroup.order == 1 for f in findings)
