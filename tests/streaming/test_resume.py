"""Checkpoint/resume: interrupted streams complete without double-counting."""

from __future__ import annotations

import json

import pytest

from repro.core.config import AuditConfig
from repro.exceptions import AuditError, CheckpointError
from repro.streaming import audit_stream, ingest_stream

from tests.streaming.conftest import chunked, comparable


class TestResume:
    def test_resume_skips_counted_prefix(self, hiring, predictions, tmp_path):
        config = AuditConfig()
        ckpt = tmp_path / "stream.ckpt.json"
        chunks = chunked(hiring, predictions, size=150)
        ingest_stream(chunks[:3], config, checkpoint=ckpt)

        full = audit_stream(chunks, config, checkpoint=ckpt, resume=True)
        ref = audit_stream(chunks, config)
        assert comparable(full) == comparable(ref)

    def test_resume_without_checkpoint_file_starts_fresh(
        self, hiring, predictions, tmp_path
    ):
        config = AuditConfig()
        chunks = chunked(hiring, predictions)
        report = audit_stream(
            chunks, config,
            checkpoint=tmp_path / "missing.json", resume=True,
        )
        assert comparable(report) == comparable(audit_stream(chunks, config))

    def test_without_resume_checkpoint_is_overwritten(
        self, hiring, predictions, tmp_path
    ):
        config = AuditConfig()
        ckpt = tmp_path / "stream.ckpt.json"
        chunks = chunked(hiring, predictions, size=150)
        ingest_stream(chunks[:2], config, checkpoint=ckpt)
        acc = ingest_stream(chunks, config, checkpoint=ckpt)
        assert acc.n_rows == hiring.n_rows

    def test_checkpoint_every_throttles_writes(
        self, hiring, predictions, tmp_path, monkeypatch
    ):
        from repro.streaming import accumulator as accumulator_module

        writes = []
        original = accumulator_module.save_checkpoint

        def counting(path, payload, fingerprint=""):
            writes.append(path)
            original(path, payload, fingerprint=fingerprint)

        monkeypatch.setattr(
            accumulator_module, "save_checkpoint", counting
        )
        ckpt = tmp_path / "stream.ckpt.json"
        ingest_stream(
            chunked(hiring, predictions, size=100),
            AuditConfig(),
            checkpoint=ckpt,
            checkpoint_every=4,
        )
        # 9 chunks → writes after chunks 4 and 8, plus the final flush.
        assert len(writes) == 3

    def test_checkpoint_every_must_be_positive(self, hiring, predictions):
        with pytest.raises(AuditError, match="checkpoint_every"):
            ingest_stream(
                chunked(hiring, predictions), AuditConfig(),
                checkpoint_every=0,
            )

    def test_resume_refuses_foreign_checkpoint(
        self, hiring, predictions, tmp_path
    ):
        ckpt = tmp_path / "stream.ckpt.json"
        chunks = chunked(hiring, predictions)
        # Checkpoint written by a *stratified* stream has another layout.
        ingest_stream(
            chunks, AuditConfig(strata="university"), checkpoint=ckpt
        )
        with pytest.raises(CheckpointError):
            audit_stream(chunks, AuditConfig(), checkpoint=ckpt, resume=True)

    def test_corrupt_checkpoint_is_reported(
        self, hiring, predictions, tmp_path
    ):
        ckpt = tmp_path / "stream.ckpt.json"
        ckpt.write_text('{"version": 1, "fingerprint": "x", "payl')
        with pytest.raises(CheckpointError):
            audit_stream(
                chunked(hiring, predictions), AuditConfig(),
                checkpoint=ckpt, resume=True,
            )

    def test_checkpoint_file_is_valid_json_envelope(
        self, hiring, predictions, tmp_path
    ):
        ckpt = tmp_path / "stream.ckpt.json"
        ingest_stream(
            chunked(hiring, predictions), AuditConfig(), checkpoint=ckpt
        )
        envelope = json.loads(ckpt.read_text())
        assert set(envelope) >= {"version", "fingerprint", "payload"}
        assert envelope["payload"]["n_rows"] == hiring.n_rows


class TestStreamValidation:
    def test_empty_stream_rejected(self):
        with pytest.raises(AuditError, match="empty"):
            audit_stream([], AuditConfig())

    def test_non_dataset_chunk_rejected(self):
        with pytest.raises(AuditError, match="chunks must be"):
            audit_stream([{"rows": 3}], AuditConfig())

    def test_config_strata_must_match_accumulator(self, hiring, predictions):
        from repro.streaming import accumulator_for, finalize

        acc = accumulator_for(hiring)
        acc.ingest_dataset(hiring, predictions)
        with pytest.raises(AuditError, match="strata"):
            finalize(acc, AuditConfig(strata="university"))
