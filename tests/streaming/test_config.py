"""AuditConfig: validation, immutability, round-trips, battery registry."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.audit import BATTERY_REGISTRY, battery_metrics
from repro.core.config import AuditConfig
from repro.exceptions import AuditError, ValidationError
from repro.robustness import ExecutionPolicy


class TestConstruction:
    def test_defaults_are_the_documented_contract(self):
        config = AuditConfig()
        assert config.tolerance == 0.05
        assert config.strata is None
        assert config.metrics is None
        assert config.correction == "holm"

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            AuditConfig().tolerance = 0.2

    def test_validates_tolerance(self):
        with pytest.raises(ValidationError):
            AuditConfig(tolerance=1.5)

    def test_validates_correction(self):
        with pytest.raises(AuditError, match="unknown correction"):
            AuditConfig(correction="bonferroni")

    def test_validates_metric_names(self):
        with pytest.raises(AuditError, match="unknown battery metrics"):
            AuditConfig(metrics=("not_a_metric",))

    def test_metrics_coerced_to_tuple(self):
        config = AuditConfig(metrics=["demographic_parity"])
        assert config.metrics == ("demographic_parity",)

    def test_replace_returns_new_validated_config(self):
        base = AuditConfig()
        changed = base.replace(tolerance=0.1)
        assert changed.tolerance == 0.1
        assert base.tolerance == 0.05
        with pytest.raises(ValidationError):
            base.replace(tolerance=-1)


class TestBattery:
    def test_default_battery_is_registry_order(self):
        assert AuditConfig().battery() == tuple(BATTERY_REGISTRY)

    def test_subset_keeps_caller_order(self):
        subset = ("equal_opportunity", "demographic_parity")
        assert AuditConfig(metrics=subset).battery() == subset
        assert battery_metrics(subset) == subset

    def test_subset_deduplicates(self):
        assert battery_metrics(
            ("demographic_parity", "demographic_parity")
        ) == ("demographic_parity",)

    def test_empty_subset_rejected(self):
        with pytest.raises(AuditError, match="empty"):
            battery_metrics(())

    def test_registry_entries_carry_paper_sections(self):
        for name, spec in BATTERY_REGISTRY.items():
            assert spec.name == name
            assert spec.paper_section


class TestRoundTrip:
    def test_to_dict_from_dict_identity(self):
        config = AuditConfig(
            tolerance=0.1,
            strata="university",
            metrics=("demographic_parity",),
            policy=ExecutionPolicy(deadline=2.0, max_retries=3),
            max_order=3,
            correction="bh",
        )
        clone = AuditConfig.from_dict(config.to_dict())
        assert clone.to_dict() == config.to_dict()
        assert clone.policy.deadline == 2.0
        assert clone.policy.max_retries == 3

    def test_runtime_objects_are_dropped(self):
        from repro.observability import Tracer

        config = AuditConfig(tracer=Tracer())
        payload = config.to_dict()
        assert "tracer" not in payload
        assert AuditConfig.from_dict(payload).tracer is None

    def test_fingerprint_tracks_content(self):
        a = AuditConfig(tolerance=0.05)
        b = AuditConfig(tolerance=0.05)
        c = AuditConfig(tolerance=0.06)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_shared_across_surfaces(self, hiring):
        """One config type drives audit, stream, and monitor alike."""
        from repro import FairnessMonitor, audit, audit_stream
        from tests.streaming.conftest import chunked, comparable

        config = AuditConfig(metrics=("demographic_parity",))
        in_memory = audit(hiring, config=config)
        streamed = audit_stream(chunked(hiring), config)
        assert comparable(in_memory) == comparable(streamed)
        monitor = FairnessMonitor(
            ["sex"], config=config, window=hiring.n_rows,
            label="hired", audits_labels=True,
        )
        (window,) = monitor.observe(
            y_true=hiring.column("hired"),
            protected={"sex": hiring.column("sex")},
        )
        assert window.gaps["sex/demographic_parity"] == pytest.approx(
            in_memory.findings[0].result.gap
        )
