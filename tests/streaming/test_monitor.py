"""FairnessMonitor: windowing, drift detection, reporting."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import AuditConfig
from repro.exceptions import AuditError
from repro.streaming import FairnessMonitor

CFG = AuditConfig(metrics=("demographic_parity",))


def _population(n, *, bias, seed):
    """Labels, predictions, and groups with a controllable selection gap."""
    rng = np.random.default_rng(seed)
    sex = np.where(rng.random(n) < 0.5, "female", "male")
    y = (rng.random(n) < 0.5).astype(int)
    p = y.copy()
    # bias: deny this fraction of positive predictions for women
    deny = (sex == "female") & (rng.random(n) < bias)
    p[deny] = 0
    return y, p, sex


class TestWindowing:
    def test_closes_one_window_per_n_rows(self):
        y, p, sex = _population(1000, bias=0.0, seed=0)
        monitor = FairnessMonitor(["sex"], config=CFG, window=250)
        closed = monitor.observe(y_true=y, predictions=p,
                                 protected={"sex": sex})
        assert [w.index for w in closed] == [0, 1, 2, 3]
        assert all(w.n_rows == 250 for w in closed)
        assert closed[-1].end_row == 1000

    def test_buffers_partial_windows_across_calls(self):
        y, p, sex = _population(300, bias=0.0, seed=1)
        monitor = FairnessMonitor(["sex"], config=CFG, window=200)
        first = monitor.observe(y_true=y[:150], predictions=p[:150],
                                protected={"sex": sex[:150]})
        assert first == []
        second = monitor.observe(y_true=y[150:], predictions=p[150:],
                                 protected={"sex": sex[150:]})
        assert len(second) == 1
        assert second[0].n_rows == 200

    def test_flush_audits_the_remainder(self):
        y, p, sex = _population(130, bias=0.0, seed=2)
        monitor = FairnessMonitor(["sex"], config=CFG, window=100)
        monitor.observe(y_true=y, predictions=p, protected={"sex": sex})
        tail = monitor.flush()
        assert tail is not None
        assert tail.n_rows == 30
        assert monitor.flush() is None

    def test_window_gap_matches_offline_audit(self, hiring, predictions):
        from repro.core.audit import FairnessAudit

        n = hiring.n_rows
        monitor = FairnessMonitor(["sex"], config=CFG, window=n,
                                  label="hired")
        (window,) = monitor.observe(
            y_true=hiring.column("hired"),
            predictions=predictions,
            protected={"sex": hiring.column("sex")},
        )
        report = FairnessAudit(hiring, predictions=predictions,
                               config=CFG).run()
        expected = report.findings[0].result.gap
        assert window.gaps["sex/demographic_parity"] == pytest.approx(expected)


class TestDrift:
    def test_stable_stream_raises_no_drift(self):
        y, p, sex = _population(2000, bias=0.0, seed=3)
        monitor = FairnessMonitor(["sex"], config=CFG, window=400,
                                  drift_threshold=0.1)
        monitor.observe(y_true=y, predictions=p, protected={"sex": sex})
        assert monitor.drift_events == []

    def test_sudden_bias_raises_drift(self):
        monitor = FairnessMonitor(["sex"], config=CFG, window=1000,
                                  drift_threshold=0.15)
        y, p, sex = _population(2000, bias=0.0, seed=4)
        monitor.observe(y_true=y, predictions=p, protected={"sex": sex})
        assert monitor.drift_events == []
        y2, p2, sex2 = _population(1000, bias=0.9, seed=5)
        (window,) = monitor.observe(y_true=y2, predictions=p2,
                                    protected={"sex": sex2})
        assert window.drifted
        (event,) = window.drift
        assert event.attribute == "sex"
        assert event.metric == "demographic_parity"
        assert abs(event.delta) > 0.15
        assert monitor.drift_events == [event]

    def test_first_window_is_baseline_not_drift(self):
        y, p, sex = _population(400, bias=0.9, seed=6)
        monitor = FairnessMonitor(["sex"], config=CFG, window=400,
                                  drift_threshold=0.05)
        (window,) = monitor.observe(y_true=y, predictions=p,
                                    protected={"sex": sex})
        assert not window.drifted


class TestReporting:
    def _drifted_monitor(self):
        monitor = FairnessMonitor(["sex"], config=CFG, window=300,
                                  drift_threshold=0.1)
        y, p, sex = _population(600, bias=0.0, seed=7)
        monitor.observe(y_true=y, predictions=p, protected={"sex": sex})
        y2, p2, sex2 = _population(300, bias=0.9, seed=8)
        monitor.observe(y_true=y2, predictions=p2, protected={"sex": sex2})
        return monitor

    def test_summary_is_json_able(self):
        summary = self._drifted_monitor().summary()
        parsed = json.loads(json.dumps(summary))
        assert parsed["windows"] == 3
        assert parsed["drift_events"]

    def test_markdown_names_the_drifted_metric(self):
        text = self._drifted_monitor().markdown()
        assert "demographic_parity" in text
        assert "re-audit" in text

    def test_clean_markdown_says_representative(self):
        monitor = FairnessMonitor(["sex"], config=CFG, window=300)
        y, p, sex = _population(300, bias=0.0, seed=9)
        monitor.observe(y_true=y, predictions=p, protected={"sex": sex})
        assert "remains representative" in monitor.markdown()


class TestValidation:
    def test_window_must_be_positive(self):
        with pytest.raises(AuditError):
            FairnessMonitor(["sex"], window=0)

    def test_threshold_range(self):
        with pytest.raises(AuditError):
            FairnessMonitor(["sex"], drift_threshold=0.0)

    def test_predictions_required_unless_data_audit(self):
        monitor = FairnessMonitor(["sex"], config=CFG, window=10)
        with pytest.raises(AuditError, match="predictions"):
            monitor.observe(y_true=[1], protected={"sex": ["f"]})

    def test_data_audit_mode_needs_no_predictions(self):
        monitor = FairnessMonitor(["sex"], config=CFG, window=4,
                                  audits_labels=True)
        closed = monitor.observe(
            y_true=[1, 0, 1, 0],
            protected={"sex": ["f", "m", "f", "m"]},
        )
        assert len(closed) == 1
