"""The tentpole guarantee: streamed == in-memory, byte for byte.

Every test compares a streaming-engine report against the in-memory
:class:`FairnessAudit` of the concatenated data, on both kernel
backends, with provenance (per-run metadata: timings, fingerprints of
the audited artifact) neutralised on both sides.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.audit import FairnessAudit
from repro.core.config import AuditConfig
from repro.kernel import use_backend
from repro.streaming import (
    AuditAccumulator,
    accumulator_for,
    audit_stream,
    finalize,
)

from tests.streaming.conftest import chunked, comparable, comparable_markdown

BACKENDS = ("kernel", "reference")


def reference_report(dataset, predictions, config):
    return FairnessAudit(dataset, predictions=predictions, config=config).run()


@pytest.mark.parametrize("backend", BACKENDS)
class TestChunkedEquivalence:
    def test_model_audit_dict_identical(self, hiring, predictions, backend):
        config = AuditConfig(tolerance=0.05)
        with use_backend(backend):
            ref = reference_report(hiring, predictions, config)
            stream = audit_stream(chunked(hiring, predictions), config)
        assert comparable(stream) == comparable(ref)

    def test_model_audit_markdown_identical(
        self, hiring, predictions, backend
    ):
        config = AuditConfig(tolerance=0.05)
        with use_backend(backend):
            ref = reference_report(hiring, predictions, config)
            stream = audit_stream(chunked(hiring, predictions), config)
        assert comparable_markdown(stream) == comparable_markdown(ref)

    def test_data_audit_identical(self, hiring, backend):
        config = AuditConfig(tolerance=0.05)
        with use_backend(backend):
            ref = FairnessAudit(hiring, config=config).run()
            stream = audit_stream(chunked(hiring), config)
        assert comparable(stream) == comparable(ref)
        assert comparable_markdown(stream) == comparable_markdown(ref)

    def test_stratified_audit_identical(self, hiring, predictions, backend):
        config = AuditConfig(tolerance=0.05, strata="university")
        with use_backend(backend):
            ref = reference_report(hiring, predictions, config)
            stream = audit_stream(chunked(hiring, predictions), config)
        assert comparable(stream) == comparable(ref)
        assert comparable_markdown(stream) == comparable_markdown(ref)

    def test_metric_subset_identical(self, hiring, predictions, backend):
        config = AuditConfig(
            metrics=("demographic_parity", "disparate_impact_ratio")
        )
        with use_backend(backend):
            ref = reference_report(hiring, predictions, config)
            stream = audit_stream(chunked(hiring, predictions), config)
        assert comparable(stream) == comparable(ref)


@pytest.mark.parametrize("backend", BACKENDS)
class TestShardedEquivalence:
    def test_merged_shards_identical(self, hiring, predictions, backend):
        config = AuditConfig(tolerance=0.05)
        shards = []
        bounds = [(0, 300), (300, 520), (520, 900)]
        for lo, hi in bounds:
            acc = accumulator_for(hiring)
            idx = np.arange(lo, hi)
            acc.ingest_dataset(hiring.take(idx), predictions[lo:hi])
            shards.append(acc)
        merged = AuditAccumulator.merge_all(shards)
        with use_backend(backend):
            ref = reference_report(hiring, predictions, config)
            report = finalize(merged, config)
        assert comparable(report) == comparable(ref)
        assert comparable_markdown(report) == comparable_markdown(ref)

    def test_serialised_shards_identical(
        self, hiring, predictions, backend, tmp_path
    ):
        config = AuditConfig()
        paths = []
        for shard, (lo, hi) in enumerate([(0, 450), (450, 900)]):
            acc = accumulator_for(hiring)
            acc.ingest_dataset(
                hiring.take(np.arange(lo, hi)), predictions[lo:hi]
            )
            path = tmp_path / f"shard{shard}.json"
            acc.save(path)
            paths.append(path)
        from repro.streaming import merge_states

        merged = merge_states(paths)
        with use_backend(backend):
            ref = reference_report(hiring, predictions, config)
            report = finalize(merged, config)
        assert comparable(report) == comparable(ref)


class TestChunkSizeInvariance:
    @pytest.mark.parametrize("size", (1, 7, 100, 899, 900, 5000))
    def test_any_chunking_identical(self, hiring, predictions, size):
        config = AuditConfig()
        ref = comparable(reference_report(hiring, predictions, config))
        stream = audit_stream(chunked(hiring, predictions, size=size), config)
        assert comparable(stream) == ref

    def test_backends_agree_on_stream(self, hiring, predictions):
        config = AuditConfig()
        reports = {}
        for backend in BACKENDS:
            with use_backend(backend):
                reports[backend] = comparable(
                    audit_stream(chunked(hiring, predictions), config)
                )
        assert reports["kernel"] == reports["reference"]


class TestFacadeEquivalence:
    def test_facade_routes_all_three_forms(self, hiring, predictions):
        from repro import audit

        config = AuditConfig(tolerance=0.05)
        in_memory = audit(hiring, predictions=predictions, config=config)
        streamed = audit(chunked(hiring, predictions), config=config)
        acc = accumulator_for(hiring)
        acc.ingest_dataset(hiring, predictions)
        counted = audit(acc, config=config)
        assert (
            comparable(in_memory) == comparable(streamed) == comparable(counted)
        )
