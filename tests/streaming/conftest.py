"""Shared fixtures for the streaming equivalence suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.serialize import report_to_dict
from repro.data import make_hiring


@pytest.fixture
def hiring():
    """A biased hiring population with a proxy column to stratify on."""
    return make_hiring(
        900, direct_bias=1.0, proxy_strength=0.5, random_state=21
    )


@pytest.fixture
def predictions(hiring):
    """Noisy model decisions aligned with the hiring rows."""
    rng = np.random.default_rng(4)
    flips = rng.random(hiring.n_rows) < 0.1
    return (hiring.column("hired") ^ flips).astype(int)


def chunked(dataset, predictions=None, size=200):
    """Slice a dataset (and aligned predictions) into stream chunks."""
    chunks = []
    for lo in range(0, dataset.n_rows, size):
        idx = np.arange(lo, min(lo + size, dataset.n_rows))
        part = dataset.take(idx)
        if predictions is None:
            chunks.append(part)
        else:
            chunks.append((part, predictions[lo: lo + size]))
    return chunks


def comparable(report) -> dict:
    """report_to_dict minus provenance (run metadata differs per run)."""
    payload = report_to_dict(report)
    payload.pop("provenance")
    return payload


def comparable_markdown(report) -> str:
    """Markdown with the provenance section neutralised."""
    report.provenance = None
    return report.to_markdown()
