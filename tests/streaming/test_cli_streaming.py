"""CLI surface: audit --chunk-size, merge-state, monitor."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.data.io import save_dataset
from repro.data import make_hiring


@pytest.fixture
def data_csv(tmp_path):
    dataset = make_hiring(600, direct_bias=1.2, random_state=9)
    path = tmp_path / "d.csv"
    save_dataset(dataset, path)
    return str(path)


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestChunkedAudit:
    def test_streamed_report_matches_in_memory(self, data_csv, capsys):
        code_full, full = run_cli(
            capsys, "audit", "--data", data_csv, "--format", "json"
        )
        code_stream, stream = run_cli(
            capsys, "audit", "--data", data_csv, "--format", "json",
            "--chunk-size", "150",
        )
        assert code_full == code_stream == 1
        full_payload = json.loads(full)
        stream_payload = json.loads(stream)
        full_payload.pop("provenance")
        stream_payload.pop("provenance")
        assert full_payload == stream_payload

    def test_checkpoint_and_resume(self, data_csv, tmp_path, capsys):
        ckpt = str(tmp_path / "s.ckpt.json")
        code, _ = run_cli(
            capsys, "audit", "--data", data_csv, "--chunk-size", "200",
            "--checkpoint", ckpt,
        )
        assert code == 1
        code, _ = run_cli(
            capsys, "audit", "--data", data_csv, "--chunk-size", "200",
            "--checkpoint", ckpt, "--resume",
        )
        assert code == 1

    def test_state_out_requires_chunk_size(self, data_csv, tmp_path, capsys):
        code, _ = run_cli(
            capsys, "audit", "--data", data_csv,
            "--state-out", str(tmp_path / "s.json"),
        )
        assert code == 2

    def test_metric_subset_flag(self, data_csv, capsys):
        code, out = run_cli(
            capsys, "audit", "--data", data_csv, "--format", "json",
            "--metric", "demographic_parity",
        )
        payload = json.loads(out)
        metrics = {f["metric"] for f in payload["findings"]}
        assert metrics == {"demographic_parity"}


class TestMergeState:
    def test_shards_merge_to_whole(self, data_csv, tmp_path, capsys):
        shards = []
        for index, lo in enumerate((0, 300)):
            shard = str(tmp_path / f"shard{index}.json")
            shards.append(shard)
            # shard the CSV by auditing disjoint halves via chunk stream
            run_cli(
                capsys, "audit", "--data", data_csv, "--chunk-size", "300",
                "--state-out", shard,
            )
        # identical shards here; the point is the CLI plumbing works
        code, out = run_cli(
            capsys, "merge-state", *shards, "--out",
            str(tmp_path / "merged.json"), "--audit", "--format", "json",
        )
        assert code == 1
        assert "merged 2 shard states" in out
        merged = json.loads((tmp_path / "merged.json").read_text())
        assert merged["payload"]["n_rows"] == 1200

    def test_merge_without_audit_exits_zero(self, data_csv, tmp_path, capsys):
        shard = str(tmp_path / "s.json")
        run_cli(capsys, "audit", "--data", data_csv, "--chunk-size", "600",
                "--state-out", shard)
        code, out = run_cli(capsys, "merge-state", shard)
        assert code == 0
        assert "merged 1 shard states" in out


class TestMonitor:
    def test_monitor_markdown(self, data_csv, capsys):
        code, out = run_cli(
            capsys, "monitor", "--data", data_csv, "--window", "200",
            "--metric", "demographic_parity",
        )
        assert "Fairness monitoring report" in out
        assert code in (0, 1)

    def test_monitor_json_summary(self, data_csv, capsys):
        code, out = run_cli(
            capsys, "monitor", "--data", data_csv, "--window", "200",
            "--format", "json", "--metric", "demographic_parity",
        )
        summary = json.loads(out)
        assert summary["windows"] == 3
        assert summary["rows_seen"] == 600
