"""AuditAccumulator: counting, merging, serialisation, reconstruction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import AuditError, CheckpointError
from repro.streaming import AuditAccumulator, accumulator_for

from tests.streaming.conftest import chunked


def _simple():
    acc = AuditAccumulator(["sex"], label="hired")
    acc.ingest(
        y_true=[1, 0, 1, 1],
        predictions=[1, 0, 0, 1],
        protected={"sex": ["f", "m", "f", "m"]},
    )
    return acc


class TestIngest:
    def test_counts_rows_and_chunks(self):
        acc = _simple()
        assert acc.n_rows == 4
        assert acc.chunks_ingested == 1

    def test_counts_are_exact_cells(self):
        acc = _simple()
        assert acc._cells[("f", 1, 1)] == 1
        assert acc._cells[("f", 1, 0)] == 1
        assert acc._cells[("m", 0, 0)] == 1
        assert acc._cells[("m", 1, 1)] == 1

    def test_numpy_scalars_become_python(self):
        acc = AuditAccumulator(["g"], label="y")
        acc.ingest(
            y_true=np.array([1]), predictions=np.array([0]),
            protected={"g": np.array(["a"])},
        )
        (key,) = acc._cells
        assert all(type(v) in (str, int) for v in key)

    def test_empty_chunk_is_a_noop(self):
        acc = AuditAccumulator(["g"], label="y")
        assert acc.ingest(y_true=[], predictions=[], protected={"g": []}) == 0
        assert acc.n_rows == 0
        assert acc.chunks_ingested == 0

    def test_missing_protected_column_rejected(self):
        acc = AuditAccumulator(["g"], label="y")
        with pytest.raises(AuditError, match="missing protected"):
            acc.ingest(y_true=[1], predictions=[1], protected={"h": ["a"]})

    def test_length_mismatch_rejected(self):
        acc = AuditAccumulator(["g"], label="y")
        with pytest.raises(AuditError, match="share one length"):
            acc.ingest(y_true=[1, 0], predictions=[1], protected={"g": ["a", "b"]})

    def test_data_audit_refuses_predictions(self):
        acc = AuditAccumulator(["g"], label="y", audits_labels=True)
        with pytest.raises(AuditError, match="do not pass predictions"):
            acc.ingest(y_true=[1], predictions=[1], protected={"g": ["a"]})

    def test_strata_required_when_tracked(self):
        acc = AuditAccumulator(["g"], strata="u", label="y")
        with pytest.raises(AuditError, match="strata"):
            acc.ingest(y_true=[1], predictions=[1], protected={"g": ["a"]})


class TestSnapshot:
    def test_restore_rolls_back_to_snapshot(self):
        acc = _simple()
        before = acc.snapshot()
        expected = acc.to_dict()
        acc.ingest(
            y_true=[0], predictions=[1], protected={"sex": ["f"]}
        )
        assert acc.n_rows == 5
        acc.restore(before)
        assert acc.to_dict() == expected

    def test_snapshot_is_isolated_from_later_ingest(self):
        # the snapshot must be a copy — mutating the live accumulator
        # cannot corrupt the rollback point
        acc = _simple()
        before = acc.snapshot()
        acc.ingest(
            y_true=[0, 0], predictions=[1, 1], protected={"sex": ["m", "m"]}
        )
        cells, n_rows, chunks = before
        assert n_rows == 4 and chunks == 1
        assert ("m", 0, 1) not in cells


class TestMerge:
    def test_merge_adds_counts(self):
        a, b = _simple(), _simple()
        a.merge(b)
        assert a.n_rows == 8
        assert a._cells[("f", 1, 1)] == 2

    def test_merge_order_independent(self):
        x, y = _simple(), _simple()
        y.ingest(y_true=[0], predictions=[1], protected={"sex": ["f"]})
        ab = AuditAccumulator.merge_all([x, y])
        ba = AuditAccumulator.merge_all([y, x])
        assert ab.to_dict() == ba.to_dict()

    def test_merge_rejects_layout_mismatch(self):
        a = _simple()
        b = AuditAccumulator(["sex"], strata="u", label="hired")
        with pytest.raises(AuditError, match="different layouts"):
            a.merge(b)

    def test_merge_rejects_non_accumulator(self):
        with pytest.raises(AuditError, match="cannot merge"):
            _simple().merge({"cells": {}})

    def test_merge_all_requires_input(self):
        with pytest.raises(AuditError, match="at least one"):
            AuditAccumulator.merge_all([])


class TestSerialisation:
    def test_json_round_trip_is_exact(self):
        acc = _simple()
        clone = AuditAccumulator.from_json(acc.to_json())
        assert clone.to_dict() == acc.to_dict()
        assert clone.layout() == acc.layout()
        assert clone.fingerprint() == acc.fingerprint()

    def test_to_dict_is_deterministic(self):
        a = _simple()
        b = AuditAccumulator(["sex"], label="hired")
        # same rows, different ingestion order
        b.ingest(y_true=[1, 1], predictions=[0, 1],
                 protected={"sex": ["f", "m"]})
        b.ingest(y_true=[1, 0], predictions=[1, 0],
                 protected={"sex": ["f", "m"]})
        assert a.to_dict()["cells"] == b.to_dict()["cells"]
        assert a.to_dict()["n_rows"] == b.to_dict()["n_rows"]

    def test_version_gate(self):
        payload = _simple().to_dict()
        payload["version"] = 99
        with pytest.raises(AuditError, match="version"):
            AuditAccumulator.from_dict(payload)

    def test_save_load_round_trip(self, tmp_path):
        acc = _simple()
        path = tmp_path / "state.json"
        acc.save(path)
        clone = AuditAccumulator.load(path, expected=acc)
        assert clone.to_dict() == acc.to_dict()

    def test_load_refuses_foreign_layout(self, tmp_path):
        path = tmp_path / "state.json"
        _simple().save(path)
        foreign = AuditAccumulator(["sex"], strata="u", label="hired")
        with pytest.raises(CheckpointError):
            AuditAccumulator.load(path, expected=foreign)


class TestMaterialize:
    def test_reconstruction_preserves_all_counts(self, hiring, predictions):
        acc = accumulator_for(hiring)
        for chunk in chunked(hiring, predictions, size=150):
            acc.ingest_dataset(chunk[0], chunk[1])
        dataset, preds = acc.materialize()
        assert dataset.n_rows == hiring.n_rows
        sex = dataset.column("sex")
        for group in ("male", "female"):
            mask = sex == group
            orig = hiring.column("sex") == group
            assert mask.sum() == orig.sum()
            assert preds[mask].sum() == predictions[orig].sum()
            assert dataset.column("hired")[mask].sum() == \
                hiring.column("hired")[orig].sum()

    def test_empty_accumulator_cannot_materialize(self):
        with pytest.raises(AuditError, match="empty"):
            AuditAccumulator(["g"], label="y").materialize()

    def test_data_audit_materializes_no_predictions(self, hiring):
        acc = accumulator_for(hiring, audits_labels=True)
        acc.ingest_dataset(hiring)
        dataset, preds = acc.materialize()
        assert preds is None
        assert dataset.schema.label_name == "hired"


class TestAccumulatorFor:
    def test_takes_schema_protected_order(self, hiring):
        acc = accumulator_for(hiring)
        assert acc.protected == ("sex",)
        assert acc.label == "hired"

    def test_rejects_unknown_strata(self, hiring):
        with pytest.raises(AuditError, match="strata"):
            accumulator_for(hiring, strata="nope")
