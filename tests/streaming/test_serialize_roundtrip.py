"""Symmetric to_dict/from_dict for every report and dossier type."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.audit import AuditFinding, AuditReport, FairnessAudit
from repro.core.config import AuditConfig
from repro.core.criteria import UseCaseProfile
from repro.core.legal import FourFifthsFinding, FourFifthsResult
from repro.core.serialize import (
    report_from_dict,
    report_from_json,
    report_to_dict,
    report_to_json,
)
from repro.workflow import ComplianceDossier, run_compliance_workflow


@pytest.fixture
def report(hiring, predictions):
    return FairnessAudit(
        hiring,
        predictions=predictions,
        config=AuditConfig(tolerance=0.05, strata="university"),
    ).run()


class TestReportRoundTrip:
    def test_to_dict_from_dict_identity(self, report):
        payload = report_to_dict(report)
        assert report_to_dict(report_from_dict(payload)) == payload

    def test_json_round_trip_identity(self, report):
        text = report_to_json(report)
        assert report_to_json(report_from_json(text)) == text

    def test_rebuilt_report_verdicts_match(self, report):
        rebuilt = report_from_dict(report_to_dict(report))
        assert rebuilt.is_clean == report.is_clean
        assert rebuilt.degraded == report.degraded
        assert len(rebuilt.violations()) == len(report.violations())
        assert rebuilt.tolerance == report.tolerance

    def test_rebuilt_findings_are_typed(self, report):
        rebuilt = report_from_dict(report_to_dict(report))
        for finding in rebuilt.findings:
            assert isinstance(finding, AuditFinding)
            if finding.four_fifths is not None:
                assert isinstance(finding.four_fifths, FourFifthsFinding)

    def test_provenance_round_trips(self, report):
        payload = report_to_dict(report)
        rebuilt = report_from_dict(payload)
        assert rebuilt.provenance is not None
        assert rebuilt.provenance.to_dict() == payload["provenance"]

    def test_report_methods_delegate(self, report):
        assert report.to_dict() == report_to_dict(report)
        clone = AuditReport.from_dict(report.to_dict())
        assert clone.to_dict() == report.to_dict()

    def test_finding_methods_delegate(self, report):
        finding = report.findings[0]
        clone = AuditFinding.from_dict(finding.to_dict())
        assert clone.to_dict() == finding.to_dict()


class TestFourFifths:
    def test_alias_is_the_finding_type(self):
        assert FourFifthsResult is FourFifthsFinding

    def test_typed_field_on_findings(self, report):
        typed = [f for f in report.findings if f.four_fifths is not None]
        assert typed, "expected at least one four-fifths annotation"
        for finding in typed:
            assert isinstance(finding.four_fifths, FourFifthsFinding)

    def test_round_trip(self, report):
        finding = next(
            f.four_fifths for f in report.findings
            if f.four_fifths is not None
        )
        payload = finding.to_dict()
        json.dumps(payload)
        clone = FourFifthsFinding.from_dict(payload)
        assert clone.to_dict() == payload


class TestDossierRoundTrip:
    @pytest.fixture
    def dossier(self, hiring):
        profile = UseCaseProfile(
            name="stream-suite", sector="employment", jurisdiction="eu",
            legitimate_factors=("university",),
        )
        return run_compliance_workflow(
            hiring, profile,
            config=AuditConfig(tolerance=0.05, strata="university"),
        )

    def test_to_dict_from_dict_identity(self, dossier):
        payload = dossier.to_dict()
        json.dumps(payload)
        clone = ComplianceDossier.from_dict(payload)
        assert clone.to_dict() == payload

    def test_rebuilt_dossier_verdict_matches(self, dossier):
        clone = ComplianceDossier.from_dict(dossier.to_dict())
        assert clone.verdict == dossier.verdict
        assert clone.degraded == dossier.degraded
        assert len(clone.recommendations) == len(dossier.recommendations)
        assert len(clone.statutes) == len(dossier.statutes)

    def test_provenance_is_typed(self, dossier):
        from repro.observability.provenance import ProvenanceRecord

        assert isinstance(dossier.provenance, ProvenanceRecord)
        clone = ComplianceDossier.from_dict(dossier.to_dict())
        assert isinstance(clone.provenance, ProvenanceRecord)


class TestStreamedReportsSerialise:
    def test_streamed_report_round_trips(self, hiring, predictions):
        from repro.streaming import audit_stream
        from tests.streaming.conftest import chunked

        report = audit_stream(chunked(hiring, predictions), AuditConfig())
        payload = report_to_dict(report)
        assert report_to_dict(report_from_dict(payload)) == payload
