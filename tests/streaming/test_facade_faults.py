"""The ``repro.audit()`` façade under fault injection.

The contract: chaos must not change evidence.  A degraded streamed
audit reports exactly what the degraded in-memory audit reports; a
transient chunk-ingest fault retried under the policy yields a report
identical to the clean run; and a fault that outlives its retry budget
fails closed instead of silently dropping a chunk.
"""

from __future__ import annotations

import pytest

from repro import AuditConfig, audit, make_hiring
from repro.core.serialize import report_to_dict
from repro.exceptions import RetryExhaustedError
from repro.robustness import ExecutionPolicy, FaultInjector


@pytest.fixture
def hiring():
    return make_hiring(600, direct_bias=0.8, random_state=3)


def _chunks(dataset, size=150):
    import numpy as np

    for low in range(0, dataset.n_rows, size):
        yield dataset.take(np.arange(low, min(low + size, dataset.n_rows)))


def _comparable(report) -> dict:
    payload = report_to_dict(report)
    payload.pop("provenance")  # wall-clock timings differ per run
    for degradation in payload["degradations"]:
        degradation.pop("elapsed", None)
        for attempt in degradation.get("attempt_log", []):
            attempt.pop("elapsed", None)
    return payload


class TestDegradedEquivalence:
    def test_streamed_degraded_report_matches_in_memory(self, hiring):
        def faulty_config():
            faults = FaultInjector()
            faults.inject_error(
                "audit:sex:demographic_parity", RuntimeError("backend down"),
                times=None,
            )
            return AuditConfig(faults=faults)

        in_memory = audit(hiring, config=faulty_config())
        streamed = audit(_chunks(hiring), config=faulty_config())
        assert in_memory.degraded and streamed.degraded
        assert _comparable(streamed) == _comparable(in_memory)

    def test_clean_streamed_report_matches_in_memory(self, hiring):
        assert _comparable(audit(_chunks(hiring))) == (
            _comparable(audit(hiring))
        )


class TestChunkIngestFaults:
    def test_transient_ingest_fault_retried_to_identical_report(self, hiring):
        faults = FaultInjector()
        faults.inject_error("streaming.chunk:2", RuntimeError("blip"), times=2)
        config = AuditConfig(
            faults=faults,
            policy=ExecutionPolicy(
                max_retries=3, retryable=(RuntimeError,),
                sleep=lambda s: None,
            ),
        )
        retried = audit(_chunks(hiring), config=config)
        clean = audit(_chunks(hiring))
        assert faults.fired_count("streaming.chunk:2") == 2
        assert _comparable(retried) == _comparable(clean)

    def test_exhausted_ingest_retries_fail_closed(self, hiring):
        faults = FaultInjector()
        faults.inject_error(
            "streaming.chunk:1", RuntimeError("dead source"), times=None
        )
        config = AuditConfig(
            faults=faults,
            policy=ExecutionPolicy(
                max_retries=2, retryable=(RuntimeError,),
                sleep=lambda s: None,
            ),
        )
        with pytest.raises(RetryExhaustedError) as excinfo:
            audit(_chunks(hiring), config=config)
        assert excinfo.value.attempts == 3
        assert excinfo.value.stage == "streaming.chunk:1"

    def test_unretryable_ingest_fault_propagates(self, hiring):
        faults = FaultInjector()
        faults.inject_error("streaming.chunk:0", RuntimeError("hard"), times=1)
        config = AuditConfig(faults=faults)  # no policy: no retries
        with pytest.raises(RuntimeError, match="hard"):
            audit(_chunks(hiring), config=config)

    def test_retry_never_double_counts_rows(self, hiring):
        # the fault fires *before* ingest, so the retried chunk is
        # counted exactly once — total rows must equal the dataset's
        from repro.streaming.stream import ingest_stream

        faults = FaultInjector()
        faults.inject_error("streaming.chunk:1", RuntimeError("blip"), times=1)
        config = AuditConfig(
            faults=faults,
            policy=ExecutionPolicy(
                max_retries=1, retryable=(RuntimeError,),
                sleep=lambda s: None,
            ),
        )
        accumulator = ingest_stream(_chunks(hiring), config)
        assert accumulator.n_rows == hiring.n_rows

    def test_midingest_failure_restores_state_before_retry(
        self, hiring, monkeypatch
    ):
        # regression: an error escaping ingest *after* the cells were
        # mutated must roll the counts back before the retry, or the
        # chunk is double-counted
        from repro.streaming.accumulator import AuditAccumulator
        from repro.streaming.stream import ingest_stream

        real_count = AuditAccumulator._count
        calls = {"n": 0}

        def flaky_count(self, columns, n):
            real_count(self, columns, n)  # counts land first...
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("mid-ingest blip")  # ...then the crash

        monkeypatch.setattr(AuditAccumulator, "_count", flaky_count)
        config = AuditConfig(
            policy=ExecutionPolicy(
                max_retries=1, retryable=(RuntimeError,),
                sleep=lambda s: None,
            ),
        )
        retried = ingest_stream(_chunks(hiring), config)
        monkeypatch.undo()
        clean = ingest_stream(_chunks(hiring), AuditConfig())
        assert retried.n_rows == hiring.n_rows
        assert retried.to_dict() == clean.to_dict()
