"""Metrics registry tests: counters, timers, percentile snapshots."""

import threading

from repro.observability.metrics import (
    MetricsRegistry,
    get_metrics,
    use_metrics,
)


class TestCounters:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        assert registry.counter("hits").value == 5

    def test_counters_are_named_singletons(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a") is not registry.counter("b")

    def test_concurrent_increments_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("contended")

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 4000


class TestHistograms:
    def test_snapshot_percentiles(self):
        registry = MetricsRegistry()
        for value in range(1, 101):  # 1..100
            registry.observe("latency", float(value))
        snap = registry.histogram("latency").snapshot()
        assert snap["count"] == 100
        assert snap["max"] == 100.0
        assert abs(snap["p50"] - 50.5) < 1e-9
        assert 95.0 <= snap["p95"] <= 96.0
        assert abs(snap["mean"] - 50.5) < 1e-9

    def test_empty_histogram_snapshot_is_zeroed(self):
        snap = MetricsRegistry().histogram("nothing").snapshot()
        assert snap["count"] == 0
        assert snap["total"] == 0.0
        assert snap["mean"] == 0.0
        assert snap["p50"] == 0.0
        assert snap["p95"] == 0.0
        assert snap["max"] == 0.0
        assert all(value == 0 for value in snap["buckets"].values())

    def test_single_sample(self):
        registry = MetricsRegistry()
        registry.observe("one", 2.5)
        snap = registry.histogram("one").snapshot()
        assert snap["p50"] == snap["p95"] == snap["max"] == 2.5

    def test_timer_feeds_histogram(self):
        registry = MetricsRegistry()
        with registry.timer("block"):
            pass
        snap = registry.histogram("block").snapshot()
        assert snap["count"] == 1
        assert snap["max"] >= 0.0

    def test_timer_records_even_when_block_raises(self):
        registry = MetricsRegistry()
        try:
            with registry.timer("raising"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert registry.histogram("raising").count == 1


class TestRegistry:
    def test_snapshot_shape_is_json_able(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.observe("h", 1.0)
        text = json.dumps(registry.snapshot())
        assert '"counters"' in text and '"histograms"' in text

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.observe("h", 1.0)
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "histograms": {}}

    def test_use_metrics_scopes_the_global_registry(self):
        before = get_metrics()
        with use_metrics() as registry:
            assert get_metrics() is registry
            get_metrics().counter("scoped").inc()
            assert registry.counter("scoped").value == 1
        assert get_metrics() is before
