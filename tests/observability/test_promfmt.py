"""Prometheus text exposition: rendering and the strict checker."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.observability import (
    MetricsRegistry,
    PROM_CONTENT_TYPE,
    parse_prometheus,
    render_prometheus,
)


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    registry.counter("service.jobs_submitted").inc(3)
    registry.counter("subgroups.chunks_scored", backend="kernel").inc(2)
    registry.gauge("service.queue_depth").set(5)
    for value in (0.003, 0.02, 0.3, 1.7):
        registry.observe("stage.elapsed", value)
    return registry


class TestRender:
    def test_content_type_is_prometheus_text(self):
        assert PROM_CONTENT_TYPE.startswith("text/plain")
        assert "version=0.0.4" in PROM_CONTENT_TYPE

    def test_names_are_sanitised_and_namespaced(self, registry):
        text = render_prometheus(registry)
        assert "repro_service_jobs_submitted_total 3" in text
        assert "repro_service_queue_depth 5" in text
        # dots become underscores in metric names; the original dotted
        # name survives only in HELP comments
        samples = [line for line in text.splitlines()
                   if line and not line.startswith("#")]
        assert all("service.jobs" not in line for line in samples)

    def test_counter_labels_render(self, registry):
        text = render_prometheus(registry)
        assert (
            'repro_subgroups_chunks_scored_total{backend="kernel"} 2'
            in text
        )

    def test_histogram_is_cumulative_with_inf(self, registry):
        text = render_prometheus(registry)
        assert 'repro_stage_elapsed_bucket{le="+Inf"} 4' in text
        assert "repro_stage_elapsed_count 4" in text
        assert "repro_stage_elapsed_sum" in text

    def test_help_and_type_lines_present(self, registry):
        text = render_prometheus(registry)
        assert "# TYPE repro_service_jobs_submitted_total counter" in text
        assert "# TYPE repro_stage_elapsed histogram" in text
        assert text.endswith("\n")

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("odd", path='a"b\\c\nd').inc()
        text = render_prometheus(registry)
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        parse_prometheus(text)


class TestRoundtrip:
    def test_rendered_output_passes_the_strict_checker(self, registry):
        families = parse_prometheus(render_prometheus(registry))
        assert "repro_service_jobs_submitted_total" in families
        assert families["repro_service_jobs_submitted_total"]["type"] == (
            "counter"
        )
        histogram = families["repro_stage_elapsed"]
        assert histogram["type"] == "histogram"

    def test_empty_registry_renders_valid_empty_exposition(self):
        assert parse_prometheus(render_prometheus(MetricsRegistry())) == {}


class TestStrictChecker:
    def test_sample_without_type_rejected(self):
        with pytest.raises(ValidationError):
            parse_prometheus("repro_x_total 1\n")

    def test_duplicate_type_rejected(self):
        text = (
            "# TYPE repro_x_total counter\nrepro_x_total 1\n"
            "# TYPE repro_x_total counter\nrepro_x_total 2\n"
        )
        with pytest.raises(ValidationError):
            parse_prometheus(text)

    def test_counter_must_end_in_total(self):
        with pytest.raises(ValidationError):
            parse_prometheus("# TYPE repro_x counter\nrepro_x 1\n")

    def test_non_cumulative_buckets_rejected(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.1"} 5\n'
            'repro_h_bucket{le="1"} 3\n'
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_sum 1\n"
            "repro_h_count 5\n"
        )
        with pytest.raises(ValidationError):
            parse_prometheus(text)

    def test_inf_bucket_must_equal_count(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_sum 1\n"
            "repro_h_count 6\n"
        )
        with pytest.raises(ValidationError):
            parse_prometheus(text)

    def test_missing_inf_bucket_rejected(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            "repro_h_sum 1\n"
            "repro_h_count 5\n"
        )
        with pytest.raises(ValidationError):
            parse_prometheus(text)

    def test_bucket_without_le_rejected(self):
        text = (
            "# TYPE repro_h histogram\n"
            "repro_h_bucket 5\n"
            "repro_h_sum 1\n"
            "repro_h_count 5\n"
        )
        with pytest.raises(ValidationError):
            parse_prometheus(text)

    def test_malformed_label_grammar_rejected(self):
        with pytest.raises(ValidationError):
            parse_prometheus(
                "# TYPE repro_x_total counter\n"
                "repro_x_total{oops} 1\n"
            )

    def test_histograms_validated_per_label_group(self):
        # two label groups, each internally consistent → accepted
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{kind="a",le="1"} 2\n'
            'repro_h_bucket{kind="a",le="+Inf"} 2\n'
            'repro_h_sum{kind="a"} 0.5\n'
            'repro_h_count{kind="a"} 2\n'
            'repro_h_bucket{kind="b",le="1"} 1\n'
            'repro_h_bucket{kind="b",le="+Inf"} 3\n'
            'repro_h_sum{kind="b"} 4.0\n'
            'repro_h_count{kind="b"} 3\n'
        )
        families = parse_prometheus(text)
        assert families["repro_h"]["type"] == "histogram"
