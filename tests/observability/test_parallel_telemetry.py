"""Pool-worker telemetry: spill files, delta merges, crash tolerance."""

from __future__ import annotations

import json
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.data import make_intersectional
from repro.exceptions import ValidationError
from repro.kernel import read_spills, score_chunk, score_chunk_telemetry
from repro.observability import (
    MetricsRegistry,
    TraceContext,
    Tracer,
    read_trace,
    use_metrics,
)
from repro.observability.metrics import RESERVOIR_SIZE
from repro.subgroup.auditor import audit_subgroups


class TestSpillFiles:
    def test_worker_writes_spans_and_delta(self, tmp_path):
        context = TraceContext.generate()
        result = score_chunk_telemetry(
            [(5, 20), (9, 30)], 50, 100,
            {"dir": str(tmp_path), "lo": 0, "hi": 2,
             "context": context.to_dict(), "run_id": "r1"},
        )
        assert result == score_chunk([(5, 20), (9, 30)], 50, 100)
        spills = read_spills(tmp_path)
        assert len(spills) == 1
        spans = spills[0]["spans"]
        assert any(
            s.get("name") == "subgroups.score_chunk" for s in spans
        )
        # the chunk span continues the parent's trace
        chunk = next(
            s for s in spans if s.get("name") == "subgroups.score_chunk"
        )
        assert chunk["trace_id"] == context.trace_id
        assert chunk["parent_span_id"] == context.span_id
        assert len(spills[0]["deltas"]) == 1

    def test_tracing_off_still_spills_metrics(self, tmp_path):
        score_chunk_telemetry(
            [(1, 10)], 5, 50,
            {"dir": str(tmp_path), "lo": 0, "hi": 1, "context": None},
        )
        spills = read_spills(tmp_path)
        assert len(spills) == 1
        assert spills[0]["spans"] == []
        assert spills[0]["created"] is not None
        registry = MetricsRegistry()
        registry.merge_delta(spills[0]["deltas"][0])
        snapshot = registry.snapshot()
        assert snapshot["counters"]["subgroups.chunks_scored"] == 1
        assert snapshot["counters"]["subgroups.entries_scored"] == 1

    def test_torn_spill_from_killed_worker_is_skipped(self, tmp_path):
        score_chunk_telemetry(
            [(1, 10)], 5, 50,
            {"dir": str(tmp_path), "lo": 0, "hi": 1, "context": None},
        )
        # a worker killed mid-write leaves a torn file; one killed
        # before writing leaves an empty one
        (tmp_path / "chunk-1-2.jsonl").write_text(
            '{"kind": "spill_meta", "created": 1.0, "proc'
        )
        (tmp_path / "chunk-2-3.jsonl").write_text("")
        spills = read_spills(tmp_path)
        assert len(spills) == 1

    def test_torn_delta_line_cannot_corrupt_parent(self, tmp_path):
        path = tmp_path / "chunk-0-1.jsonl"
        delta_line = json.dumps({
            "kind": "metrics_delta",
            "delta": {"counters": [
                ["subgroups.chunks_scored", {}, 1],
            ]},
        })
        path.write_text(
            json.dumps(
                {"kind": "spill_meta", "created": 1.0, "process_id": 1}
            ) + "\n" + delta_line[: len(delta_line) // 2]
        )
        spills = read_spills(tmp_path)
        registry = MetricsRegistry()
        registry.counter("subgroups.chunks_scored").inc(7)
        for spill in spills:
            for delta in spill["deltas"]:
                registry.merge_delta(delta)
        assert (
            registry.counter("subgroups.chunks_scored").value == 7
        )

    def test_missing_dir_reads_as_no_spills(self, tmp_path):
        assert read_spills(tmp_path / "never-created") == []


class TestDeltaValidation:
    def test_malformed_delta_rejected_whole(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        with pytest.raises(ValidationError):
            registry.merge_delta({
                "counters": [
                    ["a", {}, 2],
                    ["b", {}],  # no value
                ],
            })
        # all-or-nothing: the valid first entry must not have applied
        assert registry.counter("a").value == 3

    def test_histogram_bounds_mismatch_rejected_before_any_apply(self):
        parent = MetricsRegistry()
        parent.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        parent.counter("c").inc(1)

        child = MetricsRegistry()
        child.counter("c").inc(5)
        child.histogram("h", buckets=(5.0, 10.0)).observe(7.0)
        with pytest.raises(ValidationError):
            parent.merge_delta(child.delta())
        assert parent.counter("c").value == 1

    def test_valid_delta_roundtrips_through_json(self):
        child = MetricsRegistry()
        child.counter("jobs", kind="audit").inc(2)
        child.gauge("depth").set(4)
        for value in (0.01, 0.2, 1.5):
            child.observe("latency", value)
        parent = MetricsRegistry()
        parent.counter("jobs", kind="audit").inc(1)
        parent.merge_delta(json.loads(json.dumps(child.delta())))
        snapshot = parent.snapshot()
        assert snapshot["counters"]['jobs{kind="audit"}'] == 3
        assert snapshot["histograms"]["latency"]["count"] == 3


class TestConcurrentRegistry:
    def test_label_map_access_is_thread_safe(self):
        registry = MetricsRegistry()
        errors = []

        def pump(worker):
            try:
                for index in range(300):
                    registry.counter(
                        "scan.chunks", worker=str(worker % 4)
                    ).inc()
                    registry.observe(
                        "scan.latency", index / 1000.0,
                        worker=str(worker % 4),
                    )
                    registry.gauge("scan.active").set(worker)
            except Exception as exc:  # noqa: BLE001 — collected below
                errors.append(exc)

        threads = [
            threading.Thread(target=pump, args=(worker,))
            for worker in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        total = sum(
            registry.counter("scan.chunks", worker=str(w)).value
            for w in range(4)
        )
        assert total == 8 * 300

    def test_concurrent_merge_delta_and_collect(self):
        parent = MetricsRegistry()
        child = MetricsRegistry()
        child.counter("c").inc()
        child.observe("h", 0.1)
        delta = child.delta()
        errors = []

        def merger():
            try:
                for _ in range(100):
                    parent.merge_delta(delta)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def collector():
            try:
                for _ in range(100):
                    parent.collect()
                    parent.snapshot()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=merger) for _ in range(3)]
        threads += [threading.Thread(target=collector) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert parent.counter("c").value == 300


class TestHistogramBounds:
    def test_reservoir_memory_is_bounded(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        for index in range(50_000):
            histogram.observe(index / 50_000.0)
        assert len(histogram._reservoir) <= RESERVOIR_SIZE
        assert histogram.count == 50_000

    def test_percentiles_within_tolerance_at_scale(self):
        rng = np.random.default_rng(11)
        values = rng.exponential(0.1, size=20_000)
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        for value in values:
            histogram.observe(float(value))
        snapshot = histogram.snapshot()
        true_p50 = float(np.percentile(values, 50))
        true_p95 = float(np.percentile(values, 95))
        # sampled percentiles (1024-sample reservoir): 15% relative
        # tolerance is the contract; the seeded RNG keeps this exact
        assert abs(snapshot["p50"] - true_p50) / true_p50 < 0.15
        assert abs(snapshot["p95"] - true_p95) / true_p95 < 0.15
        assert snapshot["count"] == 20_000
        assert snapshot["max"] == pytest.approx(float(values.max()))

    def test_exact_percentiles_below_reservoir_capacity(self):
        histogram = MetricsRegistry().histogram("h")
        for value in range(1, 101):
            histogram.observe(float(value))
        snapshot = histogram.snapshot()
        assert snapshot["p50"] == pytest.approx(50.5, abs=1.0)
        assert snapshot["p95"] == pytest.approx(95.05, abs=1.0)


class TestParallelScanTelemetry:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_intersectional(400, random_state=3)

    def test_parallel_scan_merges_one_trace(self, dataset, tmp_path):
        tracer = Tracer(run_id="scan")
        registry = MetricsRegistry()
        with use_metrics(registry):
            with tracer.span("cli.subgroups"):
                audit_subgroups(
                    dataset.labels(), dataset, jobs=2, tracer=tracer
                )
        out = tmp_path / "trace.jsonl"
        tracer.write(out)
        lines = read_trace(out)
        spans = [l for l in lines if l.get("kind") == "span"]
        trace_ids = {s["trace_id"] for s in spans}
        assert trace_ids == {tracer.trace_id}
        # every parent_span_id resolves within the merged trace
        ids = {s["span_id"] for s in spans}
        for span in spans:
            if span.get("parent_span_id"):
                assert span["parent_span_id"] in ids
        # chunk spans come from other processes
        chunk_spans = [
            s for s in spans if s["name"] == "subgroups.score_chunk"
        ]
        assert chunk_spans
        parent_pid = next(
            l for l in lines if l.get("kind") == "trace_meta"
        )["process_id"]
        assert all(
            s["process_id"] != parent_pid for s in chunk_spans
        )

    def test_parallel_scan_merges_worker_counters(self, dataset):
        registry = MetricsRegistry()
        with use_metrics(registry):
            findings = audit_subgroups(dataset.labels(), dataset, jobs=2)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["subgroups.chunks_scored"] >= 1
        # every scored entry is a non-first-order subgroup
        assert snapshot["counters"]["subgroups.entries_scored"] > 0
        assert "subgroups.chunk_seconds" in snapshot["histograms"]
        assert len(findings) > 0
