"""Tracer unit tests: nesting, timing, events, null path, file format."""

import json
import threading

import pytest

from repro.exceptions import ValidationError
from repro.observability.trace import (
    NULL_TRACER,
    TRACE_VERSION,
    Tracer,
    get_tracer,
    read_trace,
    set_tracer,
    use_tracer,
)


class TestSpans:
    def test_span_records_name_attrs_and_timing(self):
        tracer = Tracer(run_id="t")
        with tracer.span("work", kind="demo"):
            pass
        (span,) = tracer.spans
        assert span.name == "work"
        assert span.attrs == {"kind": "demo"}
        assert span.elapsed >= 0.0
        assert span.status == "ok"
        assert span.parent_id is None

    def test_nested_spans_link_parent_and_child(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        # completion order: inner finishes first
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id

    def test_escaping_exception_marks_error_and_reraises(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("kapow")
        (span,) = tracer.spans
        assert span.status == "error"
        assert "kapow" in span.error

    def test_set_and_event_enrich_the_span(self):
        tracer = Tracer()
        with tracer.span("stage") as span:
            span.set(attempts=3)
            span.event("retry", attempt=1, backoff=0.05)
        (span,) = tracer.spans
        assert span.attrs["attempts"] == 3
        assert span.events[0]["name"] == "retry"
        assert span.events[0]["attrs"]["backoff"] == 0.05

    def test_mark_sets_captured_failure_status(self):
        tracer = Tracer()
        with tracer.span("stage") as span:
            span.mark("timeout", "deadline exceeded")
        (span,) = tracer.spans
        assert span.status == "timeout"
        assert span.error == "deadline exceeded"

    def test_spans_from_worker_threads_are_collected(self):
        tracer = Tracer()

        def work():
            with tracer.span("threaded"):
                pass

        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
        assert [s.name for s in tracer.spans] == ["threaded"]

    def test_tracer_event_outside_spans_records_point_span(self):
        tracer = Tracer()
        tracer.event("standalone", detail=1)
        (span,) = tracer.spans
        assert span.name == "standalone"
        assert span.attrs == {"detail": 1}


class TestNullTracer:
    def test_null_tracer_is_disabled_and_records_nothing(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything", a=1) as span:
            span.set(b=2)
            span.event("e")
            span.mark("error")
        assert NULL_TRACER.spans == []
        assert NULL_TRACER.find("anything") == []

    def test_null_span_is_a_shared_singleton(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


class TestGlobalTracer:
    def test_default_is_null(self):
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_scopes_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_none_restores_null(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(None)
        assert previous is NULL_TRACER
        assert get_tracer() is NULL_TRACER


class TestTraceFile:
    def test_write_then_read_roundtrip(self, tmp_path):
        tracer = Tracer(run_id="rt")
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        path = tmp_path / "trace.jsonl"
        tracer.write(path, extra=[{"kind": "metrics", "counters": {}}])
        lines = read_trace(path)
        assert lines[0]["kind"] == "trace_meta"
        assert lines[0]["version"] == TRACE_VERSION
        assert lines[0]["run_id"] == "rt"
        names = [l["name"] for l in lines if l["kind"] == "span"]
        assert names == ["inner", "outer"]
        assert lines[-1]["kind"] == "metrics"

    def test_every_line_is_parseable_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s", note="with \"quotes\" and ünicode"):
            pass
        path = tmp_path / "trace.jsonl"
        tracer.write(path)
        for raw in path.read_text().splitlines():
            json.loads(raw)

    def test_read_rejects_malformed_line_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "trace_meta", "version": 1}\n{oops\n')
        with pytest.raises(ValidationError, match="line 2"):
            read_trace(path)

    def test_read_rejects_missing_meta(self, tmp_path):
        path = tmp_path / "nometa.jsonl"
        path.write_text('{"kind": "span", "name": "x"}\n')
        with pytest.raises(ValidationError, match="trace_meta"):
            read_trace(path)

    def test_read_rejects_foreign_version(self, tmp_path):
        path = tmp_path / "vers.jsonl"
        path.write_text('{"kind": "trace_meta", "version": 99}\n')
        with pytest.raises(ValidationError, match="version"):
            read_trace(path)
