"""TraceContext: W3C traceparent propagation and head sampling."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import ValidationError
from repro.observability import TraceContext, head_sample, new_span_id, new_trace_id


class TestIds:
    def test_trace_id_is_32_hex(self):
        trace_id = new_trace_id()
        assert len(trace_id) == 32
        int(trace_id, 16)

    def test_span_id_is_16_hex(self):
        span_id = new_span_id()
        assert len(span_id) == 16
        int(span_id, 16)

    def test_ids_are_unique(self):
        assert len({new_trace_id() for _ in range(64)}) == 64


class TestTraceContext:
    def test_generate_makes_a_sampled_root(self):
        context = TraceContext.generate()
        assert context.sampled
        assert len(context.trace_id) == 32
        assert len(context.span_id) == 16

    def test_child_keeps_trace_id_and_changes_span_id(self):
        parent = TraceContext.generate()
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.span_id != parent.span_id
        assert child.sampled == parent.sampled

    def test_invalid_ids_rejected(self):
        with pytest.raises(ValidationError):
            TraceContext(trace_id="xyz", span_id=new_span_id())
        with pytest.raises(ValidationError):
            TraceContext(trace_id=new_trace_id(), span_id="123")

    def test_dict_roundtrip(self):
        context = TraceContext.generate()
        assert TraceContext.from_dict(context.to_dict()) == context

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ValidationError):
            TraceContext.from_dict({"trace_id": "nope"})


class TestTraceparent:
    def test_roundtrip(self):
        context = TraceContext.generate()
        header = context.to_traceparent()
        parsed = TraceContext.from_traceparent(header)
        assert parsed == context

    def test_header_shape(self):
        header = TraceContext.generate().to_traceparent()
        version, trace_id, span_id, flags = header.split("-")
        assert version == "00"
        assert len(trace_id) == 32 and len(span_id) == 16
        assert flags in ("00", "01")

    def test_unsampled_flag(self):
        context = TraceContext(
            trace_id=new_trace_id(), span_id=new_span_id(), sampled=False
        )
        assert context.to_traceparent().endswith("-00")
        assert not TraceContext.from_traceparent(
            context.to_traceparent()
        ).sampled

    @pytest.mark.parametrize("header", [
        None,
        "",
        "not-a-traceparent",
        "00-zz-zz-01",
        # version ff is explicitly invalid in the W3C spec
        "ff-" + "a" * 32 + "-" + "b" * 16 + "-01",
        # all-zero ids mean "no trace"
        "00-" + "0" * 32 + "-" + "b" * 16 + "-01",
        "00-" + "a" * 32 + "-" + "0" * 16 + "-01",
        # truncated ids
        "00-" + "a" * 31 + "-" + "b" * 16 + "-01",
    ])
    def test_malformed_headers_parse_to_none(self, header):
        assert TraceContext.from_traceparent(header) is None

    def test_incoming_header_from_another_vendor(self):
        # longer flag fields and future versions must still parse
        header = "01-" + "a" * 32 + "-" + "b" * 16 + "-01"
        parsed = TraceContext.from_traceparent(header)
        assert parsed is not None and parsed.trace_id == "a" * 32


class TestHeadSampling:
    def test_rate_one_always_samples(self):
        assert all(head_sample(1.0) for _ in range(32))

    def test_rate_zero_never_samples(self):
        assert not any(head_sample(0.0) for _ in range(32))

    def test_fractional_rate_is_probabilistic(self):
        rng = random.Random(7)
        hits = sum(head_sample(0.5, rng=rng) for _ in range(2000))
        assert 850 < hits < 1150
