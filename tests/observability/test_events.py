"""EventBus: ring semantics, cursors, sinks, and the tolerant reader."""

from __future__ import annotations

import json
import threading

from repro.observability import (
    EventBus,
    get_event_bus,
    read_events,
    use_event_bus,
)


class TestPublish:
    def test_events_get_monotonic_seq(self):
        bus = EventBus()
        first = bus.publish("job.failed", job_id="a")
        second = bus.publish("job.failed", job_id="b")
        assert second.seq == first.seq + 1
        assert bus.last_seq == second.seq

    def test_payload_and_kind_captured(self):
        bus = EventBus()
        event = bus.publish("monitor.drift", stream="s1", delta=0.2)
        assert event.kind == "monitor.drift"
        assert event.payload == {"stream": "s1", "delta": 0.2}
        assert event.to_dict()["payload"]["stream"] == "s1"

    def test_ring_evicts_oldest(self):
        bus = EventBus(capacity=4)
        for index in range(10):
            bus.publish("k", index=index)
        events = bus.since(0)
        assert len(events) == 4
        assert [e.payload["index"] for e in events] == [6, 7, 8, 9]
        # seq keeps counting across evictions
        assert bus.last_seq == 10


class TestSince:
    def test_cursor_excludes_already_seen(self):
        bus = EventBus()
        bus.publish("a")
        second = bus.publish("b")
        assert [e.seq for e in bus.since(second.seq - 1)] == [second.seq]
        assert bus.since(second.seq) == []

    def test_kind_filter_exact_and_dotted_prefix(self):
        bus = EventBus()
        bus.publish("job.failed")
        bus.publish("job.rejected")
        bus.publish("jobx.other")
        bus.publish("monitor.drift")
        assert len(bus.since(0, kind="job")) == 2
        assert len(bus.since(0, kind="job.failed")) == 1
        assert len(bus.since(0, kind="monitor.drift")) == 1

    def test_limit_keeps_oldest(self):
        bus = EventBus()
        for index in range(5):
            bus.publish("k", index=index)
        limited = bus.since(0, limit=2)
        assert [e.payload["index"] for e in limited] == [0, 1]


class TestSubscribers:
    def test_subscribers_see_each_event(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.publish("a")
        bus.publish("b")
        assert [e.kind for e in seen] == ["a", "b"]

    def test_subscriber_exception_never_breaks_publish(self):
        bus = EventBus()

        def explode(event):
            raise RuntimeError("alert hook down")

        seen = []
        bus.subscribe(explode)
        bus.subscribe(seen.append)
        event = bus.publish("job.failed")
        assert event.seq == 1
        assert len(seen) == 1

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.unsubscribe(seen.append)
        bus.publish("a")
        assert seen == []

    def test_concurrent_publishers_never_lose_seq(self):
        bus = EventBus(capacity=4096)

        def pump():
            for _ in range(200):
                bus.publish("k")

        threads = [threading.Thread(target=pump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        events = bus.since(0)
        assert bus.last_seq == 800
        assert len({e.seq for e in events}) == len(events)


class TestSink:
    def test_sink_is_json_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = EventBus(sink=path)
        bus.publish("job.failed", job_id="x")
        bus.publish("monitor.drift", delta=0.3)
        bus.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        parsed = json.loads(lines[0])
        assert parsed["kind"] == "job.failed"
        assert parsed["payload"]["job_id"] == "x"

    def test_read_events_roundtrip_with_filters(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = EventBus(sink=path)
        for index in range(5):
            bus.publish("job.failed" if index % 2 else "monitor.drift",
                        index=index)
        bus.close()
        assert len(read_events(path)) == 5
        assert len(read_events(path, since=3)) == 2
        assert all(e["kind"] == "job.failed"
                   for e in read_events(path, kind="job"))

    def test_read_events_skips_torn_tail(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = EventBus(sink=path)
        bus.publish("a")
        bus.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 2, "kind": "b", "pay')  # torn write
        events = read_events(path)
        assert [e["kind"] for e in events] == ["a"]

    def test_close_is_idempotent_and_ring_survives(self, tmp_path):
        bus = EventBus(sink=tmp_path / "e.jsonl")
        bus.publish("a")
        bus.close()
        bus.close()
        assert len(bus.since(0)) == 1


class TestGlobalBus:
    def test_use_event_bus_scopes_and_restores(self):
        default = get_event_bus()
        with use_event_bus() as scoped:
            assert get_event_bus() is scoped
            assert scoped is not default
        assert get_event_bus() is default
