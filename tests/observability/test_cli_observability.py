"""CLI-level observability tests: --trace-out, trace summarize, logging."""

import json

import pytest

import repro.cli as cli
from repro.cli import EXIT_DEGRADED, main
from repro.core.audit import _BATTERY
from repro.data.io import load_dataset
from repro.observability import read_trace
from repro.robustness import FaultInjector


@pytest.fixture
def clean_csv(tmp_path, capsys):
    out = tmp_path / "clean.csv"
    assert main(["generate", "--workload", "hiring", "--n", "2500",
                 "--seed", "47", "--out", str(out)]) == 0
    capsys.readouterr()
    return out


@pytest.fixture
def intersectional_csv(tmp_path, capsys):
    out = tmp_path / "ix.csv"
    assert main(["generate", "--workload", "intersectional", "--n", "1200",
                 "--seed", "5", "--out", str(out)]) == 0
    capsys.readouterr()
    return out


class TestTraceOut:
    def test_audit_trace_covers_every_attribute_metric_stage(
        self, clean_csv, tmp_path, capsys
    ):
        trace_path = tmp_path / "audit.trace.jsonl"
        code = main(["audit", "--data", str(clean_csv),
                     "--tolerance", "0.1", "--trace-out", str(trace_path)])
        assert code == 0
        capsys.readouterr()
        lines = read_trace(trace_path)
        assert lines[0]["kind"] == "trace_meta"
        names = {l["name"] for l in lines if l["kind"] == "span"}
        dataset = load_dataset(str(clean_csv))
        for attribute in dataset.schema.protected_names:
            for metric in _BATTERY:
                assert f"audit:{attribute}:{metric}" in names
            assert f"power:{attribute}" in names
        assert "audit.run" in names

    def test_stage_spans_nest_under_the_run_root(
        self, clean_csv, tmp_path, capsys
    ):
        trace_path = tmp_path / "audit.trace.jsonl"
        main(["audit", "--data", str(clean_csv), "--tolerance", "0.1",
              "--trace-out", str(trace_path)])
        capsys.readouterr()
        spans = [l for l in read_trace(trace_path) if l["kind"] == "span"]
        root = next(s for s in spans if s["name"] == "audit.run")
        stages = [s for s in spans if s["name"].startswith("audit:")]
        assert stages
        assert all(s["parent_span_id"] == root["span_id"] for s in stages)
        assert all(s["trace_id"] == root["trace_id"] for s in stages)

    def test_trace_ends_with_metrics_snapshot(
        self, clean_csv, tmp_path, capsys
    ):
        trace_path = tmp_path / "audit.trace.jsonl"
        main(["audit", "--data", str(clean_csv), "--tolerance", "0.1",
              "--trace-out", str(trace_path)])
        capsys.readouterr()
        lines = read_trace(trace_path)
        assert lines[-1]["kind"] == "metrics"
        stage_spans = [
            l for l in lines
            if l["kind"] == "span" and l["name"].startswith(("audit:", "power:"))
        ]
        assert lines[-1]["counters"]["stages.run"] == len(stage_spans)
        assert lines[-1]["histograms"]["stage.elapsed"]["count"] == len(
            stage_spans
        )

    def test_workflow_trace_has_workflow_root(
        self, clean_csv, tmp_path, capsys
    ):
        trace_path = tmp_path / "wf.trace.jsonl"
        main(["workflow", "--data", str(clean_csv), "--tolerance", "0.1",
              "--trace-out", str(trace_path)])
        capsys.readouterr()
        names = [
            l["name"] for l in read_trace(trace_path) if l["kind"] == "span"
        ]
        assert "workflow.run" in names
        assert "audit.run" in names

    def test_subgroups_trace_records_scan_span(
        self, intersectional_csv, tmp_path, capsys
    ):
        trace_path = tmp_path / "scan.trace.jsonl"
        main(["subgroups", "--data", str(intersectional_csv),
              "--trace-out", str(trace_path)])
        capsys.readouterr()
        spans = [l for l in read_trace(trace_path) if l["kind"] == "span"]
        scan = next(s for s in spans if s["name"] == "subgroups.scan")
        assert scan["attrs"]["evaluated"] == scan["attrs"]["total"]

    def test_degraded_run_still_writes_the_trace(
        self, clean_csv, tmp_path, capsys, monkeypatch
    ):
        real = cli.FairnessAudit

        def with_chaos(dataset, **kwargs):
            injector = FaultInjector()
            injector.inject_error(
                "audit:sex:demographic_parity", RuntimeError("chaos")
            )
            return real(dataset, faults=injector, **kwargs)

        monkeypatch.setattr(cli, "FairnessAudit", with_chaos)
        trace_path = tmp_path / "degraded.trace.jsonl"
        code = main(["audit", "--data", str(clean_csv), "--tolerance", "0.1",
                     "--trace-out", str(trace_path)])
        assert code == EXIT_DEGRADED
        capsys.readouterr()
        spans = [l for l in read_trace(trace_path) if l["kind"] == "span"]
        failed = next(
            s for s in spans if s["name"] == "audit:sex:demographic_parity"
        )
        assert failed["status"] == "error"
        assert failed["attrs"]["error_type"] == "RuntimeError"

    def test_exit_codes_unchanged_by_tracing(
        self, clean_csv, tmp_path, capsys
    ):
        # violation (exit 1) with tracing on: the trace is still written
        trace_path = tmp_path / "tight.trace.jsonl"
        code = main(["audit", "--data", str(clean_csv),
                     "--tolerance", "0.0001", "--trace-out", str(trace_path)])
        assert code == 1
        assert trace_path.exists()
        capsys.readouterr()


class TestTraceSummarize:
    @pytest.fixture
    def trace_file(self, clean_csv, tmp_path, capsys):
        trace_path = tmp_path / "audit.trace.jsonl"
        main(["audit", "--data", str(clean_csv), "--tolerance", "0.1",
              "--trace-out", str(trace_path)])
        capsys.readouterr()
        return trace_path

    def test_summarize_renders_per_stage_table(self, trace_file, capsys):
        assert main(["trace", "summarize", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "stage" in out and "retries" in out
        assert "audit:sex:demographic_parity" in out

    def test_top_truncates_and_says_so(self, trace_file, capsys):
        assert main(["trace", "summarize", str(trace_file), "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "more stage(s)" in out

    def test_group_collapses_prefixes(self, trace_file, capsys):
        assert main(["trace", "summarize", str(trace_file), "--group"]) == 0
        out = capsys.readouterr().out
        assert "audit\n" in out or "audit " in out
        assert "audit:sex:" not in out

    def test_malformed_trace_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["trace", "summarize", str(bad)]) == 2
        assert "error" in capsys.readouterr().err


class TestLoggingFlags:
    def test_errors_keep_the_lowercase_stderr_contract(self, capsys):
        code = main(["audit", "--data", "/nonexistent/nope.csv"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error: " in err

    def test_log_json_emits_parseable_stderr_lines(self, capsys):
        code = main(["--log-json", "audit", "--data", "/nonexistent/nope.csv"])
        assert code == 2
        err_lines = [
            line for line in capsys.readouterr().err.splitlines()
            if line.strip()
        ]
        assert err_lines
        payload = json.loads(err_lines[-1])
        assert payload["level"] == "error"
        assert "nope.csv" in payload["message"]

    def test_verbose_logs_the_trace_destination(
        self, clean_csv, tmp_path, capsys
    ):
        trace_path = tmp_path / "v.trace.jsonl"
        code = main(["-v", "audit", "--data", str(clean_csv),
                     "--tolerance", "0.1", "--trace-out", str(trace_path)])
        assert code == 0
        err = capsys.readouterr().err
        assert f"info: trace written to {trace_path}" in err

    def test_quiet_suppresses_info(self, clean_csv, tmp_path, capsys):
        trace_path = tmp_path / "q.trace.jsonl"
        code = main(["-q", "audit", "--data", str(clean_csv),
                     "--tolerance", "0.1", "--trace-out", str(trace_path)])
        assert code == 0
        assert "trace written" not in capsys.readouterr().err

    def test_reports_never_mix_logs_into_stdout(self, clean_csv, capsys):
        code = main(["-vv", "audit", "--data", str(clean_csv),
                     "--tolerance", "0.1", "--format", "json"])
        assert code == 0
        out = capsys.readouterr().out
        json.loads(out)  # stdout is still pure JSON


class TestByProcessSummary:
    @pytest.fixture
    def parallel_trace(self, intersectional_csv, tmp_path, capsys):
        trace_path = tmp_path / "scan.trace.jsonl"
        main(["subgroups", "--data", str(intersectional_csv),
              "--jobs", "2", "--trace-out", str(trace_path)])
        capsys.readouterr()
        return trace_path

    def test_by_process_labels_each_pid_section(
        self, parallel_trace, capsys
    ):
        assert main(["trace", "summarize", str(parallel_trace),
                     "--by-process"]) == 0
        out = capsys.readouterr().out
        sections = [line for line in out.splitlines()
                    if line.startswith("## pid ")]
        # the scan parent plus at least one pool worker
        assert len(sections) >= 2
        assert "subgroups.score_chunk" in out

    def test_by_process_composes_with_group(self, parallel_trace, capsys):
        assert main(["trace", "summarize", str(parallel_trace),
                     "--by-process", "--group"]) == 0
        assert "## pid " in capsys.readouterr().out

    def test_flat_summary_still_works_on_merged_trace(
        self, parallel_trace, capsys
    ):
        assert main(["trace", "summarize", str(parallel_trace)]) == 0
        out = capsys.readouterr().out
        assert "subgroups.scan" in out


class TestEventsTail:
    @pytest.fixture
    def event_log(self, tmp_path):
        from repro.observability import EventBus

        path = tmp_path / "events.jsonl"
        bus = EventBus(sink=path)
        bus.publish("monitor.drift", stream="s1", delta=0.21)
        bus.publish("job.failed", job_id="abc", error_type="RuntimeError")
        bus.publish("job.rejected", job_kind="audit")
        bus.close()
        return path

    def test_tail_prints_every_event(self, event_log, capsys):
        assert main(["events", "tail", str(event_log)]) == 0
        out = capsys.readouterr().out
        assert "monitor.drift" in out
        assert "job.failed" in out
        assert "job_id=abc" in out

    def test_since_and_kind_filter(self, event_log, capsys):
        assert main(["events", "tail", str(event_log),
                     "--since", "1", "--kind", "job"]) == 0
        out = capsys.readouterr().out
        assert "monitor.drift" not in out
        assert "job.failed" in out and "job.rejected" in out

    def test_json_mode_emits_parseable_lines(self, event_log, capsys):
        assert main(["events", "tail", str(event_log), "--json"]) == 0
        lines = [line for line in capsys.readouterr().out.splitlines()
                 if line.strip()]
        assert len(lines) == 3
        assert json.loads(lines[0])["kind"] == "monitor.drift"

    def test_monitor_events_out_feeds_tail(
        self, tmp_path, capsys
    ):
        data = tmp_path / "drift.csv"
        assert main(["generate", "--workload", "hiring", "--n", "400",
                     "--seed", "3", "--bias", "0.4",
                     "--out", str(data)]) == 0
        events_path = tmp_path / "monitor-events.jsonl"
        main(["monitor", "--data", str(data), "--window", "100",
              "--drift-threshold", "0.01", "--stream-name", "hiring-ab",
              "--events-out", str(events_path)])
        capsys.readouterr()
        assert main(["events", "tail", str(events_path),
                     "--kind", "monitor.drift"]) == 0
        out = capsys.readouterr().out
        assert "stream=hiring-ab" in out


class TestLateGlobalFlags:
    def test_flags_accepted_after_the_subcommand(
        self, clean_csv, tmp_path, capsys
    ):
        trace_path = tmp_path / "late.trace.jsonl"
        code = main(["monitor", "--data", str(clean_csv),
                     "--window", "1000", "-v",
                     "--trace-out", str(trace_path)])
        assert code in (0, 1)
        err = capsys.readouterr().err
        assert f"info: trace written to {trace_path}" in err
        assert trace_path.exists()

    def test_early_flag_survives_subparser(self, clean_csv, capsys):
        code = main(["-q", "monitor", "--data", str(clean_csv),
                     "--window", "1000"])
        assert code in (0, 1)
        assert "info:" not in capsys.readouterr().err
