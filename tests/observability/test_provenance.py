"""Provenance tests: fingerprints, record collection, report rendering."""

import json

import pytest

from repro.core import FairnessAudit
from repro.core.report import render_markdown
from repro.core.serialize import report_to_dict
from repro.data import make_hiring, make_intersectional
from repro.observability import Tracer, use_tracer
from repro.observability.provenance import (
    ProvenanceRecord,
    dataset_fingerprint,
)
from repro.robustness import ExecutionPolicy, FaultInjector


@pytest.fixture(scope="module")
def hiring():
    return make_hiring(n=600, direct_bias=1.2, random_state=11)


class TestFingerprint:
    def test_deterministic(self, hiring):
        assert dataset_fingerprint(hiring) == dataset_fingerprint(hiring)

    def test_same_data_same_fingerprint(self):
        a = make_hiring(n=300, random_state=1)
        b = make_hiring(n=300, random_state=1)
        assert dataset_fingerprint(a) == dataset_fingerprint(b)

    def test_different_data_different_fingerprint(self):
        a = make_hiring(n=300, random_state=1)
        b = make_hiring(n=300, random_state=2)
        assert dataset_fingerprint(a) != dataset_fingerprint(b)

    def test_is_hex_sha256(self, hiring):
        fingerprint = dataset_fingerprint(hiring)
        assert len(fingerprint) == 64
        int(fingerprint, 16)

    def test_cached_on_the_dataset(self, hiring):
        dataset_fingerprint(hiring)
        assert getattr(hiring, "_repro_fingerprint", None) is not None


class TestProvenanceRecord:
    def test_audit_attaches_provenance(self, hiring):
        report = FairnessAudit(hiring, tolerance=0.05).run()
        record = report.provenance
        assert isinstance(record, ProvenanceRecord)
        assert record.dataset_fingerprint == dataset_fingerprint(hiring)
        assert record.n_rows == hiring.n_rows
        # one stage per (attribute, metric) plus the power note
        stage_names = [entry["stage"] for entry in record.stages]
        assert "audit:sex:demographic_parity" in stage_names
        assert record.degraded_stages == 0
        assert record.total_elapsed >= 0.0

    def test_policy_summary_recorded(self, hiring):
        policy = ExecutionPolicy(deadline=30.0, max_retries=2)
        report = FairnessAudit(hiring, policy=policy).run()
        assert report.provenance.policy["deadline"] == 30.0
        assert report.provenance.policy["max_retries"] == 2

    def test_degraded_stage_counted(self, hiring):
        injector = FaultInjector()
        injector.inject_error(
            "audit:sex:demographic_parity", RuntimeError("chaos")
        )
        report = FairnessAudit(hiring, faults=injector).run()
        assert report.provenance.degraded_stages == 1
        entry = next(
            e for e in report.provenance.stages
            if e["stage"] == "audit:sex:demographic_parity"
        )
        assert entry["status"] == "error"
        assert entry["error_type"] == "RuntimeError"
        assert entry["attempt_log"][0]["error_type"] == "RuntimeError"

    def test_trace_run_id_recorded_when_tracing(self, hiring):
        tracer = Tracer(run_id="prov-test")
        with use_tracer(tracer):
            report = FairnessAudit(hiring).run()
        assert report.provenance.trace_run_id == "prov-test"

    def test_no_trace_run_id_without_tracer(self, hiring):
        report = FairnessAudit(hiring).run()
        assert report.provenance.trace_run_id == ""

    def test_to_dict_is_json_able(self, hiring):
        report = FairnessAudit(hiring).run()
        payload = json.dumps(report.provenance.to_dict())
        assert "dataset_fingerprint" in payload

    def test_slowest_orders_by_elapsed(self):
        record = ProvenanceRecord(
            dataset_fingerprint="x", n_rows=1, repro_version="1",
            created_unix=0.0,
            stages=[
                {"stage": "a", "status": "ok", "elapsed": 0.1, "attempts": 1},
                {"stage": "b", "status": "ok", "elapsed": 0.9, "attempts": 1},
                {"stage": "c", "status": "ok", "elapsed": 0.5, "attempts": 1},
            ],
        )
        assert [e["stage"] for e in record.slowest(2)] == ["b", "c"]
        assert record.total_retries == 0


class TestReportRendering:
    def test_markdown_has_provenance_section(self, hiring):
        report = FairnessAudit(hiring).run()
        markdown = render_markdown(report)
        assert "## Provenance (audit trail)" in markdown
        assert report.provenance.dataset_fingerprint in markdown
        assert "supervised" in markdown

    def test_json_report_carries_provenance(self, hiring):
        report = FairnessAudit(hiring).run()
        payload = report_to_dict(report)
        assert (
            payload["provenance"]["dataset_fingerprint"]
            == report.provenance.dataset_fingerprint
        )
        assert payload["provenance"]["totals"]["stages"] == len(
            report.provenance.stages
        )
        json.dumps(payload)

    def test_workflow_dossier_has_provenance_section(self):
        from repro.core.criteria import UseCaseProfile
        from repro.workflow import run_compliance_workflow

        data = make_intersectional(n=500, random_state=3)
        profile = UseCaseProfile(
            name="prov", sector="employment", jurisdiction="eu",
            n_protected_attributes=2,
        )
        dossier = run_compliance_workflow(data, profile, tolerance=0.1)
        assert dossier.provenance is not None
        markdown = dossier.to_markdown()
        assert "## Provenance (audit trail)" in markdown
        assert dossier.provenance.dataset_fingerprint in markdown
