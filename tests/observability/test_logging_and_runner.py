"""Logging configuration and runner retry-history tests."""

import io
import json
import logging

from repro.exceptions import ConvergenceError
from repro.observability import Tracer
from repro.observability.logcfg import (
    HumanFormatter,
    JsonLineFormatter,
    configure_logging,
    verbosity_to_level,
)
from repro.robustness import ExecutionPolicy, StageRunner


class TestLogcfg:
    def test_repro_root_logger_has_null_handler(self):
        import repro  # noqa: F401 — importing installs the handler

        handlers = logging.getLogger("repro").handlers
        assert any(isinstance(h, logging.NullHandler) for h in handlers)

    def test_verbosity_mapping(self):
        assert verbosity_to_level(-1) == logging.ERROR
        assert verbosity_to_level(0) == logging.WARNING
        assert verbosity_to_level(1) == logging.INFO
        assert verbosity_to_level(2) == logging.DEBUG
        assert verbosity_to_level(5) == logging.DEBUG

    def test_human_formatter_lowercases_level(self):
        record = logging.LogRecord(
            "repro.x", logging.ERROR, __file__, 1, "boom %s", ("now",), None
        )
        assert HumanFormatter().format(record) == "error: boom now"

    def test_json_formatter_emits_parseable_line(self):
        record = logging.LogRecord(
            "repro.x", logging.WARNING, __file__, 1, "careful", (), None
        )
        payload = json.loads(JsonLineFormatter().format(record))
        assert payload["level"] == "warning"
        assert payload["logger"] == "repro.x"
        assert payload["message"] == "careful"

    def test_configure_is_idempotent(self):
        stream = io.StringIO()
        configure_logging(verbosity=0, stream=stream)
        configure_logging(verbosity=0, stream=stream)
        try:
            cli_handlers = [
                h for h in logging.getLogger("repro").handlers
                if getattr(h, "_repro_cli_handler", False)
            ]
            assert len(cli_handlers) == 1
            logging.getLogger("repro.test").warning("once")
            assert stream.getvalue().count("once") == 1
        finally:
            logging.getLogger("repro").removeHandler(cli_handlers[0])

    def test_quiet_suppresses_warnings(self):
        stream = io.StringIO()
        handler = configure_logging(verbosity=-1, stream=stream)
        try:
            logging.getLogger("repro.test").warning("hidden")
            logging.getLogger("repro.test").error("shown")
        finally:
            logging.getLogger("repro").removeHandler(handler)
        assert "hidden" not in stream.getvalue()
        assert "error: shown" in stream.getvalue()


class TestRunnerAttemptLog:
    def _flaky(self, failures, exc=ConvergenceError):
        state = {"left": failures}

        def fn():
            if state["left"] > 0:
                state["left"] -= 1
                raise exc("not yet")
            return "done"

        return fn

    def test_attempt_log_records_each_failed_attempt(self):
        policy = ExecutionPolicy(max_retries=2, sleep=lambda s: None)
        runner = StageRunner(policy)
        outcome = runner.run("flaky", self._flaky(2))
        assert outcome.ok and outcome.value == "done"
        assert outcome.attempts == 3
        assert len(outcome.attempt_log) == 2
        first = outcome.attempt_log[0]
        assert first["attempt"] == 1
        assert first["error_type"] == "ConvergenceError"
        assert first["error"] == "not yet"
        assert first["backoff"] == policy.backoff(0)
        assert outcome.attempt_log[1]["backoff"] == policy.backoff(1)

    def test_final_failure_has_no_backoff(self):
        policy = ExecutionPolicy(max_retries=1, sleep=lambda s: None)
        runner = StageRunner(policy)
        outcome = runner.run("hopeless", self._flaky(5))
        assert outcome.status == "error"
        assert outcome.attempts == 2
        assert len(outcome.attempt_log) == 2
        assert outcome.attempt_log[0]["backoff"] is not None
        assert outcome.attempt_log[-1]["backoff"] is None

    def test_clean_stage_has_empty_attempt_log(self):
        outcome = StageRunner().run("clean", lambda: 42)
        assert outcome.attempt_log == []
        assert "attempt_log" not in outcome.to_dict()

    def test_attempt_log_serialised_in_to_dict(self):
        policy = ExecutionPolicy(max_retries=1, sleep=lambda s: None)
        outcome = StageRunner(policy).run("flaky", self._flaky(1))
        payload = outcome.to_dict()
        assert payload["attempt_log"][0]["error_type"] == "ConvergenceError"
        json.dumps(payload)

    def test_runner_emits_retry_events_into_trace(self):
        tracer = Tracer()
        policy = ExecutionPolicy(max_retries=2, sleep=lambda s: None)
        runner = StageRunner(policy, tracer=tracer)
        runner.run("flaky", self._flaky(2))
        (span,) = tracer.find("flaky")
        retries = [e for e in span.events if e["name"] == "retry"]
        assert len(retries) == 2
        assert retries[0]["attrs"]["error_type"] == "ConvergenceError"
        assert span.attrs["attempts"] == 3
        assert span.status == "ok"

    def test_runner_marks_span_for_captured_failure(self):
        tracer = Tracer()
        runner = StageRunner(tracer=tracer)

        def boom():
            raise RuntimeError("kapow")

        outcome = runner.run("boom", boom)
        assert outcome.status == "error"
        (span,) = tracer.find("boom")
        assert span.status == "error"
        assert span.attrs["error_type"] == "RuntimeError"
