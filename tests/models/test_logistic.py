"""Tests for repro.models.logistic."""

import numpy as np
import pytest

from repro.exceptions import ConvergenceError
from repro.models import LogisticRegression, sigmoid


def _make_problem(n=400, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (n, 3))
    logits = 2.0 * X[:, 0] - 1.0 * X[:, 1]
    probs = sigmoid(logits)
    y = (rng.random(n) < probs).astype(int)
    if noise:
        flip = rng.random(n) < noise
        y = np.where(flip, 1 - y, y)
    return X, y


class TestSigmoid:
    def test_range_and_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)
        assert sigmoid(np.array([100.0]))[0] == pytest.approx(1.0)
        assert sigmoid(np.array([-100.0]))[0] == pytest.approx(0.0)

    def test_no_overflow(self):
        values = sigmoid(np.array([-1e9, 1e9]))
        assert np.all(np.isfinite(values))


class TestTraining:
    def test_learns_separable_data(self):
        X, y = _make_problem()
        model = LogisticRegression(max_iter=1500).fit(X, y)
        # labels are sampled from sigmoid probabilities, so Bayes accuracy
        # is well below 1; the fitted model should approach it
        assert model.score(X, y) > 0.72

    def test_recovers_coefficient_signs(self):
        X, y = _make_problem(n=3000)
        model = LogisticRegression(max_iter=2000).fit(X, y)
        assert model.coef_[0] > 0.5
        assert model.coef_[1] < -0.2
        assert abs(model.coef_[2]) < 0.3

    def test_l2_shrinks_weights(self):
        X, y = _make_problem()
        loose = LogisticRegression(l2=0.0, max_iter=1500).fit(X, y)
        tight = LogisticRegression(l2=1.0, max_iter=1500).fit(X, y)
        assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)

    def test_sample_weight_shifts_decision(self):
        # Weighting class-1 points heavily should raise predicted probabilities.
        X, y = _make_problem(n=500, noise=0.2)
        w_up = np.where(y == 1, 10.0, 1.0)
        plain = LogisticRegression(max_iter=1000).fit(X, y)
        upweighted = LogisticRegression(max_iter=1000).fit(X, y, sample_weight=w_up)
        assert upweighted.predict_proba(X).mean() > plain.predict_proba(X).mean()

    def test_convergence_error_when_requested(self):
        X, y = _make_problem()
        model = LogisticRegression(
            max_iter=2, tol=1e-12, raise_on_no_convergence=True
        )
        with pytest.raises(ConvergenceError):
            model.fit(X, y)

    def test_no_error_by_default(self):
        X, y = _make_problem()
        model = LogisticRegression(max_iter=2, tol=1e-12).fit(X, y)
        assert model.is_fitted
        assert model.n_iter_ == 2

    def test_decision_function_matches_proba(self):
        X, y = _make_problem()
        model = LogisticRegression(max_iter=800).fit(X, y)
        np.testing.assert_allclose(
            sigmoid(model.decision_function(X)), model.predict_proba(X)
        )

    def test_threshold_attribute_changes_predictions(self):
        X, y = _make_problem()
        model = LogisticRegression(max_iter=800).fit(X, y)
        model.threshold = 0.9
        strict = model.predict(X).sum()
        model.threshold = 0.1
        lenient = model.predict(X).sum()
        assert lenient > strict
