"""Tests for calibration and preprocessing utilities."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.models import (
    CalibratedClassifier,
    LogisticRegression,
    OneHotEncoder,
    PlattCalibrator,
    Standardizer,
    expected_calibration_error,
    reliability_curve,
    sigmoid,
)


def _scored_labels(n=3000, seed=0, distortion=2.0):
    """Labels generated from true probabilities; scores are distorted."""
    rng = np.random.default_rng(seed)
    logits = rng.normal(0, 1.5, n)
    probs = sigmoid(logits)
    y = (rng.random(n) < probs).astype(int)
    distorted = sigmoid(distortion * logits + 1.0)  # over-confident + shifted
    return y, distorted, probs


class TestReliabilityCurve:
    def test_perfectly_calibrated(self):
        y, __, true_probs = _scored_labels()
        mean_pred, observed, counts = reliability_curve(y, true_probs, n_bins=10)
        assert counts.sum() == len(y)
        np.testing.assert_allclose(mean_pred, observed, atol=0.08)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError, match=r"\[0, 1\]"):
            reliability_curve([0, 1], [0.5, 1.5])

    def test_empty_bins_dropped(self):
        y = [0, 1, 0, 1]
        p = [0.45, 0.55, 0.48, 0.52]
        mean_pred, observed, counts = reliability_curve(y, p, n_bins=10)
        assert len(counts) <= 2


class TestECE:
    def test_zero_for_calibrated(self):
        y, __, true_probs = _scored_labels()
        assert expected_calibration_error(y, true_probs) < 0.03

    def test_large_for_distorted(self):
        y, distorted, __ = _scored_labels()
        assert expected_calibration_error(y, distorted) > 0.08

    def test_constant_half_probability(self):
        y = np.array([1, 0, 1, 0])
        assert expected_calibration_error(y, [0.5] * 4) == pytest.approx(0.0)


class TestPlattCalibrator:
    def test_reduces_ece(self):
        y, distorted, __ = _scored_labels()
        calibrator = PlattCalibrator().fit(distorted, y)
        recalibrated = calibrator.transform(distorted)
        assert expected_calibration_error(y, recalibrated) < (
            expected_calibration_error(y, distorted) / 2
        )

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            PlattCalibrator().transform([0.5])

    def test_single_class_rejected(self):
        with pytest.raises(ValidationError, match="both classes"):
            PlattCalibrator().fit([0.2, 0.8], [1, 1])


class TestCalibratedClassifier:
    def test_wraps_and_improves(self):
        rng = np.random.default_rng(0)
        X = rng.normal(0, 1, (2000, 2))
        y = (rng.random(2000) < sigmoid(3 * X[:, 0])).astype(int)
        base = LogisticRegression(max_iter=50, learning_rate=0.05).fit(X, y)
        wrapped = CalibratedClassifier(base)
        wrapped.fit(X, y)
        probs = wrapped.predict_proba(X)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_requires_fitted_base(self):
        with pytest.raises(NotFittedError):
            CalibratedClassifier(LogisticRegression())


class TestStandardizer:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5, 3, (500, 3))
        Z = Standardizer().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0, atol=1e-10)
        np.testing.assert_allclose(Z.std(axis=0), 1, atol=1e-10)

    def test_constant_column_no_nan(self):
        X = np.hstack([np.ones((50, 1)), np.arange(50).reshape(-1, 1)])
        Z = Standardizer().fit_transform(X)
        assert np.all(np.isfinite(Z))
        np.testing.assert_allclose(Z[:, 0], 0.0)

    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(1)
        X = rng.normal(2, 4, (100, 2))
        scaler = Standardizer().fit(X)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(X)), X
        )

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            Standardizer().transform(np.zeros((2, 2)))

    def test_column_count_checked(self):
        scaler = Standardizer().fit(np.zeros((3, 2)))
        with pytest.raises(ValidationError, match="columns"):
            scaler.transform(np.zeros((3, 5)))


class TestOneHotEncoder:
    def test_roundtrip_categories(self):
        enc = OneHotEncoder()
        out = enc.fit_transform(np.array(["b", "a", "b"]))
        assert enc.categories == ["a", "b"]
        np.testing.assert_array_equal(out, [[0, 1], [1, 0], [0, 1]])

    def test_unknown_raises_by_default(self):
        enc = OneHotEncoder().fit(np.array(["a", "b"]))
        with pytest.raises(ValidationError, match="unknown categories"):
            enc.transform(np.array(["c"]))

    def test_unknown_ignored_when_requested(self):
        enc = OneHotEncoder(ignore_unknown=True).fit(np.array(["a", "b"]))
        out = enc.transform(np.array(["c"]))
        np.testing.assert_array_equal(out, [[0, 0]])

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            OneHotEncoder().transform(np.array(["a"]))
