"""Tests for fairness-aware cross-validation."""

import numpy as np
import pytest

from repro.data import make_hiring
from repro.exceptions import ValidationError
from repro.models import (
    GradientBoosting,
    LogisticRegression,
    cross_validate_fairness,
)


@pytest.fixture(scope="module")
def biased():
    return make_hiring(
        n=2000, direct_bias=2.0, proxy_strength=0.9, random_state=61
    )


class TestCrossValidation:
    def test_fold_count_and_metrics(self, biased):
        result = cross_validate_fairness(
            lambda: LogisticRegression(max_iter=400), biased,
            n_folds=4, random_state=0,
        )
        assert len(result.folds) == 4
        for fold in result.folds:
            assert 0.0 <= fold.accuracy <= 1.0
            assert 0.0 <= fold.dp_gap <= 1.0

    def test_biased_data_shows_gap(self, biased):
        result = cross_validate_fairness(
            lambda: LogisticRegression(max_iter=400), biased,
            n_folds=4, random_state=0,
        )
        assert result.mean_dp_gap() > 0.05
        assert result.mean_accuracy() > 0.6

    def test_clean_data_near_parity(self):
        clean = make_hiring(n=2000, direct_bias=0.0, random_state=61)
        result = cross_validate_fairness(
            lambda: LogisticRegression(max_iter=400), clean,
            n_folds=4, random_state=0,
        )
        assert result.mean_dp_gap() < 0.07

    def test_deterministic_given_seed(self, biased):
        a = cross_validate_fairness(
            lambda: LogisticRegression(max_iter=300), biased,
            n_folds=3, random_state=5,
        )
        b = cross_validate_fairness(
            lambda: LogisticRegression(max_iter=300), biased,
            n_folds=3, random_state=5,
        )
        assert a.mean_accuracy() == b.mean_accuracy()
        assert a.mean_dp_gap() == b.mean_dp_gap()

    def test_works_with_boosting(self, biased):
        result = cross_validate_fairness(
            lambda: GradientBoosting(n_rounds=30), biased,
            n_folds=3, random_state=0,
        )
        assert result.mean_accuracy() > 0.6

    def test_dominates(self, biased):
        good = cross_validate_fairness(
            lambda: LogisticRegression(max_iter=400), biased,
            n_folds=3, random_state=0,
        )
        # a deliberately terrible model: tiny budget, huge l2
        bad = cross_validate_fairness(
            lambda: LogisticRegression(max_iter=2, l2=100.0), biased,
            n_folds=3, random_state=0,
        )
        # the good model is more accurate; dominance additionally needs
        # no-worse gap, which biased data usually violates — so only
        # check the accuracy direction plus the API contract
        assert good.mean_accuracy() > bad.mean_accuracy()
        assert not bad.dominates(good)

    def test_eo_gap_reported_when_computable(self, biased):
        result = cross_validate_fairness(
            lambda: LogisticRegression(max_iter=400), biased,
            n_folds=3, random_state=0,
        )
        assert not np.isnan(result.mean_eo_gap())

    def test_validation(self, biased):
        with pytest.raises(ValidationError):
            cross_validate_fairness(
                lambda: LogisticRegression(), biased, n_folds=1
            )
        unlabeled = biased.drop_column("hired")
        with pytest.raises(ValidationError, match="labels"):
            cross_validate_fairness(
                lambda: LogisticRegression(), unlabeled
            )
