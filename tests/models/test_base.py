"""Tests for repro.models.base."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.models import ConstantClassifier, LogisticRegression


def _linearly_separable(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (n, 2))
    y = (X[:, 0] + X[:, 1] > 0).astype(int)
    return X, y


class TestFitContract:
    def test_predict_before_fit_raises(self):
        model = LogisticRegression()
        with pytest.raises(NotFittedError):
            model.predict(np.zeros((3, 2)))

    def test_fit_returns_self(self):
        X, y = _linearly_separable()
        model = LogisticRegression()
        assert model.fit(X, y) is model
        assert model.is_fitted

    def test_single_class_rejected(self):
        X = np.zeros((10, 2))
        with pytest.raises(ValidationError, match="both classes"):
            LogisticRegression().fit(X, np.zeros(10))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="length mismatch"):
            LogisticRegression().fit(np.zeros((5, 2)), np.array([0, 1]))

    def test_nonbinary_labels_rejected(self):
        with pytest.raises(ValidationError, match="0/1"):
            LogisticRegression().fit(np.zeros((3, 2)), np.array([0, 1, 2]))

    def test_nan_features_rejected(self):
        X = np.array([[np.nan, 0.0], [1.0, 1.0]])
        with pytest.raises(ValidationError, match="NaN"):
            LogisticRegression().fit(X, np.array([0, 1]))

    def test_feature_count_checked_at_predict(self):
        X, y = _linearly_separable()
        model = LogisticRegression().fit(X, y)
        with pytest.raises(ValidationError, match="features"):
            model.predict(np.zeros((3, 5)))

    def test_negative_sample_weight_rejected(self):
        X, y = _linearly_separable()
        with pytest.raises(ValidationError, match="non-negative"):
            LogisticRegression().fit(X, y, sample_weight=-np.ones(len(y)))

    def test_all_zero_sample_weight_rejected(self):
        X, y = _linearly_separable()
        with pytest.raises(ValidationError, match="all zero"):
            LogisticRegression().fit(X, y, sample_weight=np.zeros(len(y)))


class TestDatasetBridge:
    def test_fit_and_predict_dataset(self, biased_hiring):
        model = LogisticRegression(max_iter=300)
        model.fit_dataset(biased_hiring)
        preds = model.predict_dataset(biased_hiring)
        assert preds.shape == (biased_hiring.n_rows,)
        assert set(np.unique(preds)) <= {0, 1}
        probs = model.predict_proba_dataset(biased_hiring)
        assert np.all((probs >= 0) & (probs <= 1))


class TestConstantClassifier:
    def test_constant_probability(self):
        model = ConstantClassifier(probability=0.7)
        model.fit(np.zeros((5, 1)), np.array([0, 1, 0, 1, 0]))
        np.testing.assert_allclose(model.predict_proba(np.zeros((3, 1))), 0.7)
        np.testing.assert_array_equal(model.predict(np.zeros((3, 1))), 1)

    def test_accepts_single_class(self):
        model = ConstantClassifier(0.1)
        model.fit(np.zeros((4, 1)), np.zeros(4))
        assert model.is_fitted

    def test_invalid_probability(self):
        with pytest.raises(ValidationError):
            ConstantClassifier(probability=1.5)

    def test_score(self):
        X, y = _linearly_separable()
        model = ConstantClassifier(0.9).fit(X, y)
        assert model.score(X, y) == pytest.approx(np.mean(y == 1))
