"""Tests for LinearPipeline persistence and the train/predict CLI."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.data import make_hiring
from repro.exceptions import NotFittedError, ValidationError
from repro.models import LinearPipeline


@pytest.fixture(scope="module")
def fitted_pipeline(biased_hiring=None):
    ds = make_hiring(n=1500, direct_bias=1.5, proxy_strength=0.8,
                     random_state=71)
    return ds, LinearPipeline(max_iter=500).fit(ds)


class TestLinearPipeline:
    def test_fit_predict(self, fitted_pipeline):
        ds, pipeline = fitted_pipeline
        preds = pipeline.predict(ds)
        assert set(np.unique(preds)) <= {0, 1}
        assert float((preds == ds.labels()).mean()) > 0.6

    def test_json_roundtrip_exact(self, fitted_pipeline, tmp_path):
        ds, pipeline = fitted_pipeline
        path = tmp_path / "model.json"
        pipeline.save(path)
        loaded = LinearPipeline.load(path)
        np.testing.assert_allclose(
            loaded.predict_proba(ds), pipeline.predict_proba(ds)
        )
        assert loaded.feature_names == pipeline.feature_names

    def test_payload_is_valid_json(self, fitted_pipeline):
        __, pipeline = fitted_pipeline
        payload = json.loads(json.dumps(pipeline.to_dict()))
        assert payload["format"] == "repro.linear_pipeline.v1"

    def test_wrong_format_rejected(self):
        with pytest.raises(ValidationError, match="unsupported model"):
            LinearPipeline.from_dict({"format": "something_else"})

    def test_unfitted_serialisation_rejected(self):
        with pytest.raises(NotFittedError):
            LinearPipeline().to_dict()

    def test_layout_mismatch_rejected(self, fitted_pipeline):
        ds, pipeline = fitted_pipeline
        reduced = ds.drop_column("education")
        with pytest.raises(ValidationError, match="feature layout"):
            pipeline.predict(reduced)

    def test_requires_labels(self):
        ds = make_hiring(n=100, random_state=0).drop_column("hired")
        with pytest.raises(ValidationError, match="labels"):
            LinearPipeline().fit(ds)


class TestTrainPredictCli:
    def test_train_then_predict(self, tmp_path, capsys):
        data_path = tmp_path / "train.csv"
        model_path = tmp_path / "model.json"
        main(["generate", "--workload", "hiring", "--n", "1200",
              "--bias", "2.0", "--proxy", "0.9", "--seed", "6",
              "--out", str(data_path)])
        capsys.readouterr()

        code = main(["train", "--data", str(data_path),
                     "--model-out", str(model_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert model_path.exists()
        assert "training accuracy" in out

        fresh_path = tmp_path / "fresh.csv"
        main(["generate", "--workload", "hiring", "--n", "800",
              "--bias", "0.0", "--proxy", "0.9", "--seed", "7",
              "--out", str(fresh_path)])
        capsys.readouterr()
        code = main(["predict", "--data", str(fresh_path),
                     "--model", str(model_path), "--format", "json"])
        parsed = json.loads(capsys.readouterr().out)
        # the model carries its training bias onto fresh applicants
        assert code == 1
        assert parsed["is_clean"] is False

    def test_predict_missing_model_exits_2(self, tmp_path, capsys):
        data_path = tmp_path / "d.csv"
        main(["generate", "--workload", "hiring", "--n", "100",
              "--seed", "1", "--out", str(data_path)])
        capsys.readouterr()
        code = main(["predict", "--data", str(data_path),
                     "--model", str(tmp_path / "absent.json")])
        assert code == 2
