"""Tests for repro.models.metrics (standard classification metrics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.models import (
    accuracy,
    balanced_accuracy,
    brier_score,
    confusion_matrix,
    f1_score,
    false_positive_rate,
    log_loss,
    precision,
    recall,
    roc_auc,
    roc_curve,
)


class TestConfusionMatrix:
    def test_counts(self):
        cm = confusion_matrix([1, 1, 0, 0, 1], [1, 0, 0, 1, 1])
        assert (cm.tp, cm.fn, cm.tn, cm.fp) == (2, 1, 1, 1)
        assert cm.n == 5

    def test_rates(self):
        cm = confusion_matrix([1, 1, 0, 0], [1, 0, 0, 0])
        assert cm.recall == pytest.approx(0.5)
        assert cm.true_positive_rate == pytest.approx(0.5)
        assert cm.false_positive_rate == pytest.approx(0.0)
        assert cm.positive_rate == pytest.approx(0.25)

    def test_empty_denominators_are_nan(self):
        cm = confusion_matrix([0, 0], [0, 0])
        assert np.isnan(cm.recall)
        assert np.isnan(cm.precision)
        assert cm.accuracy == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            confusion_matrix([1, 0], [1])


class TestScalarMetrics:
    def test_accuracy(self):
        assert accuracy([1, 0, 1, 0], [1, 0, 0, 0]) == pytest.approx(0.75)

    def test_precision_recall_f1(self):
        y_true = [1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 1, 0]
        assert precision(y_true, y_pred) == pytest.approx(2 / 3)
        assert recall(y_true, y_pred) == pytest.approx(2 / 3)
        assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_f1_nan_when_degenerate(self):
        assert np.isnan(f1_score([0, 0], [0, 0]))

    def test_balanced_accuracy(self):
        # perfect on negatives, half on positives
        value = balanced_accuracy([1, 1, 0, 0], [1, 0, 0, 0])
        assert value == pytest.approx(0.75)

    def test_fpr(self):
        assert false_positive_rate([0, 0, 1], [1, 0, 1]) == pytest.approx(0.5)


class TestRoc:
    def test_perfect_classifier_auc_1(self):
        y = [0, 0, 1, 1]
        scores = [0.1, 0.2, 0.8, 0.9]
        assert roc_auc(y, scores) == pytest.approx(1.0)

    def test_random_scores_auc_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 4000)
        scores = rng.random(4000)
        assert roc_auc(y, scores) == pytest.approx(0.5, abs=0.04)

    def test_inverted_scores_auc_0(self):
        y = [0, 0, 1, 1]
        scores = [0.9, 0.8, 0.2, 0.1]
        assert roc_auc(y, scores) == pytest.approx(0.0)

    def test_curve_monotone(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, 300)
        scores = rng.random(300)
        fpr, tpr, thresholds = roc_curve(y, scores)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)
        assert fpr[0] == 0 and tpr[0] == 0
        assert fpr[-1] == pytest.approx(1.0)
        assert tpr[-1] == pytest.approx(1.0)

    def test_single_class_raises(self):
        with pytest.raises(ValidationError, match="both classes"):
            roc_curve([1, 1, 1], [0.1, 0.5, 0.9])


class TestProbabilisticMetrics:
    def test_log_loss_perfect(self):
        assert log_loss([1, 0], [1.0, 0.0]) < 1e-10

    def test_log_loss_uninformative(self):
        assert log_loss([1, 0], [0.5, 0.5]) == pytest.approx(np.log(2))

    def test_brier_bounds(self):
        assert brier_score([1, 0], [1.0, 0.0]) == 0.0
        assert brier_score([1, 0], [0.0, 1.0]) == 1.0


class TestMetricProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 1), st.integers(0, 1)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_confusion_counts_partition_n(self, pairs):
        y_true = [p[0] for p in pairs]
        y_pred = [p[1] for p in pairs]
        cm = confusion_matrix(y_true, y_pred)
        assert cm.tp + cm.fp + cm.tn + cm.fn == len(pairs)
        assert 0.0 <= cm.accuracy <= 1.0

    @given(
        st.lists(st.integers(0, 1), min_size=2, max_size=50),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_auc_invariant_to_monotone_score_transform(self, y, seed):
        if len(set(y)) < 2:
            return
        rng = np.random.default_rng(seed)
        scores = rng.random(len(y))
        before = roc_auc(y, scores)
        after = roc_auc(y, np.exp(3 * scores))  # strictly monotone transform
        assert before == pytest.approx(after, abs=1e-9)
