"""Tests for the tree, forest, kNN, and naive Bayes classifiers."""

import numpy as np
import pytest

from repro.models import (
    DecisionTree,
    GaussianNaiveBayes,
    KNearestNeighbors,
    RandomForest,
)


def _xor_problem(n=400, seed=0):
    """XOR data: linear models fail, trees/forests/kNN should succeed."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, (n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return X, y


def _gaussian_blobs(n=400, seed=0, gap=3.0):
    rng = np.random.default_rng(seed)
    X0 = rng.normal(0, 1, (n // 2, 2))
    X1 = rng.normal(gap, 1, (n - n // 2, 2))
    X = np.vstack([X0, X1])
    y = np.concatenate([np.zeros(n // 2), np.ones(n - n // 2)]).astype(int)
    return X, y


class TestDecisionTree:
    def test_solves_xor(self):
        X, y = _xor_problem()
        tree = DecisionTree(max_depth=4).fit(X, y)
        assert tree.score(X, y) > 0.95

    def test_max_depth_respected(self):
        X, y = _xor_problem()
        tree = DecisionTree(max_depth=2).fit(X, y)
        assert tree.depth <= 2

    def test_min_samples_leaf(self):
        X, y = _xor_problem(n=200)
        tree = DecisionTree(max_depth=10, min_samples_leaf=40).fit(X, y)
        # every leaf must have >= 40 samples => at most 5 leaves
        assert tree.n_leaves <= 5

    def test_pure_node_stops(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTree(max_depth=10).fit(X, y)
        assert tree.score(X, y) == 1.0
        assert tree.depth == 1

    def test_probabilities_are_leaf_rates(self):
        X, y = _gaussian_blobs()
        tree = DecisionTree(max_depth=3).fit(X, y)
        probs = tree.predict_proba(X)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_feature_split_counts(self):
        X, y = _gaussian_blobs()
        tree = DecisionTree(max_depth=3).fit(X, y)
        counts = tree.feature_split_counts()
        assert sum(counts.values()) >= 1
        assert all(k in (0, 1) for k in counts)

    def test_sample_weight_changes_tree(self):
        X, y = _xor_problem(n=300, seed=1)
        w = np.where(X[:, 0] > 0, 10.0, 0.1)
        plain = DecisionTree(max_depth=3).fit(X, y)
        weighted = DecisionTree(max_depth=3).fit(X, y, sample_weight=w)
        assert not np.array_equal(
            plain.predict_proba(X), weighted.predict_proba(X)
        )


class TestRandomForest:
    def test_solves_xor(self):
        X, y = _xor_problem()
        forest = RandomForest(n_trees=15, max_depth=5, random_state=0).fit(X, y)
        assert forest.score(X, y) > 0.9

    def test_probability_averaging(self):
        X, y = _gaussian_blobs()
        forest = RandomForest(n_trees=5, random_state=0).fit(X, y)
        probs = forest.predict_proba(X)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_deterministic_given_seed(self):
        X, y = _xor_problem()
        a = RandomForest(n_trees=5, random_state=42).fit(X, y).predict_proba(X)
        b = RandomForest(n_trees=5, random_state=42).fit(X, y).predict_proba(X)
        np.testing.assert_allclose(a, b)

    def test_n_trees(self):
        X, y = _gaussian_blobs(n=100)
        forest = RandomForest(n_trees=7, random_state=0).fit(X, y)
        assert len(forest.trees_) == 7


class TestKNN:
    def test_separable_blobs(self):
        X, y = _gaussian_blobs()
        knn = KNearestNeighbors(k=5).fit(X, y)
        assert knn.score(X, y) > 0.95

    def test_k_larger_than_data_is_clamped(self):
        X, y = _gaussian_blobs(n=10)
        knn = KNearestNeighbors(k=100).fit(X, y)
        probs = knn.predict_proba(X)
        # all-neighbour vote = global positive rate
        np.testing.assert_allclose(probs, np.mean(y))

    def test_k1_memorises(self):
        X, y = _gaussian_blobs(n=60, seed=3)
        knn = KNearestNeighbors(k=1).fit(X, y)
        assert knn.score(X, y) == 1.0

    def test_weighted_votes(self):
        X = np.array([[0.0], [0.1], [0.2]])
        y = np.array([1, 0, 0])
        w = np.array([100.0, 1.0, 1.0])
        knn = KNearestNeighbors(k=3).fit(X, y, sample_weight=w)
        assert knn.predict(np.array([[0.05]]))[0] == 1


class TestGaussianNaiveBayes:
    def test_separable_blobs(self):
        X, y = _gaussian_blobs()
        nb = GaussianNaiveBayes().fit(X, y)
        assert nb.score(X, y) > 0.95

    def test_learns_means(self):
        X, y = _gaussian_blobs(n=2000, gap=4.0)
        nb = GaussianNaiveBayes().fit(X, y)
        assert np.all(np.abs(nb.theta_[0]) < 0.3)
        assert np.all(np.abs(nb.theta_[1] - 4.0) < 0.3)

    def test_priors_sum_to_one(self):
        X, y = _gaussian_blobs()
        nb = GaussianNaiveBayes().fit(X, y)
        assert nb.class_prior_.sum() == pytest.approx(1.0)

    def test_constant_feature_does_not_crash(self):
        X = np.hstack([_gaussian_blobs()[0], np.ones((400, 1))])
        __, y = _gaussian_blobs()
        nb = GaussianNaiveBayes().fit(X, y)
        probs = nb.predict_proba(X)
        assert np.all(np.isfinite(probs))

    def test_sample_weight_shifts_prior(self):
        X, y = _gaussian_blobs()
        w = np.where(y == 1, 5.0, 1.0)
        nb = GaussianNaiveBayes().fit(X, y, sample_weight=w)
        assert nb.class_prior_[1] > 0.7
