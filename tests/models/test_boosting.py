"""Tests for repro.models.boosting."""

import numpy as np

from repro.models import GradientBoosting, LogisticRegression


def _xor_problem(n=500, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, (n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return X, y


def _linear_problem(n=600, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (n, 3))
    y = (X[:, 0] - X[:, 1] > 0).astype(int)
    return X, y


class TestGradientBoosting:
    def test_solves_xor_where_linear_fails(self):
        X, y = _xor_problem()
        linear = LogisticRegression(max_iter=800).fit(X, y)
        boosted = GradientBoosting(n_rounds=150, learning_rate=0.4).fit(X, y)
        assert linear.score(X, y) < 0.65
        assert boosted.score(X, y) > 0.9

    def test_linear_problem(self):
        X, y = _linear_problem()
        model = GradientBoosting(n_rounds=80).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_probabilities_bounded(self):
        X, y = _linear_problem()
        model = GradientBoosting(n_rounds=40).fit(X, y)
        probs = model.predict_proba(X)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_more_rounds_fit_better(self):
        X, y = _xor_problem(seed=3)
        few = GradientBoosting(n_rounds=5).fit(X, y)
        many = GradientBoosting(n_rounds=120).fit(X, y)
        assert many.score(X, y) > few.score(X, y)

    def test_staged_scores_shape_and_final(self):
        X, y = _linear_problem()
        model = GradientBoosting(n_rounds=30).fit(X, y)
        stages = model.staged_scores(X)
        assert stages.shape == (30, len(X))
        np.testing.assert_allclose(stages[-1], model.predict_proba(X))

    def test_sample_weight_shifts_base_rate(self):
        X, y = _linear_problem()
        heavy = np.where(y == 1, 10.0, 1.0)
        model = GradientBoosting(n_rounds=1).fit(X, y, sample_weight=heavy)
        assert model.base_score_ > 0  # weighted positive rate above half

    def test_constant_feature_ok(self):
        rng = np.random.default_rng(0)
        X = np.hstack([rng.normal(0, 1, (200, 1)), np.ones((200, 1))])
        y = (X[:, 0] > 0).astype(int)
        model = GradientBoosting(n_rounds=20).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_works_with_audit_layer(self, biased_hiring):
        from repro.core import FairnessAudit
        from repro.models import Standardizer

        X = Standardizer().fit_transform(biased_hiring.feature_matrix())
        model = GradientBoosting(n_rounds=60).fit(X, biased_hiring.labels())
        preds = model.predict(X)
        report = FairnessAudit(
            biased_hiring, predictions=preds, tolerance=0.05
        ).run()
        dp = report.finding("sex", "demographic_parity")
        assert dp.status == "ok"
        # the boosted model inherits the label bias just like the others
        assert dp.result.disadvantaged_group() == "female"
