"""End-to-end integration tests spanning multiple subsystems."""

import numpy as np
import pytest

from repro import (
    FairnessAudit,
    UseCaseProfile,
    make_credit,
    make_hiring,
    recommend_metrics,
)
from repro.core import demographic_parity, equal_opportunity
from repro.mitigation import (
    FairLogisticRegression,
    GroupThresholds,
    reweighing,
)
from repro.models import LogisticRegression, Standardizer, accuracy
from repro.proxy import ProxyDetector


class TestHiringPipeline:
    """Generate biased data → train → audit → mitigate → re-audit."""

    @pytest.fixture(scope="class")
    def splits(self):
        ds = make_hiring(
            n=4000, direct_bias=2.0, proxy_strength=0.9, random_state=21
        )
        return ds.split(test_fraction=0.3, random_state=21, stratify_by="sex")

    def test_full_mitigation_pipeline(self, splits):
        train, test = splits
        scaler = Standardizer()
        X_train = scaler.fit_transform(train.feature_matrix())
        X_test = scaler.transform(test.feature_matrix())

        # 1. baseline model inherits the label bias through the proxy
        baseline = LogisticRegression(max_iter=800).fit(X_train, train.labels())
        base_preds = baseline.predict(X_test)
        base_gap = demographic_parity(base_preds, test.column("sex")).gap
        assert base_gap > 0.08

        # 2. audit flags it
        report = FairnessAudit(
            test, predictions=base_preds, tolerance=0.05
        ).run()
        assert not report.is_clean

        # 3. reweighing shrinks the gap at bounded accuracy cost
        weights = reweighing(train, "sex")
        reweighed = LogisticRegression(max_iter=800).fit(
            X_train, train.labels(), sample_weight=weights
        )
        rw_preds = reweighed.predict(X_test)
        rw_gap = demographic_parity(rw_preds, test.column("sex")).gap
        assert rw_gap < base_gap
        assert accuracy(test.labels(), rw_preds) > (
            accuracy(test.labels(), base_preds) - 0.1
        )

        # 4. post-processing achieves near-exact parity
        probs = baseline.predict_proba(X_test)
        post = GroupThresholds("demographic_parity").fit(
            baseline.predict_proba(X_train), train.column("sex")
        )
        post_preds = post.predict(probs, test.column("sex"))
        post_gap = demographic_parity(post_preds, test.column("sex")).gap
        assert post_gap < 0.05

    def test_proxy_scan_matches_audit_story(self, splits):
        train, __ = splits
        report = ProxyDetector(random_state=0).scan(train, "sex")
        assert report.ranked()[0].feature == "university"
        assert report.attribute_is_reconstructible


class TestCreditPipeline:
    def test_structural_income_gap_creates_disparate_impact(self):
        ds = make_credit(
            n=5000, income_gap=1.2, redlining_strength=0.8, random_state=5
        )
        report = FairnessAudit(ds, tolerance=0.05).run()
        di = report.finding("race", "disparate_impact_ratio")
        assert not di.four_fifths.passes
        assert di.four_fifths.disadvantaged_group == "minority"

    def test_fair_inprocessing_on_credit(self):
        ds = make_credit(
            n=4000, income_gap=1.0, redlining_strength=0.8, random_state=6
        )
        train, test = ds.split(test_fraction=0.3, random_state=6)
        scaler = Standardizer()
        X_train = scaler.fit_transform(train.feature_matrix())
        X_test = scaler.transform(test.feature_matrix())

        plain = LogisticRegression(max_iter=800).fit(X_train, train.labels())
        fair = FairLogisticRegression(fairness_weight=30.0, max_iter=800)
        fair.fit(X_train, train.labels(), groups=train.column("race"))

        gap_plain = demographic_parity(
            plain.predict(X_test), test.column("race")
        ).gap
        gap_fair = demographic_parity(
            fair.predict(X_test), test.column("race")
        ).gap
        assert gap_fair < gap_plain


class TestCriteriaToAuditFlow:
    def test_recommended_metric_is_computable(self):
        """The criteria engine's top pick can be executed by the audit."""
        profile = UseCaseProfile(
            name="graduate hiring",
            sector="employment",
            jurisdiction="us",
            structural_bias_recognized=True,
            affirmative_action_mandated=True,
            ground_truth_reliable=False,
        )
        recs = recommend_metrics(profile)
        top = [r for r in recs if r.feasible][0]
        assert top.equality_concept == "equal_outcome"

        ds = make_hiring(n=1500, direct_bias=1.5, random_state=1)
        report = FairnessAudit(ds, tolerance=0.05).run()
        finding = report.finding("sex", top.metric)
        assert finding.status == "ok"

    def test_unaware_model_story_end_to_end(self):
        """IV.B narrative: the paper's central warning, fully executable."""
        ds = make_hiring(
            n=4000, direct_bias=2.5, proxy_strength=0.95, random_state=2
        )
        train, test = ds.split(test_fraction=0.3, random_state=2)
        scaler = Standardizer()
        # the model never sees `sex` (it is protected, not a feature)...
        model = LogisticRegression(max_iter=800).fit(
            scaler.fit_transform(train.feature_matrix()), train.labels()
        )
        preds = model.predict(scaler.transform(test.feature_matrix()))
        # ...yet the outcome gap persists via the university proxy
        gap = demographic_parity(preds, test.column("sex")).gap
        assert gap > 0.08


class TestLabelsVsPredictionsAudit:
    def test_error_rate_metrics_on_truly_qualified(self):
        # ground truth = qualification threshold (metadata), predictions =
        # model trained on biased labels: equal opportunity must fail
        ds = make_hiring(
            n=4000, direct_bias=2.5, proxy_strength=0.9, random_state=3
        )
        qualified = (
            ds.column("qualification") > np.median(ds.column("qualification"))
        ).astype(int)
        scaler = Standardizer()
        model = LogisticRegression(max_iter=800).fit(
            scaler.fit_transform(ds.feature_matrix()), ds.labels()
        )
        preds = model.predict(scaler.transform(ds.feature_matrix()))
        result = equal_opportunity(qualified, preds, ds.column("sex"))
        assert not result.satisfied
        assert result.disadvantaged_group() == "female"
