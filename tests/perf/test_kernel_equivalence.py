"""Equivalence suite: kernel path ≡ reference path, bit for bit.

The kernel (ISSUE 3) must be a pure performance change: every Section
III metric — values, p-values, group ordering, skip/raise semantics —
must be *identical* under the ``"kernel"`` and ``"reference"`` backends.
These are property-style checks over randomized datasets, not golden
files: the reference loop is executed alongside the kernel on the same
inputs and the full result structures are compared with ``==``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FairnessAudit
from repro.core.audit import intersection_column
from repro.core.metrics import (
    calibration_within_groups,
    conditional_demographic_disparity,
    conditional_statistical_parity,
    demographic_disparity,
    demographic_parity,
    disparate_impact_ratio,
    equal_opportunity,
    equalized_odds,
    false_positive_rate_parity,
    overall_accuracy_equality,
    predictive_parity,
    treatment_equality,
)
from repro.data import make_hiring, make_intersectional
from repro.exceptions import InsufficientDataError, MetricError
from repro.kernel import use_backend
from repro.observability.metrics import MetricsRegistry, use_metrics


def result_signature(result):
    """Every observable field of a metric result, as a comparable value."""
    if hasattr(result, "strata"):  # ConditionalMetricResult
        return (
            result.metric,
            result.condition,
            tuple((key, result_signature(value)) for key, value in result.strata.items()),
            result.skipped_strata,
            result.tolerance,
            result.equality_concept,
        )
    significance = (
        None
        if result.significance is None
        else (result.significance.statistic, result.significance.p_value)
    )
    return (
        result.metric,
        tuple(
            (gs.group, gs.n, gs.positives, gs.rate) for gs in result.group_stats
        ),
        result.gap,
        result.ratio,
        result.tolerance,
        result.satisfied,
        result.equality_concept,
        repr(result.details),
        significance,
    )


@pytest.fixture(scope="module")
def arrays():
    data = make_hiring(n=4000, direct_bias=1.5, proxy_strength=0.8, random_state=3)
    rng = np.random.default_rng(11)
    labels = data.labels()
    predictions = np.where(
        rng.random(len(labels)) < 0.85, labels, 1 - labels
    ).astype(np.int64)
    return {
        "y_true": labels,
        "predictions": predictions,
        "protected": data.column("sex"),
        "strata": data.column("university"),
        "probabilities": rng.random(len(labels)),
    }


METRIC_CALLS = {
    "demographic_parity": lambda a: demographic_parity(
        a["predictions"], a["protected"], tolerance=0.05, with_significance=True
    ),
    "conditional_statistical_parity": lambda a: conditional_statistical_parity(
        a["predictions"], a["protected"], a["strata"],
        tolerance=0.05, min_stratum_group_size=5,
    ),
    "equal_opportunity": lambda a: equal_opportunity(
        a["y_true"], a["predictions"], a["protected"], with_significance=True
    ),
    "equalized_odds": lambda a: equalized_odds(
        a["y_true"], a["predictions"], a["protected"]
    ),
    "demographic_disparity": lambda a: demographic_disparity(
        a["predictions"], a["protected"]
    ),
    "conditional_demographic_disparity": lambda a: conditional_demographic_disparity(
        a["predictions"], a["protected"], a["strata"], min_stratum_group_size=5
    ),
    "predictive_parity": lambda a: predictive_parity(
        a["y_true"], a["predictions"], a["protected"]
    ),
    "treatment_equality": lambda a: treatment_equality(
        a["y_true"], a["predictions"], a["protected"]
    ),
    "false_positive_rate_parity": lambda a: false_positive_rate_parity(
        a["y_true"], a["predictions"], a["protected"]
    ),
    "overall_accuracy_equality": lambda a: overall_accuracy_equality(
        a["y_true"], a["predictions"], a["protected"]
    ),
    "disparate_impact_ratio": lambda a: disparate_impact_ratio(
        a["predictions"], a["protected"]
    ),
    "calibration_within_groups": lambda a: calibration_within_groups(
        a["y_true"], a["probabilities"], a["protected"]
    ),
}


@pytest.mark.parametrize("metric", sorted(METRIC_CALLS))
def test_every_section_iii_metric_is_backend_identical(metric, arrays):
    call = METRIC_CALLS[metric]
    with use_backend("reference"):
        reference = result_signature(call(arrays))
    with use_backend("kernel"):
        kernel = result_signature(call(arrays))
    assert kernel == reference


def test_numeric_group_values_keep_repr_order():
    # repr-sorting of int groups ([1, 10, 2], not [1, 2, 10]) is part of
    # the public result contract; the code tables must reproduce it.
    rng = np.random.default_rng(0)
    protected = rng.choice([1, 2, 10], size=400)
    predictions = rng.integers(0, 2, size=400)
    with use_backend("reference"):
        reference = demographic_parity(predictions, protected)
    with use_backend("kernel"):
        kernel = demographic_parity(predictions, protected)
    assert [gs.group for gs in kernel.group_stats] == [1, 10, 2]
    assert result_signature(kernel) == result_signature(reference)


@pytest.mark.parametrize("metric", ["equal_opportunity", "equalized_odds"])
def test_insufficient_data_raises_identically(metric, arrays):
    # One group with no actual positives must raise the same error, with
    # the same message and structured group evidence, on both backends.
    y_true = arrays["y_true"].copy()
    y_true[arrays["protected"] == "female"] = 0
    y_true.setflags(write=False)
    call = METRIC_CALLS[metric]
    messages = {}
    for backend in ("reference", "kernel"):
        with use_backend(backend):
            with pytest.raises(InsufficientDataError) as excinfo:
                call({**arrays, "y_true": y_true})
            messages[backend] = (str(excinfo.value), excinfo.value.group)
    assert messages["kernel"] == messages["reference"]


def test_fewer_than_two_groups_raises_identically():
    predictions = np.array([0, 1, 1, 0])
    protected = np.array(["only", "only", "only", "only"])
    messages = {}
    for backend in ("reference", "kernel"):
        with use_backend(backend):
            with pytest.raises(MetricError) as excinfo:
                demographic_parity(predictions, protected)
            messages[backend] = str(excinfo.value)
    assert messages["kernel"] == messages["reference"]


def test_all_strata_skipped_raises_identically(arrays):
    messages = {}
    for backend in ("reference", "kernel"):
        with use_backend(backend):
            with pytest.raises(InsufficientDataError) as excinfo:
                conditional_statistical_parity(
                    arrays["predictions"], arrays["protected"],
                    arrays["strata"], min_stratum_group_size=10_000,
                )
            messages[backend] = str(excinfo.value)
    assert messages["kernel"] == messages["reference"]


def test_full_audit_battery_is_backend_identical():
    data = make_intersectional(n=3000, random_state=7)
    rng = np.random.default_rng(2)
    labels = data.labels()
    predictions = np.where(
        rng.random(len(labels)) < 0.8, labels, 1 - labels
    ).astype(np.int64)

    def battery(backend):
        with use_backend(backend):
            report = FairnessAudit(
                data, predictions=predictions, tolerance=0.05
            ).run()
        return (
            [
                (f.attribute, f.metric, f.status, f.reason,
                 None if f.result is None else result_signature(f.result))
                for f in report.all_findings()
            ],
            {k: repr(v) for k, v in report.power_notes.items()},
        )

    assert battery("kernel") == battery("reference")


def test_intersection_column_is_backend_identical():
    data = make_intersectional(n=500, random_state=1)
    with use_backend("reference"):
        reference = intersection_column(data, ["gender", "race"])
    with use_backend("kernel"):
        kernel = intersection_column(data, ["gender", "race"])
    assert kernel.tolist() == reference.tolist()


def test_kernel_cache_metrics_are_recorded():
    rng = np.random.default_rng(4)
    predictions = rng.integers(0, 2, size=300)
    protected = rng.choice(["a", "b", "c"], size=300)
    registry = MetricsRegistry()
    with use_metrics(registry), use_backend("kernel"):
        demographic_parity(predictions, protected)
        demographic_parity(predictions, protected)
    snapshot = registry.snapshot()
    assert snapshot["counters"].get("kernel.cache_hit", 0) > 0
    assert snapshot["counters"].get("kernel.cache_miss", 0) > 0
    assert snapshot["histograms"]["kernel.contingency"]["count"] > 0
