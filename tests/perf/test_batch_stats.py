"""Batched inference engine: equivalence against the scalar reference.

The batch primitives in :mod:`repro.stats.batch` must reproduce the
scalar reference arithmetic bit-for-bit (or, where a random stream
cannot be aligned, statistically) — and the audit paths routed through
them must leave every user-visible artifact untouched: findings,
Holm/BH adjusted p-values, and checkpoint files byte-identical between
the batched scan, the ``"reference"`` backend, and the scalar loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_intersectional
from repro.kernel import use_backend
from repro.observability import MetricsRegistry, Tracer, use_metrics, use_tracer
from repro.stats import (
    batch_bootstrap_ci,
    batch_min_detectable_gap,
    batch_permutation_test,
    batch_score_counts,
    batch_two_proportion_z,
    batch_wilson_interval,
    bootstrap_ci,
    min_detectable_gap,
    permutation_test,
    two_proportion_z_test,
    wilson_interval,
)
from repro.stats import _reference
from repro.subgroup import adjust_for_multiple_testing, audit_subgroups

from tests.perf.test_parallel_scan import finding_signature

TOL = 1e-12


def _count_grid(rng, size=512):
    """Random count quadruples plus every degenerate corner."""
    n_a = rng.integers(1, 400, size=size)
    n_b = rng.integers(1, 400, size=size)
    s_a = (rng.random(size) * (n_a + 1)).astype(np.int64)
    s_b = (rng.random(size) * (n_b + 1)).astype(np.int64)
    corners = np.array(
        [
            (0, 10, 0, 10),    # zero variance, equal rates
            (10, 10, 10, 10),  # successes == n on both sides
            (0, 10, 10, 10),   # zero variance, unequal rates
            (1, 1, 0, 1),      # n == 1
            (0, 1, 1, 1),
            (3, 7, 0, 5),      # one-sided zero cell
        ],
        dtype=np.int64,
    )
    s_a = np.concatenate([s_a, corners[:, 0]])
    n_a = np.concatenate([n_a, corners[:, 1]])
    s_b = np.concatenate([s_b, corners[:, 2]])
    n_b = np.concatenate([n_b, corners[:, 3]])
    return s_a, n_a, s_b, n_b


class TestPrimitiveEquivalence:
    """Every batch primitive == an elementwise loop over the reference."""

    def test_two_proportion_z_matches_reference_loop(self):
        s_a, n_a, s_b, n_b = _count_grid(np.random.default_rng(11))
        z, p = batch_two_proportion_z(s_a, n_a, s_b, n_b)
        for i in range(len(z)):
            ref_z, ref_p = _reference.two_proportion_z_test(
                int(s_a[i]), int(n_a[i]), int(s_b[i]), int(n_b[i])
            )
            assert abs(z[i] - ref_z) <= TOL, (i, z[i], ref_z)
            assert abs(p[i] - ref_p) <= TOL

    def test_wilson_matches_reference_loop(self):
        s_a, n_a, _, _ = _count_grid(np.random.default_rng(12))
        low, high = batch_wilson_interval(s_a, n_a, confidence=0.9)
        for i in range(len(low)):
            ref_lo, ref_hi = _reference.wilson_interval(
                int(s_a[i]), int(n_a[i]), confidence=0.9
            )
            assert abs(low[i] - ref_lo) <= TOL
            assert abs(high[i] - ref_hi) <= TOL

    def test_min_detectable_gap_matches_reference_loop(self):
        rng = np.random.default_rng(13)
        n_a = rng.integers(2, 5000, size=128)
        n_b = rng.integers(2, 5000, size=128)
        gaps = batch_min_detectable_gap(n_a, n_b, base_rate=0.3)
        for i in range(len(gaps)):
            ref = _reference.min_detectable_gap(
                int(n_a[i]), int(n_b[i]), base_rate=0.3
            )
            assert abs(gaps[i] - ref) <= TOL

    @pytest.mark.parametrize("backend", ["kernel", "reference"])
    def test_scalar_wrappers_agree_across_backends(self, backend):
        s_a, n_a, s_b, n_b = _count_grid(np.random.default_rng(14), size=64)
        with use_backend(backend):
            for i in range(len(s_a)):
                args = int(s_a[i]), int(n_a[i]), int(s_b[i]), int(n_b[i])
                result = two_proportion_z_test(*args)
                ref_z, ref_p = _reference.two_proportion_z_test(*args)
                assert result.statistic == ref_z
                assert result.p_value == ref_p
                lo, hi = wilson_interval(int(s_a[i]), int(n_a[i]))
                ref_lo, ref_hi = _reference.wilson_interval(
                    int(s_a[i]), int(n_a[i])
                )
                assert (lo, hi) == (float(ref_lo), float(ref_hi))

    def test_batch_validation_matches_scalar_messages(self):
        with pytest.raises(Exception, match="non-empty"):
            batch_two_proportion_z([1], [0], [1], [2])
        with pytest.raises(Exception, match="exceed"):
            batch_two_proportion_z([3], [2], [1], [2])
        with pytest.raises(Exception, match=r"lie in \[0, n\]"):
            batch_wilson_interval([-1], [2])


class TestResampling:
    def test_batch_bootstrap_bit_identical_to_reference_loop(self):
        values = np.random.default_rng(21).normal(size=300)
        batched = batch_bootstrap_ci(values, n_resamples=500, random_state=9)
        reference = _reference.bootstrap_ci(
            values, n_resamples=500, random_state=9
        )
        assert batched == reference  # same seed, same stream, exact

    def test_batch_bootstrap_callable_statistic_bit_identical(self):
        values = np.random.default_rng(22).normal(size=200)
        stat = lambda sample: float(np.median(sample))  # noqa: E731
        batched = batch_bootstrap_ci(
            values, statistic=stat, n_resamples=300, random_state=4
        )
        reference = _reference.bootstrap_ci(
            values, statistic=stat, n_resamples=300, random_state=4
        )
        assert batched == reference

    def test_scalar_bootstrap_wrapper_matches_on_both_backends(self):
        values = np.random.default_rng(23).normal(size=150)
        with use_backend("reference"):
            ref = bootstrap_ci(values, random_state=7)
        kern = bootstrap_ci(values, random_state=7)
        assert kern == ref

    def test_permutation_fast_path_equals_callable_fallback(self):
        # Binary data exercises the count-based reduceat fast path; the
        # explicit difference-in-means callable forces the row loop.
        # Same seed -> same permutation matrix -> identical p-values.
        rng = np.random.default_rng(24)
        x = (rng.random(90) < 0.6).astype(float)
        y = (rng.random(110) < 0.35).astype(float)
        fast = batch_permutation_test(x, y, n_permutations=400, random_state=3)
        slow = batch_permutation_test(
            x,
            y,
            statistic=lambda a, b: float(abs(np.mean(a) - np.mean(b))),
            n_permutations=400,
            random_state=3,
        )
        assert fast == slow

    def test_permutation_statistically_equivalent_to_reference(self):
        # The in-place shuffle stream cannot be aligned with the argsort
        # permutation matrix, so equality here is statistical: identical
        # observed statistic, p-values within resampling noise.
        rng = np.random.default_rng(25)
        x = rng.normal(0.0, 1.0, size=120)
        y = rng.normal(0.6, 1.0, size=140)
        batched = batch_permutation_test(
            x, y, n_permutations=2000, random_state=5
        )
        reference = _reference.permutation_test(
            x, y, n_permutations=2000, random_state=5
        )
        assert abs(batched[0] - reference[0]) <= TOL  # observed statistic
        assert abs(batched[1] - reference[1]) < 0.05

    def test_scalar_permutation_wrapper_routes_by_backend(self):
        x = np.array([1.0, 1.0, 0.0, 1.0, 0.0, 1.0] * 10)
        y = np.array([0.0, 0.0, 1.0, 0.0, 0.0, 0.0] * 10)
        with use_backend("reference"):
            ref = permutation_test(x, y, random_state=2)
        ref_raw = _reference.permutation_test(x, y, random_state=2)
        assert (ref.statistic, ref.p_value) == ref_raw
        kern = permutation_test(x, y, random_state=2)
        assert kern.statistic == ref.statistic  # observed stat always equal


class TestScoreCounts:
    def test_batch_score_counts_matches_scalar_loop(self):
        s_a, n_a, _, _ = _count_grid(np.random.default_rng(31), size=256)
        n_total = int(n_a.max()) * 3
        positives_total = n_total // 2
        payloads = batch_score_counts(s_a, n_a, positives_total, n_total)
        for i, payload in enumerate(payloads):
            pos_in, n_in = int(s_a[i]), int(n_a[i])
            n_out = n_total - n_in
            if n_out <= 0:
                assert payload is None
                continue
            result = two_proportion_z_test(
                pos_in, n_in, positives_total - pos_in, n_out
            )
            lo, hi = wilson_interval(pos_in, n_in)
            assert payload["rate"] == pos_in / n_in
            assert payload["p_value"] == result.p_value
            assert (payload["ci_low"], payload["ci_high"]) == (lo, hi)
            assert all(type(v) is float for v in payload.values())

    def test_whole_population_subgroup_is_none(self):
        assert batch_score_counts([5], [10], 5, 10) == [None]
        assert batch_score_counts([], [], 5, 10) == []


class TestAuditArtifactIdentity:
    """Batched vs reference scans: byte-identical user-visible output."""

    @pytest.fixture(scope="class")
    def scan_inputs(self):
        data = make_intersectional(n=4000, random_state=17)
        return data, data.labels()

    def test_findings_checkpoints_and_adjustments_identical(
        self, scan_inputs, tmp_path_factory
    ):
        data, predictions = scan_inputs
        tmp_path = tmp_path_factory.mktemp("batch-vs-reference")
        results, texts = {}, {}
        for backend in ("kernel", "reference"):
            with use_backend(backend):
                findings = audit_subgroups(
                    predictions, data, max_order=2, min_size=5,
                    checkpoint_path=tmp_path / f"{backend}.json",
                    checkpoint_every=3,
                )
            results[backend] = findings
            texts[backend] = (tmp_path / f"{backend}.json").read_text()
        assert [finding_signature(f) for f in results["kernel"]] == [
            finding_signature(f) for f in results["reference"]
        ]
        assert texts["kernel"] == texts["reference"]
        for method in ("holm", "bh"):
            adjusted = {
                backend: adjust_for_multiple_testing(
                    results[backend], method=method
                )
                for backend in results
            }
            assert [
                f.adjusted_p_value for f in adjusted["kernel"]
            ] == [f.adjusted_p_value for f in adjusted["reference"]]


class TestSatelliteRegressions:
    def test_wilson_interval_returns_builtin_floats(self):
        for backend in ("kernel", "reference"):
            with use_backend(backend):
                low, high = wilson_interval(3, 9)
            assert type(low) is float and type(high) is float
        low, high = batch_wilson_interval([3], [9])
        assert isinstance(low, np.ndarray) and isinstance(high, np.ndarray)

    def test_min_detectable_gap_wrapper_stays_scalar_strict(self):
        # The batch primitive tolerates integral floats; the scalar API
        # contract (positive ints only) must not loosen through routing.
        with pytest.raises(Exception):
            min_detectable_gap(10.5, 20)
        with pytest.raises(Exception):
            min_detectable_gap(0, 20)
        assert min_detectable_gap(50, 50) == pytest.approx(
            _reference.min_detectable_gap(50, 50), abs=TOL
        )


class TestInstrumentation:
    def test_batch_calls_and_sizes_recorded(self):
        with use_metrics(MetricsRegistry()) as metrics:
            batch_two_proportion_z([3, 4], [10, 10], [5, 6], [12, 12])
            batch_wilson_interval([3, 4, 5], [10, 10, 10])
            snapshot = metrics.snapshot()
        assert snapshot["counters"]["stats.batch_calls"] == 2
        assert snapshot["counters"]["stats.batch_size"] == 5

    def test_score_counts_emits_infer_span(self):
        tracer = Tracer(run_id="test")
        with use_tracer(tracer):
            batch_score_counts([3, 4], [10, 10], 30, 100)
        spans = tracer.find("stats.infer")
        ops = {span.attrs["op"] for span in spans}
        # The compound scorer's own span plus the nested primitive spans.
        assert "score_counts" in ops
        score = next(s for s in spans if s.attrs["op"] == "score_counts")
        assert score.attrs["batch"] == 2
