"""Unit behavior of the kernel primitives themselves."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Column, Schema, TabularDataset
from repro.exceptions import ValidationError
from repro.kernel import (
    CodeTable,
    codes_for,
    combined_codes,
    encode,
    get_backend,
    group_counts,
    joint_counts,
    set_backend,
    use_backend,
)


def test_encode_orders_categories_by_repr():
    table = encode(np.array([10, 1, 2, 1, 10]))
    assert table.categories == [1, 10, 2]
    assert table.codes.tolist() == [1, 0, 2, 0, 1]
    assert table.counts().tolist() == [2, 2, 1]


def test_encode_with_explicit_categories_marks_unknowns():
    table = encode(np.array(["a", "b", "c"]), categories=["b", "a"])
    assert table.codes.tolist() == [1, 0, -1]
    assert table.counts().tolist() == [1, 1]


def test_masks_are_cached_and_read_only():
    table = encode(np.array(["x", "y", "x"]))
    mask = table.mask("x")
    assert mask.tolist() == [True, False, True]
    assert mask is table.mask("x")
    with pytest.raises(ValueError):
        mask[0] = False
    assert table.mask("missing").tolist() == [False, False, False]


def test_codes_for_returns_same_table_for_same_array():
    values = np.array(["a", "b", "a"])
    assert codes_for(values) is codes_for(values)
    # A different array with equal content is a different cache entry.
    assert codes_for(values) is not codes_for(values.copy())


def test_joint_counts_equal_manual_confusion_matrix():
    rng = np.random.default_rng(3)
    groups = rng.choice(["g0", "g1", "g2"], size=500)
    y_true = rng.integers(0, 2, size=500)
    predictions = rng.integers(0, 2, size=500)
    counts = group_counts(groups, predictions, y_true)
    for index, group in enumerate(counts.categories):
        member = groups == group
        assert counts.tp[index] == int(((y_true == 1) & (predictions == 1) & member).sum())
        assert counts.fn[index] == int(((y_true == 1) & (predictions == 0) & member).sum())
        assert counts.fp[index] == int(((y_true == 0) & (predictions == 1) & member).sum())
        assert counts.tn[index] == int(((y_true == 0) & (predictions == 0) & member).sum())
        assert counts.n[index] == int(member.sum())


def test_combined_codes_drop_out_of_table_rows():
    left = encode(np.array(["a", "a", "b"]), categories=["a"])
    right = encode(np.array(["x", "y", "x"]))
    codes, n_cells = combined_codes([left, right])
    assert n_cells == 2
    assert codes.tolist() == [0, 1, -1]
    assert joint_counts(codes, n_cells).tolist() == [1, 1]


def test_backend_flag_validates_and_restores():
    assert get_backend() == "kernel"
    with use_backend("reference"):
        assert get_backend() == "reference"
    assert get_backend() == "kernel"
    with pytest.raises(ValidationError):
        set_backend("fast-but-wrong")


def test_dataset_codes_cached_per_fingerprint():
    schema = Schema((
        Column("sex", kind="categorical", role="protected",
               categories=("male", "female")),
        Column("hired", kind="binary", role="label"),
    ))
    data = TabularDataset(schema, {
        "sex": ["male", "female", "female"], "hired": [1, 0, 1],
    })
    table = data.codes("sex")
    assert isinstance(table, CodeTable)
    assert table is data.codes("sex")
    assert data.category_mask("sex", "female").tolist() == [False, True, True]
