"""Shared-memory segment lifecycle: publish/attach/release, no leaks.

The zero-copy parallel scan publishes code arrays into ``/dev/shm`` and
ships only names to workers.  These tests pin the leak contract:
``clear_cache()`` (or garbage collection of the source array) unlinks
every published segment, and a worker dying — cleanly or ``kill -9`` —
never takes a parent-owned segment down with it.
"""

from __future__ import annotations

import gc
import glob
import json
import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.data import make_intersectional
from repro.kernel import clear_cache
from repro.kernel.shm import (
    SEGMENT_PREFIX,
    active_segments,
    attach_array,
    publish,
    release,
    release_all,
)
from repro.subgroup import audit_subgroups

_SHM_GLOB = f"/dev/shm/{SEGMENT_PREFIX}*"


def _shm_files() -> set[str]:
    return set(glob.glob(_SHM_GLOB))


@pytest.fixture(autouse=True)
def leak_guard():
    """Fail any test in this module that leaks a ``/dev/shm`` segment."""
    before = _shm_files()
    yield
    clear_cache()
    leaked = _shm_files() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def test_publish_attach_roundtrip_and_release():
    array = np.arange(1024, dtype=np.int64)
    manifest = publish(array)
    assert manifest["kind"] == "shm"
    assert manifest["name"].startswith(SEGMENT_PREFIX)
    assert manifest["name"] in active_segments()
    assert os.path.exists(f"/dev/shm/{manifest['name']}")

    view, segment = attach_array(manifest)
    try:
        np.testing.assert_array_equal(view, array)
        assert not view.flags.writeable
    finally:
        del view
        segment.close()

    assert release(array)
    assert manifest["name"] not in active_segments()
    assert not os.path.exists(f"/dev/shm/{manifest['name']}")
    assert not release(array)  # second release is a no-op


def test_publish_is_cached_by_array_identity():
    array = np.arange(64, dtype=np.int64)
    first = publish(array)
    second = publish(array)
    assert second["name"] == first["name"]
    # A distinct array with equal contents gets its own segment.
    twin = array.copy()
    other = publish(twin)
    assert other["name"] != first["name"]
    assert len(active_segments()) == 2
    release_all()
    assert active_segments() == []


def test_garbage_collected_array_evicts_its_segment():
    array = np.arange(256, dtype=np.int64)
    name = publish(array)["name"]
    assert os.path.exists(f"/dev/shm/{name}")
    del array
    gc.collect()
    assert name not in active_segments()
    assert not os.path.exists(f"/dev/shm/{name}")


def test_clear_cache_unlinks_published_segments():
    arrays = [np.arange(16, dtype=np.int64) + i for i in range(3)]
    names = [publish(a)["name"] for a in arrays]
    assert len(set(names)) == 3
    clear_cache()
    assert active_segments() == []
    for name in names:
        assert not os.path.exists(f"/dev/shm/{name}")


_ATTACH_SCRIPT = textwrap.dedent(
    """
    import json, os, signal, sys
    import numpy as np
    from repro.kernel.shm import attach_array

    manifest = json.loads(sys.argv[1])
    view, segment = attach_array(manifest)
    assert int(view.sum()) == int(sys.argv[2])
    del view
    if sys.argv[3] == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    segment.close()
    """
)


@pytest.mark.parametrize("exit_mode", ["clean", "kill"])
def test_worker_exit_leaves_parent_segment_intact(exit_mode):
    """A borrowing process exiting — even ``kill -9`` — must not unlink."""
    array = np.arange(4096, dtype=np.int64)
    manifest = publish(array)

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ["src", env.get("PYTHONPATH", "")] if p
    )
    proc = subprocess.run(
        [sys.executable, "-c", _ATTACH_SCRIPT,
         json.dumps(manifest), str(int(array.sum())), exit_mode],
        env=env, cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        capture_output=True, text=True, timeout=60,
    )
    if exit_mode == "clean":
        assert proc.returncode == 0, proc.stderr
    else:
        assert proc.returncode == -signal.SIGKILL

    # Parent still owns the segment; the data is untouched.
    assert manifest["name"] in active_segments()
    view, segment = attach_array(manifest)
    try:
        np.testing.assert_array_equal(view, array)
    finally:
        del view
        segment.close()
    release_all()


def test_parallel_scan_then_clear_cache_leaves_no_segments():
    data = make_intersectional(n=3000, random_state=11)
    predictions = data.labels()
    audit_subgroups(predictions, data, max_order=2, min_size=5, jobs=2)
    assert active_segments() != []  # the scan published code arrays
    clear_cache()
    assert active_segments() == []
    assert not {f for f in _shm_files()}
