"""Parallel subgroup scanner: identical results, identical checkpoints.

The ``jobs=N`` scan must be indistinguishable from serial in everything
but wall time: findings (values, ordering), multiplicity-adjusted
p-values, checkpoint files, and resume fingerprints.  The chaos case
kills a worker mid-scan and requires resume to reproduce the serial
result exactly.
"""

from __future__ import annotations

from concurrent.futures import Future

import pytest

from repro.data import make_intersectional
from repro.exceptions import AuditError
from repro.kernel import chunk_ranges, use_backend
from repro.subgroup import adjust_for_multiple_testing, audit_subgroups


def finding_signature(finding):
    return (
        finding.subgroup.conditions,
        finding.subgroup.size,
        finding.rate,
        finding.complement_rate,
        finding.gap,
        finding.ci_low,
        finding.ci_high,
        finding.p_value,
        finding.adjusted_p_value,
    )


@pytest.fixture(scope="module")
def scan_inputs():
    data = make_intersectional(n=6000, random_state=5)
    return data, data.labels()


class _ThreadlessExecutor:
    """Deterministic in-process 'pool': chunks run inline at submit time.

    Lets the parallel code path run without real processes, and lets the
    chaos test fail an exact chunk.
    """

    def __init__(self, fail_from_call: int | None = None):
        self.calls = 0
        self.fail_from_call = fail_from_call

    def submit(self, fn, *args, **kwargs) -> Future:
        self.calls += 1
        future: Future = Future()
        if self.fail_from_call is not None and self.calls >= self.fail_from_call:
            future.set_exception(RuntimeError("worker died"))
        else:
            future.set_result(fn(*args, **kwargs))
        return future

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


def test_chunk_ranges_align_to_checkpoint_interval():
    assert chunk_ranges(0, 10, 4) == [(0, 4), (4, 8), (8, 10)]
    # Resuming mid-interval realigns to absolute multiples immediately.
    assert chunk_ranges(5, 10, 4) == [(5, 8), (8, 10)]
    assert chunk_ranges(10, 10, 4) == []


def test_parallel_findings_and_corrections_match_serial(scan_inputs, tmp_path):
    data, predictions = scan_inputs
    results = {}
    for jobs, name in ((1, "serial"), (4, "parallel")):
        findings = audit_subgroups(
            predictions, data, max_order=2, min_size=5, jobs=jobs,
            checkpoint_path=tmp_path / f"{name}.json", checkpoint_every=3,
        )
        findings = adjust_for_multiple_testing(findings, method="holm")
        results[name] = findings
    assert [finding_signature(f) for f in results["parallel"]] == [
        finding_signature(f) for f in results["serial"]
    ]
    # Checkpoint files — including the resume fingerprint — byte-identical.
    serial_text = (tmp_path / "serial.json").read_text()
    parallel_text = (tmp_path / "parallel.json").read_text()
    assert parallel_text == serial_text


def test_parallel_requires_kernel_backend(scan_inputs):
    data, predictions = scan_inputs
    with use_backend("reference"):
        with pytest.raises(AuditError, match="kernel"):
            audit_subgroups(predictions, data, jobs=2)


def test_reference_backend_scan_matches_kernel(scan_inputs):
    data, predictions = scan_inputs
    with use_backend("reference"):
        reference = audit_subgroups(predictions, data, max_order=2, min_size=5)
    with use_backend("kernel"):
        kernel = audit_subgroups(predictions, data, max_order=2, min_size=5)
    assert [finding_signature(f) for f in kernel] == [
        finding_signature(f) for f in reference
    ]


def test_worker_death_then_resume_reproduces_serial(scan_inputs, tmp_path):
    data, predictions = scan_inputs
    serial = audit_subgroups(predictions, data, max_order=2, min_size=5)

    checkpoint = tmp_path / "chaos.json"
    with pytest.raises(RuntimeError, match="worker died"):
        audit_subgroups(
            predictions, data, max_order=2, min_size=5, jobs=2,
            checkpoint_path=checkpoint, checkpoint_every=3,
            executor_factory=lambda n: _ThreadlessExecutor(fail_from_call=3),
        )
    assert checkpoint.exists()  # partial progress survived the crash

    resumed = audit_subgroups(
        predictions, data, max_order=2, min_size=5, jobs=4,
        checkpoint_path=checkpoint, checkpoint_every=3, resume=True,
        executor_factory=lambda n: _ThreadlessExecutor(),
    )
    assert [finding_signature(f) for f in resumed] == [
        finding_signature(f) for f in serial
    ]


def test_serial_checkpoint_resumes_under_parallel_and_vice_versa(
    scan_inputs, tmp_path
):
    data, predictions = scan_inputs

    class Stop(Exception):
        pass

    def stop_after(limit):
        def hook(evaluated, total):
            if evaluated >= limit:
                raise Stop

        return hook

    full = audit_subgroups(
        predictions, data, max_order=2, min_size=5,
        checkpoint_path=tmp_path / "full.json", checkpoint_every=3,
    )

    for jobs_first, jobs_second, name in ((1, 4, "s2p"), (4, 1, "p2s")):
        path = tmp_path / f"{name}.json"
        with pytest.raises(Stop):
            audit_subgroups(
                predictions, data, max_order=2, min_size=5, jobs=jobs_first,
                checkpoint_path=path, checkpoint_every=3,
                on_progress=stop_after(6),
                executor_factory=(
                    None if jobs_first == 1
                    else (lambda n: _ThreadlessExecutor())
                ),
            )
        resumed = audit_subgroups(
            predictions, data, max_order=2, min_size=5, jobs=jobs_second,
            checkpoint_path=path, checkpoint_every=3, resume=True,
            executor_factory=(
                None if jobs_second == 1
                else (lambda n: _ThreadlessExecutor())
            ),
        )
        assert [finding_signature(f) for f in resumed] == [
            finding_signature(f) for f in full
        ]
        assert path.read_text() == (tmp_path / "full.json").read_text()


def test_real_process_pool_matches_serial(scan_inputs):
    # One run through the genuine ProcessPoolExecutor path (the other
    # tests use the deterministic inline executor).
    data, predictions = scan_inputs
    serial = audit_subgroups(predictions, data, max_order=2, min_size=5)
    parallel = audit_subgroups(
        predictions, data, max_order=2, min_size=5, jobs=2
    )
    assert [finding_signature(f) for f in parallel] == [
        finding_signature(f) for f in serial
    ]
