"""Cross-module property-based tests (hypothesis).

Invariants spanning subsystems:

* CSV round-trip preserves any schema-valid dataset;
* SCM abduction inverts sampling for random additive chain models;
* quota selection always selects exactly n and respects reserves;
* reweighing always yields exact weighted independence.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.causal import StructuralCausalModel, Variable
from repro.data import Column, Schema, TabularDataset
from repro.mitigation import quota_selector, reweighing


@st.composite
def small_dataset(draw):
    """A schema-valid dataset with numeric, categorical, and label data."""
    n = draw(st.integers(1, 25))
    numeric = draw(st.lists(
        st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
        min_size=n, max_size=n,
    ))
    categories = ("red", "blue", "green")
    cats = draw(st.lists(st.sampled_from(categories), min_size=n, max_size=n))
    labels = draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
    schema = Schema((
        Column("value", kind="numeric"),
        Column("color", kind="categorical", role="protected",
               categories=categories),
        Column("y", kind="binary", role="label"),
    ))
    return TabularDataset(schema, {
        "value": numeric, "color": cats, "y": labels,
    })


class TestCsvRoundtripProperty:
    @given(small_dataset())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_preserves_everything(self, dataset):
        back = TabularDataset.from_csv(dataset.schema, dataset.to_csv())
        assert back.n_rows == dataset.n_rows
        np.testing.assert_array_equal(back.column("y"), dataset.column("y"))
        np.testing.assert_array_equal(
            back.column("color"), dataset.column("color")
        )
        np.testing.assert_allclose(
            back.column("value"), dataset.column("value"), rtol=1e-12
        )


class TestScmAbductionProperty:
    @given(
        st.floats(-5, 5, allow_nan=False),
        st.floats(0.1, 3.0, allow_nan=False),
        st.integers(0, 10_000),
        st.integers(5, 60),
    )
    @settings(max_examples=50, deadline=None)
    def test_abduction_inverts_sampling(self, effect, noise_scale, seed, n):
        scm = StructuralCausalModel([
            Variable("a", sampler=lambda rng, count: (
                rng.random(count) < 0.5
            ).astype(float)),
            Variable("u", sampler=lambda rng, count, s=noise_scale: (
                rng.normal(0, s, count)
            )),
            Variable("x", parents=("a", "u"),
                     equation=lambda v, e=effect: e * v["a"] + v["u"]),
            Variable("y", parents=("x",), equation=lambda v: 3.0 * v["x"]),
        ])
        world = scm.sample(n, random_state=seed)
        observed = {k: world[k] for k in ("a", "x", "y")}
        noise = scm.abduct(observed)
        np.testing.assert_allclose(noise["u"], world["u"], atol=1e-9)
        # consistency: counterfactual at the factual value reproduces data
        cf = scm.counterfactual(observed, {"a": world["a"]})
        np.testing.assert_allclose(cf["y"], world["y"], atol=1e-9)


class TestQuotaProperty:
    @given(
        st.integers(4, 60),
        st.integers(0, 10_000),
        st.floats(0.0, 0.5),
    )
    @settings(max_examples=60, deadline=None)
    def test_selects_exactly_n_and_respects_reserve(self, n, seed, quota_b):
        rng = np.random.default_rng(seed)
        scores = rng.normal(0, 1, n)
        groups = np.array(["a"] * (n // 2) + ["b"] * (n - n // 2))
        n_select = max(1, n // 3)
        selected = quota_selector(
            scores, groups, n_select, quotas={"b": quota_b}
        )
        assert selected.sum() == n_select
        reserve = int(np.floor(quota_b * n_select))
        available_b = int((groups == "b").sum())
        assert selected[groups == "b"].sum() >= min(reserve, available_b, n_select)


class TestReweighingProperty:
    @given(st.integers(0, 10_000), st.integers(20, 200))
    @settings(max_examples=40, deadline=None)
    def test_weighted_independence_exact(self, seed, n):
        rng = np.random.default_rng(seed)
        groups = rng.choice(["g1", "g2"], n)
        labels = rng.integers(0, 2, n)
        # every (group, label) cell must be non-empty for reweighing
        assume(all(
            ((groups == g) & (labels == l)).any()
            for g in ("g1", "g2") for l in (0, 1)
        ))
        schema = Schema((
            Column("f", kind="numeric"),
            Column("g", kind="categorical", role="protected",
                   categories=("g1", "g2")),
            Column("y", kind="binary", role="label"),
        ))
        ds = TabularDataset(schema, {
            "f": rng.normal(0, 1, n), "g": groups, "y": labels,
        })
        weights = reweighing(ds, "g")
        rates = []
        for g in ("g1", "g2"):
            mask = groups == g
            rates.append(
                float((weights[mask] * labels[mask]).sum()
                      / weights[mask].sum())
            )
        assert rates[0] == pytest.approx(rates[1], abs=1e-9)
        # weighted total mass is preserved
        assert weights.sum() == pytest.approx(n, rel=0.05)
