"""Bounded decorrelated jitter on the retry backoff schedule."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.robustness import ExecutionPolicy


class TestDefaultUnchanged:
    def test_zero_jitter_is_exactly_the_deterministic_schedule(self):
        policy = ExecutionPolicy(backoff_base=0.05, backoff_factor=2.0,
                                 backoff_cap=2.0)
        assert [policy.backoff(i) for i in range(4)] == [
            0.05, 0.1, 0.2, 0.4
        ]

    def test_jitter_defaults_off(self):
        assert ExecutionPolicy().backoff_jitter == 0.0


class TestJitteredSchedule:
    def test_draw_spans_the_jitter_window(self):
        # rng pinned to the extremes: 0.0 gives the window floor,
        # 1.0 gives the deterministic schedule back
        low = ExecutionPolicy(
            backoff_base=1.0, backoff_jitter=0.5, rng=lambda: 0.0
        )
        high = ExecutionPolicy(
            backoff_base=1.0, backoff_jitter=0.5, rng=lambda: 1.0
        )
        assert low.backoff(0) == pytest.approx(0.5)
        assert high.backoff(0) == pytest.approx(1.0)

    def test_never_exceeds_deterministic_schedule(self):
        policy = ExecutionPolicy(
            backoff_base=0.05, backoff_factor=3.0, backoff_cap=1.0,
            backoff_jitter=1.0,
        )
        deterministic = ExecutionPolicy(
            backoff_base=0.05, backoff_factor=3.0, backoff_cap=1.0
        )
        for index in range(6):
            ceiling = deterministic.backoff(index)
            for _ in range(50):
                duration = policy.backoff(index)
                assert 0.0 <= duration <= ceiling

    def test_injectable_rng_makes_jitter_reproducible(self):
        import random

        a = ExecutionPolicy(
            backoff_base=1.0, backoff_jitter=0.3,
            rng=random.Random(42).random,
        )
        b = ExecutionPolicy(
            backoff_base=1.0, backoff_jitter=0.3,
            rng=random.Random(42).random,
        )
        assert [a.backoff(i) for i in range(5)] == [
            b.backoff(i) for i in range(5)
        ]

    def test_decorrelates_concurrent_retriers(self):
        import random

        policy = ExecutionPolicy(
            backoff_base=1.0, backoff_jitter=0.5,
            rng=random.Random(7).random,
        )
        draws = {policy.backoff(0) for _ in range(20)}
        assert len(draws) > 1  # identical retriers no longer sleep in lockstep

    def test_cap_still_applies(self):
        policy = ExecutionPolicy(
            backoff_base=10.0, backoff_cap=0.5, backoff_jitter=0.4,
            rng=lambda: 1.0,
        )
        assert policy.backoff(3) == pytest.approx(0.5)


class TestValidationAndRoundtrip:
    @pytest.mark.parametrize("bad", [-0.1, 1.5, 2.0])
    def test_out_of_range_jitter_rejected(self, bad):
        with pytest.raises(ValidationError, match="backoff_jitter"):
            ExecutionPolicy(backoff_jitter=bad)

    def test_jitter_survives_config_roundtrip(self):
        from repro.core.config import AuditConfig

        config = AuditConfig(
            policy=ExecutionPolicy(max_retries=2, backoff_jitter=0.25)
        )
        rebuilt = AuditConfig.from_dict(config.to_dict())
        assert rebuilt.policy.backoff_jitter == 0.25
        assert config.fingerprint() == rebuilt.fingerprint()

    def test_jitter_changes_config_fingerprint(self):
        from repro.core.config import AuditConfig

        plain = AuditConfig(policy=ExecutionPolicy(max_retries=2))
        jittered = AuditConfig(
            policy=ExecutionPolicy(max_retries=2, backoff_jitter=0.25)
        )
        assert plain.fingerprint() != jittered.fingerprint()
