"""Tests for :class:`repro.robustness.ExecutionPolicy`."""

import pytest

from repro.exceptions import ConvergenceError, SchemaError, ValidationError
from repro.robustness import ExecutionPolicy


class TestValidation:
    def test_negative_deadline_rejected(self):
        with pytest.raises(ValidationError):
            ExecutionPolicy(deadline=-1.0)

    def test_zero_deadline_rejected(self):
        with pytest.raises(ValidationError):
            ExecutionPolicy(deadline=0.0)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValidationError):
            ExecutionPolicy(max_retries=-1)

    def test_negative_failure_budget_rejected(self):
        with pytest.raises(ValidationError):
            ExecutionPolicy(max_failures=-2)

    def test_backoff_factor_below_one_rejected(self):
        with pytest.raises(ValidationError):
            ExecutionPolicy(backoff_factor=0.5)


class TestBackoff:
    def test_exponential_growth(self):
        policy = ExecutionPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_cap=10.0
        )
        assert policy.backoff(0) == pytest.approx(0.1)
        assert policy.backoff(1) == pytest.approx(0.2)
        assert policy.backoff(2) == pytest.approx(0.4)

    def test_cap_applies(self):
        policy = ExecutionPolicy(
            backoff_base=1.0, backoff_factor=10.0, backoff_cap=3.0
        )
        assert policy.backoff(5) == 3.0


class TestRetryability:
    def test_convergence_error_is_transient(self):
        assert ExecutionPolicy().is_retryable(ConvergenceError("x"))

    def test_schema_error_is_not(self):
        assert not ExecutionPolicy().is_retryable(SchemaError("x"))

    def test_custom_retryable_set(self):
        policy = ExecutionPolicy(retryable=(KeyError,))
        assert policy.is_retryable(KeyError("x"))
        assert not policy.is_retryable(ConvergenceError("x"))


class TestStageOverrides:
    def test_exact_match_wins(self):
        special = ExecutionPolicy(max_retries=5)
        policy = ExecutionPolicy(
            stage_overrides={"audit:sex:equalized_odds": special}
        )
        assert policy.for_stage("audit:sex:equalized_odds") is special
        assert policy.for_stage("audit:sex:demographic_parity") is policy

    def test_prefix_match(self):
        special = ExecutionPolicy(deadline=1.0)
        policy = ExecutionPolicy(stage_overrides={"audit": special})
        assert policy.for_stage("audit:race:predictive_parity") is special
        assert policy.for_stage("statutes") is policy

    def test_no_overrides_returns_self(self):
        policy = ExecutionPolicy()
        assert policy.for_stage("anything") is policy


class TestPresets:
    def test_default_is_fail_open(self):
        policy = ExecutionPolicy.default()
        assert not policy.fail_fast
        assert policy.deadline is None
        assert policy.max_retries == 0

    def test_resilient_retries_with_deadline(self):
        policy = ExecutionPolicy.resilient(deadline=5.0, max_retries=3)
        assert policy.deadline == 5.0
        assert policy.max_retries == 3

    def test_strict_is_fail_closed(self):
        assert ExecutionPolicy.strict().fail_fast

    def test_with_overrides_copies(self):
        base = ExecutionPolicy()
        tweaked = base.with_overrides(max_retries=7)
        assert tweaked.max_retries == 7
        assert base.max_retries == 0
