"""Concurrency hammer: FaultInjector and MetricsRegistry under threads.

The service runs jobs on worker threads that share one injector and one
registry, so both must tolerate concurrent firing, registration, and
observation without losing counts or corrupting state.
"""

from __future__ import annotations

import threading

from repro.observability.metrics import MetricsRegistry
from repro.robustness import FaultInjector


def _run_threads(worker, count=8):
    threads = [threading.Thread(target=worker, args=(i,)) for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestFaultInjectorHammer:
    def test_concurrent_fire_counts_exactly(self):
        injector = FaultInjector()
        injector.inject_error("stage", RuntimeError("x"), times=100)
        raised = [0] * 8

        def worker(index):
            for _ in range(50):
                try:
                    injector.fire("stage")
                except RuntimeError:
                    raised[index] += 1

        _run_threads(worker)
        # exactly `times` firings across 400 racing calls, never more
        assert sum(raised) == 100
        assert injector.fired_count("stage") == 100

    def test_concurrent_registration_and_fire(self):
        injector = FaultInjector()
        errors = []

        def register(index):
            for i in range(25):
                injector.inject_error(
                    f"stage-{index}-{i}", RuntimeError("r"), times=1
                )

        def fire(index):
            for _ in range(200):
                try:
                    injector.fire(f"stage-{index % 4}-0")
                except RuntimeError:
                    pass
                except Exception as exc:  # pragma: no cover — the failure
                    errors.append(exc)

        threads = [
            threading.Thread(target=register, args=(i,)) for i in range(4)
        ] + [threading.Thread(target=fire, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

    def test_release_unblocks_every_pending_hang(self):
        injector = FaultInjector()
        injector.inject_hang("hang", seconds=60, times=None)
        started = threading.Barrier(9)
        done = []

        def worker(index):
            started.wait()
            injector.fire("hang")
            done.append(index)

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        started.wait()
        injector.release()
        for thread in threads:
            thread.join(timeout=10)
        assert len(done) == 8


class TestMetricsHammer:
    def test_concurrent_counters_lose_nothing(self):
        registry = MetricsRegistry()

        def worker(index):
            for _ in range(1000):
                registry.counter("hits").inc()
                registry.counter(f"per-thread-{index}").inc()

        _run_threads(worker)
        assert registry.counter("hits").value == 8000
        for i in range(8):
            assert registry.counter(f"per-thread-{i}").value == 1000

    def test_concurrent_observations_and_snapshots(self):
        registry = MetricsRegistry()
        snapshots = []

        def observe(index):
            for i in range(500):
                registry.observe("latency", float(i))

        def snapshot(index):
            for _ in range(50):
                snapshots.append(registry.snapshot())

        threads = [
            threading.Thread(target=observe, args=(i,)) for i in range(4)
        ] + [threading.Thread(target=snapshot, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        final = registry.snapshot()
        assert final["histograms"]["latency"]["count"] == 2000
        # every mid-flight snapshot was internally consistent
        assert all(isinstance(s, dict) for s in snapshots)
