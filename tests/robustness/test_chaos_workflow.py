"""Chaos tests: the compliance workflow under injected faults.

The ISSUE's acceptance criterion: with injected faults in any single
stage, :func:`run_compliance_workflow` still returns a dossier whose
``degradations`` names the stage, and the verdict degrades to
``"inconclusive"`` — never a crash — when the primary metric's stage
failed.
"""

import pytest

from repro.core import UseCaseProfile
from repro.data import make_hiring
from repro.exceptions import DegradedRunError
from repro.robustness import ExecutionPolicy
from repro.workflow import run_compliance_workflow

WORKFLOW_STAGES = (
    "statutes",
    "recommendations",
    "risk_flags",
    "audit",
    "primary_verdict",
)


@pytest.fixture(scope="module")
def hiring():
    return make_hiring(
        n=1500, direct_bias=2.0, proxy_strength=0.9, random_state=47
    )


@pytest.fixture(scope="module")
def profile():
    return UseCaseProfile(
        name="chaos hiring",
        sector="employment",
        jurisdiction="eu",
        structural_bias_recognized=True,
        ground_truth_reliable=False,
        legitimate_factors=("university",),
        proxy_risk=True,
    )


class TestEveryStageSurvivesAFault:
    @pytest.mark.parametrize("stage", WORKFLOW_STAGES)
    def test_dossier_returned_and_degradation_named(
        self, hiring, profile, stage, fault_injector
    ):
        fault_injector.inject_error(stage, RuntimeError(f"chaos in {stage}"))
        dossier = run_compliance_workflow(
            hiring, profile, strata="university", faults=fault_injector
        )
        assert dossier.degraded
        assert stage in [d["stage"].split(":")[0] for d in dossier.degradations]
        assert dossier.verdict in ("pass", "fail", "inconclusive")
        dossier.to_markdown()  # renders without crashing

    def test_audit_stage_fault_yields_inconclusive(
        self, hiring, profile, fault_injector
    ):
        fault_injector.inject_error("audit", RuntimeError("battery down"))
        dossier = run_compliance_workflow(
            hiring, profile, strata="university", faults=fault_injector
        )
        assert dossier.verdict == "inconclusive"
        assert dossier.audit.all_findings() == []

    def test_primary_verdict_fault_yields_inconclusive(
        self, hiring, profile, fault_injector
    ):
        fault_injector.inject_error(
            "primary_verdict", RuntimeError("verdict crashed")
        )
        dossier = run_compliance_workflow(
            hiring, profile, strata="university", faults=fault_injector
        )
        assert dossier.verdict == "inconclusive"
        # the primary metric is still named so the reviewer knows what
        # evidence is missing
        assert dossier.primary_metric != ""

    def test_per_metric_fault_listed_but_verdict_stands(
        self, hiring, profile, fault_injector
    ):
        # fault one non-primary metric: the dossier degrades but the
        # criteria-selected verdict is still evaluable
        fault_injector.inject_error(
            "audit:sex:treatment_equality", RuntimeError("boom")
        )
        dossier = run_compliance_workflow(
            hiring, profile, strata="university", faults=fault_injector
        )
        assert dossier.degraded
        assert dossier.verdict == "fail"  # biased data still caught
        assert "audit:sex:treatment_equality" in [
            d["stage"] for d in dossier.degradations
        ]


class TestDeadlines:
    def test_hanging_stage_cut_off_by_deadline(
        self, hiring, profile, fault_injector
    ):
        fault_injector.inject_hang("risk_flags", seconds=30.0)
        dossier = run_compliance_workflow(
            hiring, profile, strata="university",
            policy=ExecutionPolicy(deadline=0.3), faults=fault_injector,
        )
        entry = next(
            d for d in dossier.degradations if d["stage"] == "risk_flags"
        )
        assert entry["status"] == "timeout"
        assert dossier.risks == []


class TestFailClosed:
    def test_fail_fast_raises_instead_of_degrading(
        self, hiring, profile, fault_injector
    ):
        fault_injector.inject_error("statutes", RuntimeError("boom"))
        with pytest.raises(DegradedRunError):
            run_compliance_workflow(
                hiring, profile, strata="university",
                policy=ExecutionPolicy.strict(), faults=fault_injector,
            )


class TestMarkdown:
    def test_degradations_section_rendered(
        self, hiring, profile, fault_injector
    ):
        fault_injector.inject_error("risk_flags", RuntimeError("boom"))
        dossier = run_compliance_workflow(
            hiring, profile, strata="university", faults=fault_injector
        )
        text = dossier.to_markdown()
        assert "Degradations" in text
        assert "risk_flags" in text

    def test_clean_run_has_no_degradations_section(self, hiring, profile):
        dossier = run_compliance_workflow(
            hiring, profile, strata="university"
        )
        assert not dossier.degraded
        assert "Degradations" not in dossier.to_markdown()
