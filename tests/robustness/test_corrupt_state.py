"""Corrupted-state regression tests: every bad state file is a
CheckpointError with the path and cause — never a raw JSONDecodeError
or KeyError escaping to the caller."""

from __future__ import annotations

import json

import pytest

from repro.data import make_hiring
from repro.exceptions import CheckpointError
from repro.robustness.checkpoint import load_checkpoint, save_checkpoint
from repro.streaming import AuditAccumulator
from repro.streaming.stream import accumulator_for
from repro.subgroup import audit_subgroups


@pytest.fixture
def hiring():
    return make_hiring(400, random_state=5)


def _assert_checkpoint_error(excinfo, path):
    error = excinfo.value
    assert isinstance(error, CheckpointError)
    assert str(path) in str(error)
    assert error.path is not None


class TestLoadCheckpoint:
    def test_truncated_json(self, tmp_path):
        path = tmp_path / "ck.json"
        save_checkpoint(path, {"x": 1}, fingerprint="f")
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.raises(CheckpointError, match="byte offset") as excinfo:
            load_checkpoint(path)
        _assert_checkpoint_error(excinfo, path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("")
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(path)
        _assert_checkpoint_error(excinfo, path)

    def test_garbled_bytes(self, tmp_path):
        path = tmp_path / "noise.json"
        path.write_text("\x00\x01 not json at all {{{")
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(path)
        _assert_checkpoint_error(excinfo, path)

    def test_wrong_layout_not_an_envelope(self, tmp_path):
        path = tmp_path / "layout.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(CheckpointError, match="envelope"):
            load_checkpoint(path)

    def test_never_raises_json_decode_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{unbalanced")
        try:
            load_checkpoint(path)
        except json.JSONDecodeError:  # pragma: no cover — the regression
            pytest.fail("raw JSONDecodeError escaped load_checkpoint")
        except CheckpointError:
            pass


class TestAccumulatorState:
    def _state_file(self, tmp_path, hiring):
        accumulator = accumulator_for(hiring, audits_labels=True)
        accumulator.ingest_dataset(hiring)
        path = tmp_path / "acc.state.json"
        accumulator.save(path)
        return path

    def test_truncated_state(self, tmp_path, hiring):
        path = self._state_file(tmp_path, hiring)
        path.write_text(path.read_text()[:40])
        with pytest.raises(CheckpointError) as excinfo:
            AuditAccumulator.load(path)
        _assert_checkpoint_error(excinfo, path)

    def test_empty_state(self, tmp_path, hiring):
        path = self._state_file(tmp_path, hiring)
        path.write_text("")
        with pytest.raises(CheckpointError) as excinfo:
            AuditAccumulator.load(path)
        _assert_checkpoint_error(excinfo, path)

    def test_wrong_layout_payload(self, tmp_path, hiring):
        # a valid envelope whose payload is not accumulator state must
        # surface as CheckpointError naming the layout, not a KeyError
        path = tmp_path / "wrong.state.json"
        save_checkpoint(path, {"not": "an accumulator"})
        with pytest.raises(CheckpointError, match="wrong layout") as excinfo:
            AuditAccumulator.load(path)
        _assert_checkpoint_error(excinfo, path)

    def test_payload_with_mistyped_fields(self, tmp_path, hiring):
        path = self._state_file(tmp_path, hiring)
        envelope = json.loads(path.read_text())
        envelope["payload"]["cells"] = "definitely not a table"
        path.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointError):
            AuditAccumulator.load(path)


class TestScanResume:
    def test_wrong_layout_scan_checkpoint(self, tmp_path, hiring):
        path = tmp_path / "scan.json"
        # run once to learn the fingerprint the resume path expects
        audit_subgroups(
            hiring.labels(), hiring, max_order=1,
            checkpoint_path=str(path), checkpoint_every=1,
        )
        envelope = json.loads(path.read_text())
        envelope["payload"] = {"unexpected": True}
        path.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointError, match="wrong layout") as excinfo:
            audit_subgroups(
                hiring.labels(), hiring, max_order=1,
                checkpoint_path=str(path), resume=True,
            )
        _assert_checkpoint_error(excinfo, path)

    def test_garbled_scan_checkpoint(self, tmp_path, hiring):
        path = tmp_path / "scan.json"
        path.write_text("{torn")
        with pytest.raises(CheckpointError) as excinfo:
            audit_subgroups(
                hiring.labels(), hiring, max_order=1,
                checkpoint_path=str(path), resume=True,
            )
        _assert_checkpoint_error(excinfo, path)
