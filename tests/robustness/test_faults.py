"""Tests for the deterministic fault-injection harness."""

import pytest

from repro.exceptions import ValidationError
from repro.robustness import Fault, FaultInjector


class TestFaultSpecs:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError, match="kind"):
            Fault("stage", kind="explode")

    def test_error_fault_requires_exception(self):
        with pytest.raises(ValidationError, match="exception"):
            Fault("stage", kind="error")

    def test_corrupt_fault_requires_corruptor(self):
        with pytest.raises(ValidationError, match="corruptor"):
            Fault("stage", kind="corrupt")


class TestDeterminism:
    def test_fires_exactly_times(self, fault_injector):
        fault_injector.inject_error("s", RuntimeError("x"), times=2)
        fired = 0
        for _ in range(5):
            try:
                fault_injector.fire("s")
            except RuntimeError:
                fired += 1
        assert fired == 2
        assert fault_injector.fired_count("s") == 2

    def test_after_skips_initial_calls(self, fault_injector):
        fault_injector.inject_error("s", RuntimeError("x"), times=1, after=2)
        outcomes = []
        for _ in range(4):
            try:
                fault_injector.fire("s")
                outcomes.append("ok")
            except RuntimeError:
                outcomes.append("boom")
        assert outcomes == ["ok", "ok", "boom", "ok"]

    def test_exception_factory_called_per_fire(self, fault_injector):
        fault_injector.inject_error(
            "s", lambda: ValueError("fresh"), times=2
        )
        first = pytest.raises(ValueError, fault_injector.fire, "s").value
        second = pytest.raises(ValueError, fault_injector.fire, "s").value
        assert first is not second

    def test_unmatched_stage_untouched(self, fault_injector):
        fault_injector.inject_error("other", RuntimeError("x"))
        fault_injector.fire("s")  # no raise
        assert fault_injector.fired_count() == 0


class TestStageMatching:
    def test_prefix_matches_sub_stages(self, fault_injector):
        fault_injector.inject_error("audit", RuntimeError("x"), times=1)
        with pytest.raises(RuntimeError):
            fault_injector.fire("audit:sex:demographic_parity")

    def test_exact_name_matches(self, fault_injector):
        fault_injector.inject_error(
            "audit:sex:equalized_odds", RuntimeError("x"), times=1
        )
        fault_injector.fire("audit:sex:demographic_parity")  # no raise
        with pytest.raises(RuntimeError):
            fault_injector.fire("audit:sex:equalized_odds")


class TestCorruptionAndWrap:
    def test_transform_applies_corruptor(self, fault_injector):
        fault_injector.inject_corruption(
            "s", lambda v: {**v, "rate": float("nan")}, times=1
        )
        out = fault_injector.transform("s", {"rate": 0.5})
        assert out["rate"] != out["rate"]  # NaN
        untouched = fault_injector.transform("s", {"rate": 0.5})
        assert untouched["rate"] == 0.5

    def test_wrap_combines_fire_and_transform(self, fault_injector):
        fault_injector.inject_corruption("s", lambda v: -v, times=None)
        wrapped = fault_injector.wrap("s", lambda x: x + 1)
        assert wrapped(1) == -2

    def test_release_unblocks_hangs(self, fault_injector):
        import time

        fault_injector.inject_hang("s", seconds=30.0)
        fault_injector.release()
        start = time.perf_counter()
        fault_injector.fire("s")
        assert time.perf_counter() - start < 1.0
