"""Tests for atomic checkpoint persistence."""

import json
import os

import pytest

from repro.exceptions import CheckpointError
from repro.robustness import (
    atomic_write_text,
    load_checkpoint,
    save_checkpoint,
)


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "hello")
        assert path.read_text() == "hello"

    def test_overwrites_atomically(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "first")
        atomic_write_text(path, "second")
        assert path.read_text() == "second"

    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "x")
        assert os.listdir(tmp_path) == ["out.txt"]


class TestRoundtrip:
    def test_payload_survives(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        save_checkpoint(path, {"next_index": 7, "findings": [1, 2]}, "fp")
        payload = load_checkpoint(path, "fp")
        assert payload == {"next_index": 7, "findings": [1, 2]}

    def test_fingerprint_not_checked_when_omitted(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        save_checkpoint(path, {"a": 1}, "fp")
        assert load_checkpoint(path) == {"a": 1}


class TestFailureModes:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(tmp_path / "absent.json")

    def test_truncated_file_reports_offset(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        save_checkpoint(path, {"next_index": 3}, "fp")
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(CheckpointError, match="byte offset"):
            load_checkpoint(path)

    def test_non_envelope_json_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(CheckpointError, match="envelope"):
            load_checkpoint(path)

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        path.write_text(json.dumps(
            {"version": 999, "fingerprint": "fp", "payload": {}}
        ))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        save_checkpoint(path, {"a": 1}, "run-A")
        with pytest.raises(CheckpointError, match="different run"):
            load_checkpoint(path, "run-B")

    def test_unserialisable_payload_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        with pytest.raises(CheckpointError, match="JSON"):
            save_checkpoint(path, {"bad": object()}, "fp")
        assert not path.exists()
