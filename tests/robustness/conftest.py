"""Shared fixtures for the chaos-test suite."""

import pytest

from repro.robustness import FaultInjector


@pytest.fixture
def fault_injector():
    """A fresh injector whose pending hangs are released at teardown, so
    no abandoned worker thread outlives its test sleeping."""
    injector = FaultInjector()
    yield injector
    injector.release()
