"""Chaos tests: anytime subgroup enumeration, checkpoints, and resume.

The ISSUE's acceptance criterion: a killed subgroup enumeration resumed
from its checkpoint produces the identical finding set as an
uninterrupted run.
"""

import json

import pytest

from repro.data import make_intersectional
from repro.exceptions import CheckpointError
from repro.subgroup.auditor import audit_subgroups


class Killed(RuntimeError):
    """Simulates the process being killed mid-scan."""


@pytest.fixture(scope="module")
def data():
    return make_intersectional(n=1500, random_state=3)


@pytest.fixture(scope="module")
def baseline(data):
    """The uninterrupted scan every resumed scan must reproduce."""
    return audit_subgroups(data.labels(), data, max_order=2, min_size=10)


def finding_keys(findings):
    return [
        (f.subgroup.label(), f.subgroup.size, round(f.gap, 12),
         round(f.p_value, 12), round(f.ci_low, 12), round(f.ci_high, 12))
        for f in findings
    ]


def kill_after(n):
    def hook(evaluated, total):
        if evaluated == n:
            raise Killed(f"killed after {evaluated}/{total}")
    return hook


class TestResumeEquivalence:
    @pytest.mark.parametrize("kill_at,every", [(2, 1), (5, 2), (7, 3)])
    def test_killed_scan_resumes_identically(
        self, data, baseline, tmp_path, kill_at, every
    ):
        ckpt = tmp_path / "scan.ckpt.json"
        with pytest.raises(Killed):
            audit_subgroups(
                data.labels(), data, max_order=2, min_size=10,
                checkpoint_path=ckpt, checkpoint_every=every,
                on_progress=kill_after(kill_at),
            )
        assert ckpt.exists()
        resumed = audit_subgroups(
            data.labels(), data, max_order=2, min_size=10,
            checkpoint_path=ckpt, checkpoint_every=every, resume=True,
        )
        assert finding_keys(resumed) == finding_keys(baseline)

    def test_resume_of_completed_scan_is_identical(
        self, data, baseline, tmp_path
    ):
        ckpt = tmp_path / "scan.ckpt.json"
        audit_subgroups(
            data.labels(), data, max_order=2, min_size=10,
            checkpoint_path=ckpt,
        )
        resumed = audit_subgroups(
            data.labels(), data, max_order=2, min_size=10,
            checkpoint_path=ckpt, resume=True,
        )
        assert finding_keys(resumed) == finding_keys(baseline)

    def test_resume_without_checkpoint_starts_fresh(
        self, data, baseline, tmp_path
    ):
        findings = audit_subgroups(
            data.labels(), data, max_order=2, min_size=10,
            checkpoint_path=tmp_path / "never-written.json", resume=True,
        )
        assert finding_keys(findings) == finding_keys(baseline)

    def test_resume_skips_completed_work(self, data, tmp_path):
        ckpt = tmp_path / "scan.ckpt.json"
        with pytest.raises(Killed):
            audit_subgroups(
                data.labels(), data, max_order=2, min_size=10,
                checkpoint_path=ckpt, checkpoint_every=1,
                on_progress=kill_after(6),
            )
        evaluations = []
        audit_subgroups(
            data.labels(), data, max_order=2, min_size=10,
            checkpoint_path=ckpt, checkpoint_every=1, resume=True,
            on_progress=lambda done, total: evaluations.append(done),
        )
        # only the post-checkpoint tail was re-evaluated
        assert evaluations[0] == 7


class TestCheckpointSafety:
    def test_resume_requires_checkpoint_path(self, data):
        with pytest.raises(CheckpointError, match="checkpoint_path"):
            audit_subgroups(
                data.labels(), data, max_order=2, min_size=10, resume=True
            )

    def test_corrupt_checkpoint_refused(self, data, tmp_path):
        ckpt = tmp_path / "scan.ckpt.json"
        with pytest.raises(Killed):
            audit_subgroups(
                data.labels(), data, max_order=2, min_size=10,
                checkpoint_path=ckpt, checkpoint_every=1,
                on_progress=kill_after(4),
            )
        text = ckpt.read_text()
        ckpt.write_text(text[: len(text) // 2])  # simulated torn write
        with pytest.raises(CheckpointError, match="byte offset"):
            audit_subgroups(
                data.labels(), data, max_order=2, min_size=10,
                checkpoint_path=ckpt, resume=True,
            )

    def test_checkpoint_from_different_dataset_refused(self, data, tmp_path):
        ckpt = tmp_path / "scan.ckpt.json"
        audit_subgroups(
            data.labels(), data, max_order=2, min_size=10,
            checkpoint_path=ckpt,
        )
        other = make_intersectional(n=1500, random_state=99)
        with pytest.raises(CheckpointError, match="different run"):
            audit_subgroups(
                other.labels(), other, max_order=2, min_size=10,
                checkpoint_path=ckpt, resume=True,
            )

    def test_checkpoint_from_different_parameters_refused(
        self, data, tmp_path
    ):
        ckpt = tmp_path / "scan.ckpt.json"
        audit_subgroups(
            data.labels(), data, max_order=2, min_size=10,
            checkpoint_path=ckpt,
        )
        with pytest.raises(CheckpointError, match="different run"):
            audit_subgroups(
                data.labels(), data, max_order=1, min_size=10,
                checkpoint_path=ckpt, resume=True,
            )

    def test_checkpoint_is_valid_json_at_every_interval(self, data, tmp_path):
        ckpt = tmp_path / "scan.ckpt.json"
        seen = []

        def check(evaluated, total):
            if ckpt.exists():
                payload = json.loads(ckpt.read_text())
                seen.append(payload["payload"]["next_index"])

        audit_subgroups(
            data.labels(), data, max_order=2, min_size=10,
            checkpoint_path=ckpt, checkpoint_every=2, on_progress=check,
        )
        assert seen  # checkpoints were written and parseable mid-run
        assert seen == sorted(seen)
