"""Tests for :class:`repro.robustness.StageRunner` supervision."""

import pytest

from repro.exceptions import (
    ConvergenceError,
    DegradedRunError,
    RetryExhaustedError,
    StageTimeoutError,
)
from repro.robustness import ExecutionPolicy, StageRunner


def no_sleep(_seconds):
    pass


class TestIsolation:
    def test_ok_stage_returns_value(self):
        runner = StageRunner()
        outcome = runner.run("work", lambda: 21 * 2)
        assert outcome.ok
        assert outcome.value == 42
        assert outcome.attempts == 1
        assert runner.degradations == []

    def test_raising_stage_is_captured(self):
        runner = StageRunner()
        outcome = runner.run("work", lambda: 1 / 0)
        assert outcome.status == "error"
        assert outcome.error_type == "ZeroDivisionError"
        assert "ZeroDivisionError" in outcome.traceback
        assert runner.failures == 1

    def test_later_stages_still_run(self):
        runner = StageRunner()
        runner.run("bad", lambda: 1 / 0)
        outcome = runner.run("good", lambda: "fine")
        assert outcome.ok
        assert [o.status for o in runner.outcomes] == ["error", "ok"]

    def test_degradations_are_jsonable(self):
        import json

        runner = StageRunner()
        runner.run("bad", lambda: 1 / 0)
        text = json.dumps(runner.degradations)
        assert "ZeroDivisionError" in text


class TestRetries:
    def test_transient_fault_retried_until_success(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise ConvergenceError("not yet")
            return "converged"

        runner = StageRunner(ExecutionPolicy(max_retries=2, sleep=no_sleep))
        outcome = runner.run("fit", flaky)
        assert outcome.ok
        assert outcome.value == "converged"
        assert outcome.attempts == 3

    def test_retry_exhaustion_reported(self):
        def always_fails():
            raise ConvergenceError("never")

        runner = StageRunner(ExecutionPolicy(max_retries=2, sleep=no_sleep))
        outcome = runner.run("fit", always_fails)
        assert outcome.status == "error"
        assert outcome.error_type == "RetryExhaustedError"
        assert outcome.attempts == 3

    def test_non_transient_fault_not_retried(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise KeyError("config")

        runner = StageRunner(ExecutionPolicy(max_retries=5, sleep=no_sleep))
        outcome = runner.run("fit", broken)
        assert calls["n"] == 1
        assert outcome.error_type == "KeyError"

    def test_backoff_sleeps_grow(self):
        slept = []
        policy = ExecutionPolicy(
            max_retries=3, backoff_base=0.1, backoff_factor=2.0,
            backoff_cap=10.0, sleep=slept.append,
        )

        def always_fails():
            raise ConvergenceError("never")

        StageRunner(policy).run("fit", always_fails)
        assert slept == pytest.approx([0.1, 0.2, 0.4])


class TestDeadlines:
    def test_hang_cut_off(self, fault_injector):
        fault_injector.inject_hang("slow", seconds=30.0)
        runner = StageRunner(
            ExecutionPolicy(deadline=0.2), faults=fault_injector
        )
        outcome = runner.run("slow", lambda: "never seen")
        assert outcome.status == "timeout"
        assert outcome.error_type == "StageTimeoutError"
        assert outcome.elapsed < 5.0

    def test_fast_stage_unaffected_by_deadline(self):
        runner = StageRunner(ExecutionPolicy(deadline=5.0))
        outcome = runner.run("quick", lambda: 7)
        assert outcome.ok
        assert outcome.value == 7

    def test_exception_inside_deadline_thread_relayed(self):
        runner = StageRunner(ExecutionPolicy(deadline=5.0))
        outcome = runner.run("bad", lambda: 1 / 0)
        assert outcome.status == "error"
        assert outcome.error_type == "ZeroDivisionError"

    def test_timeout_error_carries_stage_and_deadline(self):
        try:
            raise StageTimeoutError("m", stage="s", deadline=1.5)
        except StageTimeoutError as exc:
            assert exc.stage == "s"
            assert exc.deadline == 1.5


class TestBudgets:
    def test_fail_fast_raises_immediately(self):
        runner = StageRunner(ExecutionPolicy(fail_fast=True))
        with pytest.raises(DegradedRunError) as info:
            runner.run("bad", lambda: 1 / 0)
        assert info.value.outcomes[0]["stage"] == "bad"

    def test_failure_budget_allows_then_aborts(self):
        runner = StageRunner(ExecutionPolicy(max_failures=2))
        runner.run("bad1", lambda: 1 / 0)
        runner.run("bad2", lambda: 1 / 0)
        with pytest.raises(DegradedRunError, match="budget"):
            runner.run("bad3", lambda: 1 / 0)

    def test_ok_stages_do_not_consume_budget(self):
        runner = StageRunner(ExecutionPolicy(max_failures=1))
        for _ in range(5):
            runner.run("good", lambda: 1)
        runner.run("bad", lambda: 1 / 0)
        assert runner.failures == 1


class TestFaultWiring:
    def test_injected_error_fires_once(self, fault_injector):
        fault_injector.inject_error("stage", RuntimeError("chaos"), times=1)
        runner = StageRunner(faults=fault_injector)
        first = runner.run("stage", lambda: "ok")
        second = runner.run("stage", lambda: "ok")
        assert first.status == "error"
        assert second.ok

    def test_injected_transient_fault_retried(self, fault_injector):
        fault_injector.inject_error(
            "fit", lambda: ConvergenceError("transient"), times=2
        )
        runner = StageRunner(
            ExecutionPolicy(max_retries=3, sleep=no_sleep),
            faults=fault_injector,
        )
        outcome = runner.run("fit", lambda: "done")
        assert outcome.ok
        assert outcome.attempts == 3

    def test_corruption_applied_to_value(self, fault_injector):
        fault_injector.inject_corruption("stage", lambda v: None, times=1)
        runner = StageRunner(faults=fault_injector)
        outcome = runner.run("stage", lambda: {"real": "value"})
        assert outcome.ok
        assert outcome.value is None
