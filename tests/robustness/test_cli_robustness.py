"""CLI-level tests for the execution-policy flags and exit codes."""

import pytest

import repro.cli as cli
from repro.cli import EXIT_DEGRADED, main
from repro.robustness import FaultInjector


@pytest.fixture
def clean_csv(tmp_path, capsys):
    out = tmp_path / "clean.csv"
    assert main(["generate", "--workload", "hiring", "--n", "2500",
                 "--seed", "47", "--out", str(out)]) == 0
    capsys.readouterr()
    return out


@pytest.fixture
def intersectional_csv(tmp_path, capsys):
    out = tmp_path / "ix.csv"
    assert main(["generate", "--workload", "intersectional", "--n", "1200",
                 "--seed", "5", "--out", str(out)]) == 0
    capsys.readouterr()
    return out


class TestPolicyFlags:
    def test_audit_accepts_policy_flags(self, clean_csv, capsys):
        code = main(["audit", "--data", str(clean_csv),
                     "--tolerance", "0.1", "--deadline", "30",
                     "--retries", "2"])
        assert code == 0

    def test_policy_from_args_none_when_default(self, clean_csv):
        parser = cli.build_parser()
        args = parser.parse_args(["audit", "--data", str(clean_csv)])
        assert cli._policy_from_args(args) is None

    def test_policy_from_args_builds_policy(self, clean_csv):
        parser = cli.build_parser()
        args = parser.parse_args([
            "audit", "--data", str(clean_csv),
            "--deadline", "1.5", "--retries", "3", "--fail-fast",
        ])
        policy = cli._policy_from_args(args)
        assert policy.deadline == 1.5
        assert policy.max_retries == 3
        assert policy.fail_fast


class TestDegradedExitCode:
    def test_audit_completed_degraded_exits_3(
        self, clean_csv, capsys, monkeypatch
    ):
        real = cli.FairnessAudit

        def with_chaos(dataset, **kwargs):
            injector = FaultInjector()
            injector.inject_error(
                "audit:sex:demographic_parity", RuntimeError("chaos")
            )
            return real(dataset, faults=injector, **kwargs)

        monkeypatch.setattr(cli, "FairnessAudit", with_chaos)
        code = main(["audit", "--data", str(clean_csv),
                     "--tolerance", "0.1"])
        assert code == EXIT_DEGRADED
        assert "ERROR" in capsys.readouterr().out

    def test_violations_outrank_degradation(
        self, clean_csv, capsys, monkeypatch
    ):
        real = cli.FairnessAudit

        def with_chaos(dataset, **kwargs):
            injector = FaultInjector()
            injector.inject_error(
                "audit:sex:treatment_equality", RuntimeError("chaos")
            )
            return real(dataset, faults=injector, **kwargs)

        monkeypatch.setattr(cli, "FairnessAudit", with_chaos)
        # absurdly tight tolerance: guaranteed violations AND an error
        code = main(["audit", "--data", str(clean_csv),
                     "--tolerance", "0.0001"])
        assert code == 1

    def test_workflow_degraded_exits_3(
        self, clean_csv, capsys, monkeypatch
    ):
        import repro.workflow as workflow_module

        real = workflow_module.run_compliance_workflow

        def with_chaos(dataset, profile, **kwargs):
            injector = FaultInjector()
            injector.inject_error(
                "risk_flags", RuntimeError("chaos")
            )
            return real(dataset, profile, faults=injector, **kwargs)

        monkeypatch.setattr(
            workflow_module, "run_compliance_workflow", with_chaos
        )
        code = main(["workflow", "--data", str(clean_csv),
                     "--tolerance", "0.1"])
        assert code == EXIT_DEGRADED

    def test_fail_fast_abort_exits_2(self, clean_csv, capsys, monkeypatch):
        real = cli.FairnessAudit

        def with_chaos(dataset, **kwargs):
            injector = FaultInjector()
            injector.inject_error(
                "audit:sex:demographic_parity", RuntimeError("chaos")
            )
            return real(dataset, faults=injector, **kwargs)

        monkeypatch.setattr(cli, "FairnessAudit", with_chaos)
        code = main(["audit", "--data", str(clean_csv),
                     "--tolerance", "0.1", "--fail-fast"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestSubgroupsCommand:
    def test_scan_finds_gerrymandered_subgroup(
        self, intersectional_csv, capsys
    ):
        code = main(["subgroups", "--data", str(intersectional_csv)])
        out = capsys.readouterr().out
        assert code == 1  # intersectional workload hides subgroup bias
        assert "gender=" in out and "race=" in out

    def test_checkpoint_and_resume(self, intersectional_csv, tmp_path, capsys):
        ckpt = tmp_path / "scan.ckpt.json"
        first = main(["subgroups", "--data", str(intersectional_csv),
                      "--checkpoint", str(ckpt), "--checkpoint-every", "2"])
        out_first = capsys.readouterr().out
        assert ckpt.exists()
        second = main(["subgroups", "--data", str(intersectional_csv),
                       "--checkpoint", str(ckpt), "--resume"])
        out_second = capsys.readouterr().out
        assert first == second
        assert out_first == out_second

    def test_corrupt_checkpoint_exits_2(
        self, intersectional_csv, tmp_path, capsys
    ):
        ckpt = tmp_path / "scan.ckpt.json"
        main(["subgroups", "--data", str(intersectional_csv),
              "--checkpoint", str(ckpt)])
        capsys.readouterr()
        text = ckpt.read_text()
        ckpt.write_text(text[: len(text) // 2])
        code = main(["subgroups", "--data", str(intersectional_csv),
                     "--checkpoint", str(ckpt), "--resume"])
        assert code == 2
        assert "byte offset" in capsys.readouterr().err


class TestHardenedIO:
    def test_truncated_csv_reports_path_and_offset(
        self, clean_csv, capsys
    ):
        text = clean_csv.read_text()
        clean_csv.write_text(text[: int(len(text) * 0.8)])
        code = main(["audit", "--data", str(clean_csv)])
        assert code == 2
        err = capsys.readouterr().err
        assert str(clean_csv) in err
        assert "byte offset" in err

    def test_corrupt_schema_reports_path_and_offset(
        self, clean_csv, capsys
    ):
        sidecar = clean_csv.with_suffix(clean_csv.suffix + ".schema.json")
        with open(sidecar, "a") as stream:
            stream.write("{garbage")
        code = main(["audit", "--data", str(clean_csv)])
        assert code == 2
        err = capsys.readouterr().err
        assert "schema" in err
        assert "byte offset" in err
