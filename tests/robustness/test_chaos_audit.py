"""Chaos tests: the audit battery under injected faults.

Asserts the ISSUE's guarantees at the :class:`FairnessAudit` layer — a
raising metric becomes a ``status="error"`` finding with captured
traceback instead of aborting the battery, transient faults are retried,
hangs are cut off by the deadline, and fail-closed policies abort.
"""

import json

import pytest

from repro.core import FairnessAudit
from repro.core.serialize import report_to_dict, report_to_json
from repro.data import make_hiring
from repro.exceptions import ConvergenceError, DegradedRunError
from repro.robustness import ExecutionPolicy


@pytest.fixture(scope="module")
def hiring():
    return make_hiring(n=1200, direct_bias=1.5, random_state=11)


class TestFaultIsolation:
    def test_raising_metric_becomes_error_finding(self, hiring, fault_injector):
        fault_injector.inject_error(
            "audit:sex:demographic_parity", RuntimeError("metric blew up")
        )
        report = FairnessAudit(hiring, faults=fault_injector).run()
        finding = report.finding("sex", "demographic_parity")
        assert finding.status == "error"
        assert "RuntimeError" in finding.reason
        assert "metric blew up" in finding.traceback

    def test_rest_of_battery_still_evaluates(self, hiring, fault_injector):
        fault_injector.inject_error(
            "audit:sex:demographic_parity", RuntimeError("boom")
        )
        report = FairnessAudit(hiring, faults=fault_injector).run()
        others = [
            f for f in report.findings
            if f.metric != "demographic_parity"
        ]
        assert any(f.status == "ok" for f in others)
        assert len(report.errors()) == 1

    def test_error_recorded_in_degradations(self, hiring, fault_injector):
        fault_injector.inject_error(
            "audit:sex:disparate_impact_ratio", RuntimeError("boom")
        )
        report = FairnessAudit(hiring, faults=fault_injector).run()
        assert report.degraded
        stages = [d["stage"] for d in report.degradations]
        assert "audit:sex:disparate_impact_ratio" in stages

    def test_clean_run_not_degraded(self, hiring):
        report = FairnessAudit(hiring).run()
        assert not report.degraded
        assert report.errors() == []


class TestRetries:
    def test_transient_fault_retried_to_success(self, hiring, fault_injector):
        fault_injector.inject_error(
            "audit:sex:equal_opportunity",
            lambda: ConvergenceError("transient"),
            times=2,
        )
        policy = ExecutionPolicy(max_retries=3, sleep=lambda s: None)
        report = FairnessAudit(
            hiring, policy=policy, faults=fault_injector
        ).run()
        # the battery as a whole is clean of errors: retries absorbed it
        assert report.errors() == []
        assert fault_injector.fired_count() == 2

    def test_exhausted_retries_surface(self, hiring, fault_injector):
        fault_injector.inject_error(
            "audit:sex:demographic_parity",
            lambda: ConvergenceError("persistent"),
            times=None,
        )
        policy = ExecutionPolicy(max_retries=2, sleep=lambda s: None)
        report = FairnessAudit(
            hiring, policy=policy, faults=fault_injector
        ).run()
        finding = report.finding("sex", "demographic_parity")
        assert finding.status == "error"
        assert "RetryExhaustedError" in finding.reason


class TestDeadlines:
    def test_hanging_metric_cut_off(self, hiring, fault_injector):
        fault_injector.inject_hang(
            "audit:sex:demographic_parity", seconds=30.0
        )
        report = FairnessAudit(
            hiring,
            policy=ExecutionPolicy(deadline=0.25),
            faults=fault_injector,
        ).run()
        finding = report.finding("sex", "demographic_parity")
        assert finding.status == "error"
        assert "StageTimeoutError" in finding.reason
        timeouts = [
            d for d in report.degradations if d["status"] == "timeout"
        ]
        assert len(timeouts) == 1


class TestFailClosed:
    def test_fail_fast_aborts_battery(self, hiring, fault_injector):
        fault_injector.inject_error(
            "audit:sex:demographic_parity", RuntimeError("boom")
        )
        audit = FairnessAudit(
            hiring, policy=ExecutionPolicy.strict(), faults=fault_injector
        )
        with pytest.raises(DegradedRunError):
            audit.run()

    def test_failure_budget_enforced(self, hiring, fault_injector):
        fault_injector.inject_error("audit", RuntimeError("boom"), times=None)
        audit = FairnessAudit(
            hiring,
            policy=ExecutionPolicy(max_failures=2),
            faults=fault_injector,
        )
        with pytest.raises(DegradedRunError, match="budget"):
            audit.run()


class TestReporting:
    def test_markdown_renders_error_findings(self, hiring, fault_injector):
        fault_injector.inject_error(
            "audit:sex:demographic_parity", RuntimeError("boom")
        )
        report = FairnessAudit(hiring, faults=fault_injector).run()
        text = report.to_markdown()
        assert "ERROR" in text
        assert "DEGRADED RUN" in text
        assert "errored" in text

    def test_serialisation_carries_errors(self, hiring, fault_injector):
        fault_injector.inject_error(
            "audit:sex:demographic_parity", RuntimeError("boom")
        )
        report = FairnessAudit(hiring, faults=fault_injector).run()
        payload = report_to_dict(report)
        assert payload["degraded"] is True
        assert payload["counts"]["errors"] == 1
        assert payload["degradations"][0]["stage"] == (
            "audit:sex:demographic_parity"
        )
        json.loads(report_to_json(report))  # round-trips
