"""MonitorConfig: validation, derivation, serialisation, fingerprints."""

from __future__ import annotations

import json
import math

import pytest

from repro.core.config import MONITOR_DETECTORS, AuditConfig, MonitorConfig
from repro.exceptions import AuditError, ValidationError


class TestValidation:
    def test_defaults_are_the_legacy_monitor_settings(self):
        cfg = MonitorConfig()
        assert cfg.window == 500
        assert cfg.drift_threshold == 0.1
        assert cfg.detectors == ("threshold",)
        assert cfg.alpha == 0.05
        assert cfg.horizon == 200

    @pytest.mark.parametrize("window", [0, -1])
    def test_window_must_be_positive(self, window):
        with pytest.raises(ValidationError):
            MonitorConfig(window=window)

    @pytest.mark.parametrize("threshold", [0.0, -0.1, 1.5])
    def test_drift_threshold_range(self, threshold):
        with pytest.raises(AuditError):
            MonitorConfig(drift_threshold=threshold)

    def test_detectors_must_be_known(self):
        with pytest.raises(ValidationError):
            MonitorConfig(detectors=("threshold", "psychic"))

    def test_detectors_must_be_nonempty(self):
        with pytest.raises(AuditError, match="at least one"):
            MonitorConfig(detectors=())

    def test_detectors_must_be_unique(self):
        with pytest.raises(AuditError, match="duplicate"):
            MonitorConfig(detectors=("cusum", "cusum"))

    def test_every_canonical_detector_is_accepted(self):
        cfg = MonitorConfig(detectors=MONITOR_DETECTORS)
        assert cfg.detectors == ("threshold", "spending", "cusum")

    def test_alpha_is_a_probability(self):
        with pytest.raises(ValidationError):
            MonitorConfig(alpha=1.5)

    def test_horizon_must_be_positive(self):
        with pytest.raises(ValidationError):
            MonitorConfig(horizon=0)

    def test_cusum_parameters_validated(self):
        with pytest.raises(ValidationError):
            MonitorConfig(cusum_k=-0.1)
        with pytest.raises(AuditError):
            MonitorConfig(cusum_h=0.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            MonitorConfig().window = 10


class TestDerivedParameters:
    def test_cusum_defaults_derive_from_the_threshold(self):
        cfg = MonitorConfig(drift_threshold=0.2)
        assert cfg.resolved_cusum_k() == pytest.approx(0.1)
        assert cfg.resolved_cusum_h() == pytest.approx(0.4)

    def test_explicit_cusum_values_win(self):
        cfg = MonitorConfig(cusum_k=0.01, cusum_h=0.3)
        assert cfg.resolved_cusum_k() == 0.01
        assert cfg.resolved_cusum_h() == 0.3

    def test_spending_allowances_sum_to_alpha_over_the_horizon(self):
        cfg = MonitorConfig(alpha=0.05, horizon=20)
        total = sum(cfg.spending_allowance(k) for k in range(1, 21))
        # Pocock spend at t=1 is alpha * ln(1 + (e-1)) = alpha exactly
        assert total == pytest.approx(cfg.alpha)

    def test_spending_allowances_decrease(self):
        cfg = MonitorConfig(alpha=0.05, horizon=10)
        allowances = [cfg.spending_allowance(k) for k in range(1, 11)]
        assert all(a > 0 for a in allowances)
        assert allowances == sorted(allowances, reverse=True)

    def test_spending_cycle_restarts_past_the_horizon(self):
        cfg = MonitorConfig(horizon=5)
        assert cfg.spending_allowance(6) == cfg.spending_allowance(1)
        assert cfg.spending_allowance(12) == cfg.spending_allowance(2)

    def test_first_allowance_matches_the_pocock_curve(self):
        cfg = MonitorConfig(alpha=0.05, horizon=100)
        expected = 0.05 * math.log(1 + (math.e - 1) / 100)
        assert cfg.spending_allowance(1) == pytest.approx(expected)

    def test_look_must_be_positive(self):
        with pytest.raises(AuditError):
            MonitorConfig().spending_allowance(0)


class TestSerialisation:
    def test_round_trip(self):
        cfg = MonitorConfig(
            window=64, drift_threshold=0.2,
            detectors=("threshold", "cusum"),
            alpha=0.01, horizon=50, cusum_k=0.02, cusum_h=0.4,
        )
        clone = MonitorConfig.from_dict(
            json.loads(json.dumps(cfg.to_dict()))
        )
        assert clone == cfg

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(AuditError, match="unknown MonitorConfig"):
            MonitorConfig.from_dict({"window": 10, "widnow": 20})

    def test_replace_returns_a_new_validated_config(self):
        cfg = MonitorConfig()
        other = cfg.replace(window=128)
        assert other.window == 128
        assert cfg.window == 500
        with pytest.raises(AuditError):
            cfg.replace(drift_threshold=0.0)

    def test_fingerprint_is_stable_and_sensitive(self):
        a, b = MonitorConfig(), MonitorConfig()
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != a.replace(window=64).fingerprint()


class TestAuditConfigIntegration:
    def test_audit_config_coerces_monitor_dicts(self):
        cfg = AuditConfig(monitor={"window": 32, "detectors": ["cusum"]})
        assert isinstance(cfg.monitor, MonitorConfig)
        assert cfg.monitor.window == 32
        assert cfg.monitor.detectors == ("cusum",)

    def test_audit_config_rejects_non_monitor_values(self):
        with pytest.raises(AuditError):
            AuditConfig(monitor="window=32")

    def test_monitor_omitted_from_to_dict_when_unset(self):
        assert "monitor" not in AuditConfig().to_dict()

    def test_audit_config_round_trip_carries_the_monitor(self):
        cfg = AuditConfig(monitor=MonitorConfig(window=77))
        clone = AuditConfig.from_dict(
            json.loads(json.dumps(cfg.to_dict()))
        )
        assert clone.monitor == cfg.monitor
        assert clone.fingerprint() == cfg.fingerprint()

    def test_monitor_changes_the_audit_fingerprint(self):
        assert (
            AuditConfig().fingerprint()
            != AuditConfig(monitor=MonitorConfig()).fingerprint()
        )
