"""The O(cells) window scorer is bit-identical to the materialised audit.

``MonitorFleet._evaluate`` scores eligible windows straight from the
cell delta (:meth:`_evaluate_cells`) instead of materialising rows and
re-running the full audit.  These tests force the slow path by nulling
``fleet._battery`` and require the two scorers to produce *identical*
window dictionaries, drift events, and look counters — every float bit
for bit — across the regimes that exercise each metric's skip rules.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import AuditConfig, MonitorConfig
from repro.monitor import MonitorFleet


def _feed(n, seed, *, race=True, bias=0.3):
    rng = np.random.default_rng(seed)
    sex = np.where(rng.random(n) < 0.5, "female", "male")
    cols = {"sex": sex}
    if race:
        cols["race"] = rng.choice(np.array(["a", "b", "c", "d"]), size=n)
    y = (rng.random(n) < 0.5).astype(int)
    p = y.copy()
    p[(sex == "female") & (rng.random(n) < bias)] = 0
    return y, p, cols


def _single_group():
    y = np.ones(60, dtype=int)
    return y, np.zeros(60, dtype=int), {"sex": np.array(["only"] * 60)}


def _no_positive_group():
    # the "f" group has no actual positives: equal_opportunity and
    # equalized_odds must be skipped for the attribute, exactly as the
    # materialised audit skips them via InsufficientDataError
    rng = np.random.default_rng(3)
    sex = np.array(["f"] * 40 + ["m"] * 40)
    y = np.concatenate([np.zeros(40, dtype=int), rng.integers(0, 2, 40)])
    return y, rng.integers(0, 2, 80), {"sex": sex}


def _bool_int_groups():
    rng = np.random.default_rng(4)
    cols = {
        "flag": rng.random(300) < 0.4,
        "grade": rng.integers(0, 3, 300),
    }
    return rng.integers(0, 2, 300), rng.integers(0, 2, 300), cols


REGIMES = {
    "default_battery": dict(
        kwargs=dict(
            protected=["sex", "race"],
            config=AuditConfig(),
            monitor=MonitorConfig(
                window=150, drift_threshold=0.05,
                detectors=("threshold", "spending", "cusum"), horizon=8,
            ),
        ),
        feeds={f"s{i}": _feed(700, i) for i in range(3)},
    ),
    "dp_only": dict(
        kwargs=dict(
            protected=["sex"],
            config=AuditConfig(metrics=("demographic_parity",)),
            monitor=MonitorConfig(window=100),
        ),
        feeds={"s": _feed(500, 9, race=False)},
    ),
    "audits_labels": dict(
        kwargs=dict(
            protected=["sex", "race"], config=AuditConfig(),
            audits_labels=True, monitor=MonitorConfig(window=120),
        ),
        feeds={
            "s": (_feed(600, 10)[0], None, _feed(600, 10)[2]),
        },
    ),
    "label_none": dict(
        kwargs=dict(
            protected=["sex"], config=AuditConfig(), label=None,
            monitor=MonitorConfig(window=90),
        ),
        feeds={
            "s": (None, _feed(400, 11, race=False)[1],
                  _feed(400, 11, race=False)[2]),
        },
    ),
    "single_group": dict(
        kwargs=dict(
            protected=["sex"], config=AuditConfig(),
            monitor=MonitorConfig(window=30),
        ),
        feeds={"s": _single_group()},
    ),
    "no_positive_group": dict(
        kwargs=dict(
            protected=["sex"], config=AuditConfig(),
            monitor=MonitorConfig(window=40),
        ),
        feeds={"s": _no_positive_group()},
    ),
    "bool_int_groups": dict(
        kwargs=dict(
            protected=["flag", "grade"], config=AuditConfig(),
            monitor=MonitorConfig(window=75),
        ),
        feeds={"s": _bool_int_groups()},
    ),
}


def _run(kwargs, feeds, *, fast):
    fleet = MonitorFleet(**kwargs)
    if not fast:
        fleet._battery = None
    for stream, (y, p, prot) in feeds.items():
        kw = {}
        if y is not None:
            kw["y_true"] = y
        if p is not None:
            kw["predictions"] = p
        fleet.observe(stream, protected=prot, **kw)
    fleet.flush()
    out = {}
    for name in fleet.stream_names:
        state = fleet.stream(name)
        out[name] = {
            "windows": [w.to_dict() for w in state.windows],
            "events": [e.to_dict() for e in state.drift_events],
            "looks": dict(state.looks),
        }
    return out


class TestBitIdenticalScoring:
    @pytest.mark.parametrize("regime", sorted(REGIMES))
    def test_fast_and_materialised_paths_agree(self, regime):
        spec = REGIMES[regime]
        fast = _run(spec["kwargs"], spec["feeds"], fast=True)
        slow = _run(spec["kwargs"], spec["feeds"], fast=False)
        assert json.dumps(fast, sort_keys=True) == json.dumps(
            slow, sort_keys=True
        )


class TestEligibility:
    def test_default_config_is_eligible(self):
        fleet = MonitorFleet(["sex"], config=AuditConfig())
        assert fleet._battery == AuditConfig().battery()

    def test_strata_disables_the_fast_path(self):
        fleet = MonitorFleet(
            ["sex"], config=AuditConfig(strata="region")
        )
        assert fleet._battery is None

    def test_non_binary_outcomes_defer_to_the_materialised_audit(self):
        fleet = MonitorFleet(
            ["sex"], config=AuditConfig(metrics=("demographic_parity",)),
            monitor=MonitorConfig(window=30),
        )
        assert fleet._battery is not None
        state = fleet.add_stream("s")
        state.acc.ingest(
            y_true=np.array([1, 0]),
            predictions=np.array([2, 0]),
            protected={"sex": np.array(["a", "b"])},
        )
        delta = state.acc.diff(state.base)
        assert fleet._evaluate_cells(delta) is None
