"""Deprecation hygiene: the config-object call paths stay warning-free.

The PR 4 / PR 9 ``_UNSET`` shims keep legacy per-keyword call forms
alive behind a :class:`DeprecationWarning`.  This suite pins both
directions: the modern public surface — including every monitoring
entry point — runs clean under ``error::DeprecationWarning``, and the
shims themselves still warn (so nothing silently un-deprecates).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import audit
from repro.core.audit import FairnessAudit
from repro.core.config import AuditConfig, MonitorConfig
from repro.core.criteria import UseCaseProfile
from repro.data import make_hiring
from repro.monitor import MonitorFleet
from repro.streaming import FairnessMonitor
from repro.subgroup.auditor import audit_subgroups
from repro.workflow import run_compliance_workflow

CFG = AuditConfig(metrics=("demographic_parity",))


@pytest.fixture
def deprecations_are_errors():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        yield


@pytest.fixture
def hiring():
    return make_hiring(n=400, random_state=0)


class TestModernSurfaceIsClean:
    def test_audit_facade(self, deprecations_are_errors, hiring):
        report = audit(hiring, config=AuditConfig(tolerance=0.05))
        assert report.findings

    def test_fairness_audit_with_config(
        self, deprecations_are_errors, hiring
    ):
        report = FairnessAudit(
            hiring, predictions=hiring.labels(), config=AuditConfig()
        ).run()
        assert report.findings

    def test_audit_subgroups_with_scan_config(
        self, deprecations_are_errors, hiring
    ):
        findings = audit_subgroups(hiring.labels(), hiring)
        assert findings

    def test_compliance_workflow_with_config(
        self, deprecations_are_errors, hiring
    ):
        profile = UseCaseProfile(
            name="hygiene", sector="employment", jurisdiction="eu",
            n_protected_attributes=1,
        )
        dossier = run_compliance_workflow(
            hiring, profile, config=AuditConfig()
        )
        assert dossier.verdict

    def test_monitor_wrapper_and_fleet(
        self, deprecations_are_errors, hiring
    ):
        y = hiring.labels()
        sex = hiring.column("sex")
        monitor = FairnessMonitor(["sex"], config=CFG, window=100)
        monitor.observe(y_true=y, predictions=y, protected={"sex": sex})
        monitor.flush()
        fleet = MonitorFleet(
            ["sex"], config=CFG, monitor=MonitorConfig(window=100)
        )
        fleet.observe(
            "live", y_true=y, predictions=y, protected={"sex": sex}
        )
        fleet.flush()
        assert fleet.stream("live").rows_seen == hiring.n_rows

    def test_cli_audit_path(self, deprecations_are_errors, tmp_path, capsys):
        from repro.cli import main
        from repro.data.io import save_dataset

        path = tmp_path / "hiring.csv"
        save_dataset(make_hiring(300, random_state=1), path)
        assert main(["audit", "--data", str(path),
                     "--tolerance", "0.2"]) in (0, 1)
        capsys.readouterr()


class TestShimsStillWarn:
    def test_fairness_audit_legacy_keywords(self, hiring):
        with pytest.warns(DeprecationWarning, match="tolerance"):
            FairnessAudit(
                hiring, predictions=hiring.labels(), tolerance=0.05
            )

    def test_audit_subgroups_legacy_keywords(self, hiring):
        with pytest.warns(DeprecationWarning, match="max_order"):
            audit_subgroups(hiring.labels(), hiring, max_order=2)

    def test_workflow_legacy_keywords(self, hiring):
        profile = UseCaseProfile(
            name="hygiene", sector="employment", jurisdiction="eu",
            n_protected_attributes=1,
        )
        with pytest.warns(DeprecationWarning, match="tolerance"):
            run_compliance_workflow(hiring, profile, tolerance=0.05)
