"""Monitor serve mode: shard spools, the tailing service, HTTP surface."""

from __future__ import annotations

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.core.config import AuditConfig, MonitorConfig
from repro.data import Column, Schema, TabularDataset
from repro.data.io import save_dataset
from repro.data.ooc import pack_dataset
from repro.exceptions import AuditError
from repro.monitor import MonitorFleet, MonitorService, ShardSpool, serve_http

CFG = AuditConfig(metrics=("demographic_parity",))


def _shard_dataset(n, *, bias, seed):
    rng = np.random.default_rng(seed)
    sex = np.where(rng.random(n) < 0.5, "female", "male")
    outcome = (rng.random(n) < 0.5).astype(int)
    decision = outcome.copy()
    deny = (sex == "female") & (rng.random(n) < bias)
    decision[deny] = 0
    schema = Schema((
        Column("sex", kind="categorical", role="protected",
               categories=("female", "male")),
        Column("outcome", kind="binary", role="label"),
        Column("decision", kind="binary", role="prediction"),
    ))
    return TabularDataset(
        schema,
        {"sex": sex, "outcome": outcome, "decision": decision},
    )


def _write_shard(spool_dir, name, dataset):
    spool_dir.mkdir(parents=True, exist_ok=True)
    path = spool_dir / f"{name}.csv"
    save_dataset(dataset, path)
    return path


def _service(root, **kwargs):
    fleet = MonitorFleet(
        ["sex"], config=CFG,
        monitor=MonitorConfig(window=100, drift_threshold=0.1),
        label="outcome",
    )
    kwargs.setdefault("prediction_column", "decision")
    return MonitorService(fleet, root, **kwargs)


class TestShardSpool:
    def test_only_ready_shards_surface(self, tmp_path):
        spool_dir = tmp_path / "live"
        spool_dir.mkdir()
        (spool_dir / "shard-2.csv").write_text("x\n1\n")
        (spool_dir / "shard-1.csv").write_text("x\n1\n")
        (spool_dir / ".shard-3.csv").write_text("x\n1\n")
        (spool_dir / "shard-4.csv.tmp").write_text("x\n1\n")
        (spool_dir / "shard-5.partial").write_text("x\n1\n")
        (spool_dir / "shard-1.csv.schema.json").write_text("{}")
        (spool_dir / "not-packed").mkdir()
        spool = ShardSpool("live", spool_dir)
        assert [p.name for p in spool.poll()] == [
            "shard-1.csv", "shard-2.csv",
        ]

    def test_consumed_shards_never_repeat(self, tmp_path):
        spool_dir = tmp_path / "live"
        spool_dir.mkdir()
        (spool_dir / "shard-1.csv").write_text("x\n1\n")
        spool = ShardSpool("live", spool_dir)
        assert len(spool.poll()) == 1
        assert spool.poll() == []
        (spool_dir / "shard-2.csv").write_text("x\n1\n")
        assert [p.name for p in spool.poll()] == ["shard-2.csv"]

    def test_packed_directories_ready_once_complete(self, tmp_path):
        spool_dir = tmp_path / "live"
        spool_dir.mkdir()
        pack_dataset(
            _shard_dataset(40, bias=0.0, seed=0),
            spool_dir / "shard-1.packed",
        )
        spool = ShardSpool("live", spool_dir)
        assert [p.name for p in spool.poll()] == ["shard-1.packed"]


class TestMonitorService:
    def test_root_must_be_a_directory(self, tmp_path):
        with pytest.raises(AuditError, match="not a directory"):
            _service(tmp_path / "missing")

    def test_prediction_column_consistency(self, tmp_path):
        data_audit = MonitorFleet(
            ["sex"], config=CFG, label="outcome", audits_labels=True
        )
        with pytest.raises(AuditError, match="no prediction column"):
            MonitorService(
                data_audit, tmp_path, prediction_column="decision"
            )
        predicting = MonitorFleet(["sex"], config=CFG, label="outcome")
        with pytest.raises(AuditError, match="prediction_column"):
            MonitorService(predicting, tmp_path)

    def test_scan_once_feeds_every_stream(self, tmp_path):
        _write_shard(
            tmp_path / "checkout", "shard-1",
            _shard_dataset(150, bias=0.0, seed=1),
        )
        _write_shard(
            tmp_path / "signup", "shard-1",
            _shard_dataset(80, bias=0.0, seed=2),
        )
        service = _service(tmp_path)
        rows = service.scan_once()
        assert rows == 230
        assert service.shards_ingested == 2
        fleet = service.fleet
        assert set(fleet.stream_names) == {"checkout", "signup"}
        assert len(fleet.stream("checkout").windows) == 1
        assert fleet.stream("signup").buffered == 80
        # a second scan with nothing new is a no-op
        assert service.scan_once() == 0

    def test_packed_shards_ingest_identically_to_csv(self, tmp_path):
        dataset = _shard_dataset(120, bias=0.3, seed=3)
        _write_shard(tmp_path / "csv", "shard-1", dataset)
        pack_dataset(dataset, tmp_path / "packed" / "shard-1.packed")
        service = _service(tmp_path)
        service.scan_once()
        fleet = service.fleet
        lhs = fleet.flush("csv").to_dict()
        rhs = fleet.flush("packed").to_dict()
        assert lhs == rhs

    def test_service_wide_schema_covers_bare_csv_shards(self, tmp_path):
        dataset = _shard_dataset(60, bias=0.0, seed=4)
        shard = _write_shard(tmp_path / "live", "shard-1", dataset)
        schema = shard.with_suffix(".csv.schema.json")
        shared = tmp_path / "schema.json"
        schema.rename(shared)
        service = _service(tmp_path, schema=shared)
        assert service.scan_once() == 60

    def test_run_stops_on_the_event(self, tmp_path):
        _write_shard(
            tmp_path / "live", "shard-1",
            _shard_dataset(50, bias=0.0, seed=5),
        )
        service = _service(tmp_path, poll_interval=0.01)
        stop = threading.Event()
        timer = threading.Timer(0.1, stop.set)
        timer.start()
        try:
            assert service.run(stop) == 50
        finally:
            timer.cancel()

    def test_status_reports_per_stream_state(self, tmp_path):
        _write_shard(
            tmp_path / "live", "shard-1",
            _shard_dataset(130, bias=0.0, seed=6),
        )
        service = _service(tmp_path)
        service.scan_once()
        status = service.status()
        assert status["status"] == "ok"
        assert status["rows_ingested"] == 130
        assert status["streams"]["live"]["windows"] == 1
        assert status["streams"]["live"]["buffered"] == 30


class TestHTTPSurface:
    @pytest.fixture
    def server(self, tmp_path, registry, bus):
        _write_shard(
            tmp_path / "live", "shard-1",
            _shard_dataset(300, bias=0.0, seed=7),
        )
        service = _service(tmp_path)
        service.scan_once()
        server = serve_http(service)
        yield server
        server.shutdown()

    def _get(self, server, path, headers=None):
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}{path}",
            headers=headers or {},
        )
        with urllib.request.urlopen(request) as response:
            return response.status, dict(response.headers), response.read()

    def test_healthz(self, server):
        status, _, body = self._get(server, "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["streams"]["live"]["windows"] == 3

    def test_metrics_prometheus_and_json(self, server):
        _, headers, body = self._get(server, "/metrics")
        assert "text/plain" in headers["Content-Type"]
        assert (
            'repro_streaming_windows_evaluated_total{stream="live"} 3'
            in body.decode()
        )
        _, _, body = self._get(
            server, "/metrics", {"Accept": "application/json"}
        )
        assert "counters" in json.loads(body)

    def test_events_endpoint_filters(self, server, bus):
        bus.publish("monitor.drift", stream="live", window=0)
        bus.publish("monitor.drift", stream="other", window=1)
        bus.publish("job.failed", stream="live")
        _, _, body = self._get(
            server, "/events?kind=monitor.drift&stream=live"
        )
        payload = json.loads(body)
        assert len(payload["events"]) == 1
        assert payload["events"][0]["payload"]["stream"] == "live"
        assert payload["last_seq"] == 3

    def test_events_rejects_bad_cursor(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            self._get(server, "/events?since=nope")
        assert err.value.code == 400

    def test_unknown_route_404s(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            self._get(server, "/nope")
        assert err.value.code == 404
