"""Sequential drift detectors: alpha-spending, CUSUM, precedence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import MonitorConfig
from repro.monitor import MonitorFleet

from tests.monitor.conftest import CFG

KEY = "sex/demographic_parity"


def _feed(fleet, window_specs, exact_window, stream="s"):
    """Feed one exactly-controlled window per (rate_f, rate_m) spec."""
    for rate_f, rate_m in window_specs:
        y, p, sex = exact_window(rate_f, rate_m)
        fleet.observe(
            stream, y_true=y, predictions=p, protected={"sex": sex}
        )


class TestSpending:
    def _fleet(self, **monitor_kwargs):
        monitor = MonitorConfig(
            window=200, detectors=("spending",), **monitor_kwargs
        )
        return MonitorFleet(["sex"], config=CFG, monitor=monitor)

    def test_null_stream_never_alarms(self, exact_window):
        fleet = self._fleet()
        _feed(fleet, [(0.5, 0.5)] * 20, exact_window)
        assert fleet.stream("s").drift_events == []

    def test_clear_shift_alarms_with_evidence(self, exact_window):
        fleet = self._fleet()
        _feed(fleet, [(0.5, 0.5)] * 3 + [(0.1, 0.5)], exact_window)
        events = fleet.stream("s").drift_events
        assert len(events) == 1
        event = events[0]
        assert event.reason == "spending"
        assert event.window == 3
        assert event.statistic is not None
        assert event.p_value is not None
        assert event.p_value <= fleet.monitor.spending_allowance(3)
        # the Wilson interval brackets the alarming window's rate
        assert event.ci_low <= 0.1 <= event.ci_high

    def test_spending_event_serialises_its_evidence(self, exact_window):
        fleet = self._fleet()
        _feed(fleet, [(0.5, 0.5)] * 3 + [(0.1, 0.5)], exact_window)
        payload = fleet.stream("s").drift_events[0].to_dict()
        assert payload["reason"] == "spending"
        assert set(payload) == {
            "window", "attribute", "metric", "value", "baseline",
            "delta", "reason", "statistic", "p_value", "interval",
        }
        low, high = payload["interval"]
        assert low < high

    def test_marginal_shift_blocked_by_the_per_look_budget(
        self, exact_window
    ):
        # z for 0.44 vs a 0.5 cumulative baseline is ~ -1.2 (p ~ 0.23):
        # a fixed-level 0.05 test would stay quiet too, but crucially
        # the spending allowance per look (~4e-4 at horizon=200) makes
        # even p ~ 0.01 shifts wait for more evidence.
        fleet = self._fleet()
        _feed(fleet, [(0.5, 0.5)] * 3 + [(0.44, 0.5)], exact_window)
        assert fleet.stream("s").drift_events == []

    def test_short_horizon_spends_more_per_look(self, exact_window):
        # the same mid-size shift alarms when the budget concentrates
        # over a 4-window horizon but not over the default 200
        specs = [(0.5, 0.5)] * 3 + [(0.32, 0.5)]
        tight = self._fleet()
        _feed(tight, specs, exact_window)
        loose = self._fleet(horizon=4, alpha=0.05)
        _feed(loose, specs, exact_window)
        assert tight.stream("s").drift_events == []
        assert [e.reason for e in loose.stream("s").drift_events] == [
            "spending"
        ]

    def test_look_counter_is_per_stream(self, exact_window):
        fleet = self._fleet()
        _feed(fleet, [(0.5, 0.5)] * 2, exact_window, stream="a")
        _feed(fleet, [(0.5, 0.5)], exact_window, stream="b")
        assert fleet.stream("a").looks[KEY] == 1
        assert KEY not in fleet.stream("b").looks  # first window = baseline


class TestCusum:
    def test_sustained_subthreshold_drift_is_caught(self, exact_window):
        # a 0.09 gap never crosses the 0.1 threshold detector, but the
        # CUSUM tracker accumulates it across windows
        monitor = MonitorConfig(
            window=200, drift_threshold=0.1,
            detectors=("threshold", "cusum"),
            cusum_k=0.02, cusum_h=0.15,
        )
        fleet = MonitorFleet(["sex"], config=CFG, monitor=monitor)
        _feed(
            fleet,
            [(0.5, 0.5)] * 5 + [(0.41, 0.5)] * 4,
            exact_window,
        )
        events = fleet.stream("s").drift_events
        assert events, "sustained drift escaped the CUSUM tracker"
        assert all(e.reason == "cusum" for e in events)
        assert events[0].statistic is not None

    def test_alarm_resets_the_tracker(self, exact_window):
        monitor = MonitorConfig(
            window=200, drift_threshold=0.1, detectors=("cusum",),
            cusum_k=0.02, cusum_h=0.15,
        )
        fleet = MonitorFleet(["sex"], config=CFG, monitor=monitor)
        _feed(
            fleet,
            [(0.5, 0.5)] * 5 + [(0.41, 0.5)] * 3,
            exact_window,
        )
        state = fleet.stream("s")
        assert len(state.drift_events) == 1
        assert state.cusum_hi[KEY] == 0.0
        assert state.cusum_lo[KEY] == 0.0

    def test_null_stream_never_alarms(self, exact_window):
        monitor = MonitorConfig(
            window=200, detectors=("cusum",), cusum_k=0.02, cusum_h=0.15
        )
        fleet = MonitorFleet(["sex"], config=CFG, monitor=monitor)
        _feed(fleet, [(0.5, 0.5)] * 30, exact_window)
        assert fleet.stream("s").drift_events == []

    def test_two_sided(self, exact_window):
        # drifts in either direction accumulate on their own side
        monitor = MonitorConfig(
            window=200, detectors=("cusum",), cusum_k=0.0, cusum_h=0.05
        )
        fleet = MonitorFleet(["sex"], config=CFG, monitor=monitor)
        _feed(
            fleet,
            [(0.4, 0.5)] * 3 + [(0.48, 0.5)] * 3,
            exact_window,
        )
        assert fleet.stream("s").drift_events


class TestPrecedenceAndBaselines:
    def test_one_event_per_window_attributed_by_canonical_order(
        self, exact_window
    ):
        # a huge jump trips every detector; only one event fires and
        # it is attributed to "threshold" (first in canonical order)
        monitor = MonitorConfig(
            window=200, drift_threshold=0.1,
            detectors=("cusum", "spending", "threshold"),
            horizon=4,
        )
        fleet = MonitorFleet(["sex"], config=CFG, monitor=monitor)
        _feed(fleet, [(0.5, 0.5)] * 3 + [(0.05, 0.5)], exact_window)
        events = fleet.stream("s").drift_events
        assert len(events) == 1
        assert events[0].reason == "threshold"
        # threshold events keep the legacy byte-exact serialisation
        assert set(events[0].to_dict()) == {
            "window", "attribute", "metric", "value", "baseline", "delta",
        }

    def test_first_window_is_always_baseline(self, exact_window):
        monitor = MonitorConfig(
            window=200, detectors=("threshold", "spending", "cusum"),
            horizon=4,
        )
        fleet = MonitorFleet(["sex"], config=CFG, monitor=monitor)
        _feed(fleet, [(0.05, 0.95)], exact_window)
        (window,) = fleet.stream("s").windows
        assert not window.drifted

    def test_threshold_only_fleet_matches_legacy_numbers(
        self, exact_window
    ):
        monitor = MonitorConfig(window=200, drift_threshold=0.1)
        fleet = MonitorFleet(["sex"], config=CFG, monitor=monitor)
        _feed(fleet, [(0.5, 0.5), (0.5, 0.5), (0.2, 0.5)], exact_window)
        (event,) = fleet.stream("s").drift_events
        assert event.reason == "threshold"
        assert event.value == pytest.approx(0.3)
        assert event.baseline == pytest.approx(0.0)
        assert event.delta == pytest.approx(0.3)

    def test_gap_baseline_uses_the_running_mean(self, exact_window):
        monitor = MonitorConfig(window=200, drift_threshold=0.5)
        fleet = MonitorFleet(["sex"], config=CFG, monitor=monitor)
        _feed(
            fleet, [(0.5, 0.5), (0.3, 0.5), (0.3, 0.5)], exact_window
        )
        history = fleet.stream("s").gap_history[KEY]
        assert history == pytest.approx([0.0, 0.2, 0.2])


class TestBatchedResolution:
    def test_many_streams_resolve_in_one_pass_identically(
        self, exact_window
    ):
        """Windows closed together batch; results must not depend on it."""
        monitor = MonitorConfig(
            window=200, detectors=("spending",), horizon=4
        )
        specs = [(0.5, 0.5)] * 3 + [(0.1, 0.5)]

        batched = MonitorFleet(["sex"], config=CFG, monitor=monitor)
        # queue all four windows on each stream, then let one observe
        # trigger the poll that closes all of them together
        for stream in ("a", "b", "c"):
            state = batched.add_stream(stream)
            for rate_f, rate_m in specs:
                y, p, sex = exact_window(rate_f, rate_m)
                state.queue.append(batched._encode_chunk({
                    "sex": sex,
                    "__label__": np.asarray(y),
                    "__prediction__": np.asarray(p),
                }))
                state.buffered += len(y)
        batched.poll()

        serial = MonitorFleet(["sex"], config=CFG, monitor=monitor)
        for stream in ("a", "b", "c"):
            _feed(serial, specs, exact_window, stream=stream)

        for stream in ("a", "b", "c"):
            assert [
                w.to_dict() for w in batched.stream(stream).windows
            ] == [w.to_dict() for w in serial.stream(stream).windows]
            assert [e.reason for e in batched.stream(stream).drift_events] \
                == ["spending"]
