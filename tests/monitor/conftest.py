"""Shared fixtures for the monitoring-fleet test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import AuditConfig
from repro.observability.events import use_event_bus
from repro.observability.metrics import MetricsRegistry, use_metrics

#: one-metric battery keeps window audits fast and gap keys predictable.
CFG = AuditConfig(metrics=("demographic_parity",))


@pytest.fixture
def registry():
    """A private metrics registry scoped to the test."""
    with use_metrics(MetricsRegistry()) as reg:
        yield reg


@pytest.fixture
def bus():
    """A private event bus scoped to the test."""
    with use_event_bus() as scoped:
        yield scoped


@pytest.fixture
def population():
    """Labels, predictions, and groups with a controllable selection gap."""

    def build(n, *, bias, seed):
        rng = np.random.default_rng(seed)
        sex = np.where(rng.random(n) < 0.5, "female", "male")
        y = (rng.random(n) < 0.5).astype(int)
        p = y.copy()
        deny = (sex == "female") & (rng.random(n) < bias)
        p[deny] = 0
        return y, p, sex

    return build


@pytest.fixture
def exact_window():
    """One window with *exact* per-group selection rates.

    Deterministic by construction — ``rate_f``/``rate_m`` are hit to
    the row, so the demographic-parity gap of the window is known in
    advance and sequential-detector tests need no random tuning.
    """

    def build(rate_f, rate_m, *, per_group=100):
        pos_f = round(rate_f * per_group)
        pos_m = round(rate_m * per_group)
        sex = np.array(["female"] * per_group + ["male"] * per_group)
        p = np.concatenate([
            np.r_[np.ones(pos_f), np.zeros(per_group - pos_f)],
            np.r_[np.ones(pos_m), np.zeros(per_group - pos_m)],
        ]).astype(int)
        y = np.ones(2 * per_group, dtype=int)
        return y, p, sex

    return build
