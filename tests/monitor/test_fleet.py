"""MonitorFleet: multiplexing, serial equivalence, labeled telemetry."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import AuditConfig, MonitorConfig
from repro.exceptions import AuditError
from repro.monitor import MonitorFleet
from repro.observability.promfmt import render_prometheus
from repro.streaming import FairnessMonitor

from tests.monitor.conftest import CFG


def _interleave(fleet, feeds, chunk=170):
    """Feed every stream's arrays through one fleet in interleaved chunks."""
    offsets = {name: 0 for name in feeds}
    remaining = dict(feeds)
    while any(offsets[name] < len(feeds[name][0]) for name in feeds):
        for name, (y, p, sex) in remaining.items():
            lo = offsets[name]
            if lo >= len(y):
                continue
            hi = min(lo + chunk, len(y))
            fleet.observe(
                name,
                y_true=y[lo:hi],
                predictions=p[lo:hi],
                protected={"sex": sex[lo:hi]},
            )
            offsets[name] = hi


class TestSerialEquivalence:
    """The acceptance anchor: a fleet must reproduce N serial monitors."""

    def test_fleet_matches_serial_monitors_byte_for_byte(self, population):
        feeds = {
            f"stream-{i}": population(1100, bias=0.3 * (i % 3), seed=i)
            for i in range(5)
        }
        fleet = MonitorFleet(
            ["sex"], config=CFG,
            monitor=MonitorConfig(window=250, drift_threshold=0.05),
        )
        _interleave(fleet, feeds)
        fleet.flush()

        for name, (y, p, sex) in feeds.items():
            serial = FairnessMonitor(
                ["sex"], config=CFG, window=250, drift_threshold=0.05,
                name=name,
            )
            serial.observe(y_true=y, predictions=p, protected={"sex": sex})
            serial.flush()
            state = fleet.stream(name)
            assert json.dumps(
                [w.to_dict() for w in state.windows], sort_keys=True
            ) == json.dumps(
                [w.to_dict() for w in serial.windows], sort_keys=True
            )
            assert [e.to_dict() for e in state.drift_events] == [
                e.to_dict() for e in serial.drift_events
            ]

    def test_chunk_boundaries_do_not_change_results(self, population):
        y, p, sex = population(900, bias=0.4, seed=11)
        results = []
        for chunk in (1, 7, 300, 900):
            fleet = MonitorFleet(
                ["sex"], config=CFG, monitor=MonitorConfig(window=300)
            )
            for lo in range(0, 900, chunk):
                fleet.observe(
                    "s",
                    y_true=y[lo:lo + chunk],
                    predictions=p[lo:lo + chunk],
                    protected={"sex": sex[lo:lo + chunk]},
                )
            results.append(
                [w.to_dict() for w in fleet.stream("s").windows]
            )
        assert all(r == results[0] for r in results)


class TestMultiplexing:
    def test_observe_auto_registers_and_returns_own_windows(self, population):
        fleet = MonitorFleet(
            ["sex"], config=CFG, monitor=MonitorConfig(window=100)
        )
        y, p, sex = population(250, bias=0.0, seed=0)
        closed = fleet.observe(
            "checkout", y_true=y, predictions=p, protected={"sex": sex}
        )
        assert [w.stream for w in closed] == ["checkout", "checkout"]
        assert fleet.stream_names == ("checkout",)
        assert fleet.stream("checkout").buffered == 50

    def test_round_robin_closes_every_ready_stream(self, population):
        fleet = MonitorFleet(
            ["sex"], config=CFG, monitor=MonitorConfig(window=100)
        )
        ya, pa, sexa = population(300, bias=0.0, seed=1)
        # queue three windows on "a" without closing them: build the
        # stream by hand so poll() sees both streams ready at once
        state = fleet.add_stream("a")
        state.queue.append(fleet._encode_chunk(
            {"sex": sexa, "__label__": ya, "__prediction__": pa}
        ))
        state.buffered += 300
        yb, pb, sexb = population(100, bias=0.0, seed=2)
        closed = fleet.observe(
            "b", y_true=yb, predictions=pb, protected={"sex": sexb}
        )
        # one poll closes all four ready windows, a's three plus b's one
        assert len(fleet.stream("a").windows) == 3
        assert len(closed) == 1 and closed[0].stream == "b"

    def test_flush_single_stream_vs_all(self, population):
        fleet = MonitorFleet(
            ["sex"], config=CFG, monitor=MonitorConfig(window=100)
        )
        for name, seed in (("a", 3), ("b", 4)):
            y, p, sex = population(60, bias=0.0, seed=seed)
            fleet.observe(
                name, y_true=y, predictions=p, protected={"sex": sex}
            )
        tail = fleet.flush("a")
        assert tail is not None and tail.n_rows == 60
        assert fleet.flush("a") is None
        rest = fleet.flush()
        assert [w.stream for w in rest] == ["b"]

    def test_unknown_stream_raises(self):
        fleet = MonitorFleet(["sex"], config=CFG)
        with pytest.raises(AuditError, match="unknown stream"):
            fleet.stream("nope")

    def test_stream_names_must_be_nonempty_strings(self):
        fleet = MonitorFleet(["sex"], config=CFG)
        with pytest.raises(AuditError):
            fleet.add_stream("")
        with pytest.raises(AuditError):
            fleet.add_stream(7)

    def test_protected_attributes_required(self):
        with pytest.raises(AuditError, match="protected"):
            MonitorFleet([], config=CFG)

    def test_explicit_monitor_beats_config_monitor(self):
        cfg = AuditConfig(
            metrics=("demographic_parity",),
            monitor=MonitorConfig(window=100),
        )
        fleet = MonitorFleet(
            ["sex"], config=cfg, monitor=MonitorConfig(window=32)
        )
        assert fleet.monitor.window == 32
        assert MonitorFleet(["sex"], config=cfg).monitor.window == 100

    def test_validation_messages_match_the_legacy_monitor(self, population):
        fleet = MonitorFleet(["sex"], config=CFG)
        y, p, sex = population(10, bias=0.0, seed=5)
        with pytest.raises(AuditError, match="protected value arrays"):
            fleet.observe("s", y_true=y, predictions=p)
        with pytest.raises(AuditError, match="missing protected column"):
            fleet.observe("s", y_true=y, predictions=p,
                          protected={"race": sex})
        with pytest.raises(AuditError, match="pass y_true"):
            fleet.observe("s", predictions=p, protected={"sex": sex})
        with pytest.raises(AuditError, match="predictions"):
            fleet.observe("s", y_true=y, protected={"sex": sex})
        with pytest.raises(AuditError, match="share one length"):
            fleet.observe("s", y_true=y[:5], predictions=p,
                          protected={"sex": sex})


class TestTelemetry:
    def test_counters_carry_stream_labels(self, registry, population):
        fleet = MonitorFleet(
            ["sex"], config=CFG, monitor=MonitorConfig(window=100)
        )
        for name, seed in (("live", 6), ("shadow", 7)):
            y, p, sex = population(200, bias=0.0, seed=seed)
            fleet.observe(
                name, y_true=y, predictions=p, protected={"sex": sex}
            )
        assert registry.counter(
            "streaming.windows_evaluated", stream="live"
        ).value == 2
        assert registry.counter(
            "streaming.monitor_rows", stream="shadow"
        ).value == 200
        text = render_prometheus(registry)
        assert 'repro_streaming_windows_evaluated_total{stream="live"} 2' \
            in text

    def test_window_spans_carry_the_stream_label(self, population):
        from repro.observability.trace import Tracer

        spans = []

        class Capture(Tracer):
            def span(self, name, **attrs):
                spans.append((name, attrs))
                return super().span(name, **attrs)

        cfg = AuditConfig(
            metrics=("demographic_parity",), tracer=Capture()
        )
        fleet = MonitorFleet(
            ["sex"], config=cfg, monitor=MonitorConfig(window=100)
        )
        y, p, sex = population(100, bias=0.0, seed=8)
        fleet.observe(
            "live", y_true=y, predictions=p, protected={"sex": sex}
        )
        window_spans = [a for n, a in spans if n == "streaming.window"]
        assert window_spans and window_spans[0]["stream"] == "live"

    def test_drift_events_publish_with_stream_labels(self, bus, population):
        fleet = MonitorFleet(
            ["sex"], config=CFG,
            monitor=MonitorConfig(window=300, drift_threshold=0.1),
        )
        y, p, sex = population(600, bias=0.0, seed=9)
        fleet.observe("live", y_true=y, predictions=p,
                      protected={"sex": sex})
        y2, p2, sex2 = population(300, bias=0.9, seed=10)
        fleet.observe("live", y_true=y2, predictions=p2,
                      protected={"sex": sex2})
        events = bus.since(0, kind="monitor.drift", stream="live")
        assert events
        assert events[0].payload["stream"] == "live"
        assert bus.since(0, kind="monitor.drift", stream="other") == []


class TestReporting:
    def _drifted_fleet(self, population):
        fleet = MonitorFleet(
            ["sex"], config=CFG,
            monitor=MonitorConfig(window=300, drift_threshold=0.1),
        )
        y, p, sex = population(600, bias=0.0, seed=12)
        fleet.observe("live", y_true=y, predictions=p,
                      protected={"sex": sex})
        y2, p2, sex2 = population(300, bias=0.9, seed=13)
        fleet.observe("live", y_true=y2, predictions=p2,
                      protected={"sex": sex2})
        return fleet

    def test_summary_is_json_able(self, population):
        summary = self._drifted_fleet(population).summary()
        parsed = json.loads(json.dumps(summary))
        assert parsed["windows"] == 3
        assert parsed["streams"]["live"]["drift_events"]
        assert parsed["detectors"] == ["threshold"]

    def test_markdown_names_the_drifted_stream(self, population):
        text = self._drifted_fleet(population).markdown()
        assert "## Stream `live`" in text
        assert "demographic_parity" in text
        assert "re-audit" in text

    def test_clean_fleet_markdown_says_representative(self, population):
        fleet = MonitorFleet(["sex"], config=CFG)
        y, p, sex = population(500, bias=0.0, seed=14)
        fleet.observe("live", y_true=y, predictions=p,
                      protected={"sex": sex})
        assert "remains representative" in fleet.markdown()


class TestIngestPlane:
    def test_chunks_stay_numpy_end_to_end(self, population):
        """The data plane must never fall back to Python lists."""
        fleet = MonitorFleet(
            ["sex"], config=CFG, monitor=MonitorConfig(window=500)
        )
        y, p, sex = population(120, bias=0.0, seed=15)
        fleet.observe("s", y_true=y, predictions=p,
                      protected={"sex": sex})
        state = fleet.stream("s")
        for chunk in state.queue:
            assert all(
                isinstance(arr, np.ndarray) for arr in chunk.values()
            )

    def test_fold_counts_every_row(self, population):
        fleet = MonitorFleet(
            ["sex"], config=CFG, monitor=MonitorConfig(window=128)
        )
        y, p, sex = population(1000, bias=0.2, seed=16)
        fleet.observe("s", y_true=y, predictions=p,
                      protected={"sex": sex})
        fleet.flush()
        state = fleet.stream("s")
        assert state.rows_seen == 1000
        assert state.acc.n_rows == 1000
        assert sum(w.n_rows for w in state.windows) == 1000

    def test_empty_observe_is_a_noop(self):
        fleet = MonitorFleet(["sex"], config=CFG)
        closed = fleet.observe(
            "s",
            y_true=np.array([], dtype=int),
            predictions=np.array([], dtype=int),
            protected={"sex": np.array([], dtype=str)},
        )
        assert closed == []
        assert fleet.stream("s").buffered == 0
