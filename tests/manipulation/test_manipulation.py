"""Tests for repro.manipulation (Section IV.E, Dimanov-style concealment)."""

import numpy as np
import pytest

from repro.data import make_hiring
from repro.data.schema import ColumnRole
from repro.exceptions import ValidationError
from repro.manipulation import (
    ConcealmentAttack,
    coefficient_importance,
    explainer_based_audit,
    loco_importance,
    manipulation_report,
    normalize_importances,
    outcome_based_audit,
    permutation_importance,
)
from repro.models import LogisticRegression, Standardizer


@pytest.fixture(scope="module")
def attack_setup():
    """A model trained WITH the sensitive attribute visible, plus a proxy."""
    ds = make_hiring(
        n=3000, direct_bias=2.5, proxy_strength=0.95, random_state=5
    )
    aware = ds.with_role("sex", ColumnRole.FEATURE)
    X = Standardizer().fit_transform(aware.feature_matrix())
    y = aware.labels()
    names = aware.feature_matrix_names()
    sensitive_idx = [
        i for i, name in enumerate(names) if name.startswith("sex=")
    ]
    model = LogisticRegression(max_iter=1200).fit(X, y)
    return ds, X, y, names, sensitive_idx, model


class TestExplainers:
    def test_coefficient_importance_shape(self, attack_setup):
        __, X, __, names, __, model = attack_setup
        imp = coefficient_importance(model)
        assert imp.shape == (X.shape[1],)
        assert np.all(imp >= 0)

    def test_permutation_importance_finds_signal(self):
        rng = np.random.default_rng(0)
        X = rng.normal(0, 1, (800, 3))
        y = (X[:, 0] > 0).astype(int)
        model = LogisticRegression(max_iter=800).fit(X, y)
        imp = permutation_importance(model, X, y, random_state=0)
        assert imp[0] > imp[1] + 0.1
        assert imp[0] > imp[2] + 0.1

    def test_loco_importance_finds_signal(self):
        rng = np.random.default_rng(0)
        X = rng.normal(0, 1, (800, 3))
        y = (X[:, 0] > 0).astype(int)
        imp = loco_importance(
            lambda: LogisticRegression(max_iter=500),
            X[:600], y[:600], X[600:], y[600:],
        )
        assert imp[0] > max(imp[1], imp[2]) + 0.1

    def test_normalize_importances(self):
        shares = normalize_importances([1.0, 3.0])
        np.testing.assert_allclose(shares, [0.25, 0.75])
        np.testing.assert_allclose(normalize_importances([0.0, 0.0]), [0, 0])


class TestConcealmentAttack:
    def test_attack_suppresses_sensitive_weights(self, attack_setup):
        __, X, __, __, sensitive_idx, model = attack_setup
        before_share = normalize_importances(
            coefficient_importance(model)
        )[sensitive_idx].sum()
        concealed = ConcealmentAttack(suppression=50.0).run(
            model, X, sensitive_idx
        )
        assert concealed.sensitive_weight_share() < 0.02
        assert concealed.sensitive_weight_share() < before_share

    def test_attack_preserves_predictions(self, attack_setup):
        __, X, __, __, sensitive_idx, model = attack_setup
        concealed = ConcealmentAttack().run(model, X, sensitive_idx)
        assert concealed.fidelity > 0.92

    def test_attack_preserves_outcome_bias(self, attack_setup):
        ds, X, __, __, sensitive_idx, model = attack_setup
        concealed = ConcealmentAttack().run(model, X, sensitive_idx)
        gap_before, __ = outcome_based_audit(
            model.predict(X), ds.column("sex")
        )
        gap_after, fair_after = outcome_based_audit(
            concealed.model.predict(X), ds.column("sex")
        )
        assert gap_after > 0.5 * gap_before
        assert not fair_after

    def test_unfitted_model_rejected(self):
        with pytest.raises(ValidationError, match="fitted"):
            ConcealmentAttack().run(LogisticRegression(), np.zeros((3, 2)), [0])

    def test_bad_indices_rejected(self, attack_setup):
        __, X, __, __, __, model = attack_setup
        with pytest.raises(ValidationError):
            ConcealmentAttack().run(model, X, [])
        with pytest.raises(ValidationError):
            ConcealmentAttack().run(model, X, [999])


class TestDefense:
    def test_explainer_fooled_outcome_not(self, attack_setup):
        ds, X, __, __, sensitive_idx, model = attack_setup
        concealed = ConcealmentAttack().run(model, X, sensitive_idx)
        report = manipulation_report(
            concealed.model, X, ds.column("sex"), sensitive_idx
        )
        # the paper's IV.E signature: explainer says fair, outcomes say not
        assert report.explainer_verdict_fair
        assert not report.outcome_verdict_fair
        assert report.verdicts_diverge
        assert "MANIPULATION SUSPECTED" in report.summary()

    def test_honest_model_verdicts_agree(self, attack_setup):
        ds, X, __, __, sensitive_idx, model = attack_setup
        report = manipulation_report(
            model, X, ds.column("sex"), sensitive_idx
        )
        # the honest biased model relies on sex visibly: no divergence
        assert not report.verdicts_diverge

    def test_explainer_audit_values(self, attack_setup):
        __, __, __, __, sensitive_idx, model = attack_setup
        share, fair = explainer_based_audit(model, sensitive_idx)
        assert 0.0 <= share <= 1.0
