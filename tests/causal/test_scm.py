"""Tests for repro.causal.scm."""

import numpy as np
import pytest

from repro.causal import StructuralCausalModel, Variable
from repro.exceptions import CausalModelError


def _chain_scm():
    """u -> x -> y with additive noise on x; y = 2x deterministic."""
    return StructuralCausalModel([
        Variable("u", sampler=lambda rng, n: rng.normal(0, 1, n)),
        Variable("a", sampler=lambda rng, n: (rng.random(n) < 0.5).astype(float)),
        Variable("x", parents=("a", "u"),
                 equation=lambda v: 3.0 * v["a"] + v["u"]),
        Variable("y", parents=("x",), equation=lambda v: 2.0 * v["x"]),
    ])


class TestConstruction:
    def test_variable_needs_exactly_one_of_equation_sampler(self):
        with pytest.raises(CausalModelError, match="exactly one"):
            Variable("x")
        with pytest.raises(CausalModelError, match="exactly one"):
            Variable("x", equation=lambda v: v, sampler=lambda r, n: None)

    def test_exogenous_cannot_have_parents(self):
        with pytest.raises(CausalModelError, match="cannot have parents"):
            Variable("x", parents=("y",), sampler=lambda r, n: None)

    def test_unknown_parent_rejected(self):
        with pytest.raises(CausalModelError, match="unknown parent"):
            StructuralCausalModel([
                Variable("x", parents=("ghost",), equation=lambda v: v["ghost"]),
            ])

    def test_cycle_rejected(self):
        with pytest.raises(CausalModelError, match="cycle"):
            StructuralCausalModel([
                Variable("x", parents=("y",), equation=lambda v: v["y"]),
                Variable("y", parents=("x",), equation=lambda v: v["x"]),
            ])

    def test_duplicate_names_rejected(self):
        with pytest.raises(CausalModelError, match="duplicate"):
            StructuralCausalModel([
                Variable("x", sampler=lambda r, n: r.normal(0, 1, n)),
                Variable("x", sampler=lambda r, n: r.normal(0, 1, n)),
            ])

    def test_topological_order(self):
        scm = _chain_scm()
        order = scm.variable_names
        assert order.index("x") > order.index("a")
        assert order.index("y") > order.index("x")

    def test_descendants(self):
        scm = _chain_scm()
        assert scm.descendants("a") == {"x", "y"}
        assert scm.descendants("y") == set()


class TestSampling:
    def test_structural_equations_hold(self):
        scm = _chain_scm()
        values = scm.sample(500, random_state=0)
        np.testing.assert_allclose(
            values["x"], 3.0 * values["a"] + values["u"]
        )
        np.testing.assert_allclose(values["y"], 2.0 * values["x"])

    def test_deterministic_given_seed(self):
        scm = _chain_scm()
        a = scm.sample(100, random_state=7)
        b = scm.sample(100, random_state=7)
        np.testing.assert_allclose(a["y"], b["y"])

    def test_intervention_overrides_equation(self):
        scm = _chain_scm()
        values = scm.intervene(200, {"x": 1.5}, random_state=0)
        np.testing.assert_allclose(values["x"], 1.5)
        np.testing.assert_allclose(values["y"], 3.0)

    def test_intervention_does_not_affect_ancestors(self):
        scm = _chain_scm()
        plain = scm.sample(300, random_state=5)
        dosed = scm.sample(300, random_state=5, interventions={"x": 0.0})
        np.testing.assert_allclose(plain["a"], dosed["a"])
        np.testing.assert_allclose(plain["u"], dosed["u"])

    def test_intervention_array_value(self):
        scm = _chain_scm()
        values = scm.intervene(4, {"x": np.array([1.0, 2.0, 3.0, 4.0])})
        np.testing.assert_allclose(values["y"], [2.0, 4.0, 6.0, 8.0])

    def test_unknown_intervention_target_raises(self):
        with pytest.raises(CausalModelError, match="unknown variable"):
            _chain_scm().intervene(10, {"ghost": 1.0})

    def test_provided_noise_is_used(self):
        scm = _chain_scm()
        noise = {
            "u": np.ones(5),
            "a": np.zeros(5),
        }
        values = scm.sample(5, noise=noise)
        np.testing.assert_allclose(values["x"], 1.0)

    def test_wrong_noise_shape_raises(self):
        scm = _chain_scm()
        with pytest.raises(CausalModelError, match="shape"):
            scm.sample(5, noise={"u": np.ones(3), "a": np.zeros(5)})


class TestAbductionAndCounterfactuals:
    def test_abduction_recovers_noise(self):
        scm = _chain_scm()
        data = scm.sample(300, random_state=0)
        observed = {k: data[k] for k in ("a", "x", "y")}
        noise = scm.abduct(observed)
        np.testing.assert_allclose(noise["u"], data["u"], atol=1e-10)

    def test_abduction_requires_all_endogenous(self):
        scm = _chain_scm()
        data = scm.sample(10, random_state=0)
        with pytest.raises(CausalModelError, match="missing"):
            scm.abduct({"a": data["a"], "x": data["x"]})

    def test_counterfactual_consistency(self):
        # intervening with the factual value reproduces the observation
        scm = _chain_scm()
        data = scm.sample(200, random_state=1)
        observed = {k: data[k] for k in ("a", "x", "y")}
        cf = scm.counterfactual(observed, {"a": data["a"]})
        np.testing.assert_allclose(cf["x"], data["x"], atol=1e-10)
        np.testing.assert_allclose(cf["y"], data["y"], atol=1e-10)

    def test_counterfactual_effect_propagates(self):
        scm = _chain_scm()
        data = scm.sample(200, random_state=2)
        observed = {k: data[k] for k in ("a", "x", "y")}
        cf = scm.counterfactual(observed, {"a": 1.0 - data["a"]})
        # flipping a changes x by ±3 while keeping u fixed
        delta = cf["x"] - data["x"]
        expected = 3.0 * (1.0 - 2.0 * data["a"])
        np.testing.assert_allclose(delta, expected, atol=1e-10)
