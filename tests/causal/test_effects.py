"""Tests for repro.causal.effects — direct vs indirect decomposition."""

import pytest

from repro.causal import biased_hiring_scm, effect_decomposition
from repro.exceptions import CausalModelError

EXPERIENCE_EFFECT = -2.0
SKILL_EFFECT = -8.0


@pytest.fixture(scope="module")
def scm():
    return biased_hiring_scm(
        sex_effect_experience=EXPERIENCE_EFFECT,
        sex_effect_skill=SKILL_EFFECT,
    )


def _feature_predictor(values):
    """Reads only the mediators, never sex."""
    return (
        0.4 * values["experience"] + 0.1 * values["skill_score"] > 9.0
    ).astype(int)


def _direct_predictor(values):
    """Reads sex directly AND the mediators."""
    return (
        0.4 * values["experience"]
        + 0.1 * values["skill_score"]
        - 2.0 * values["sex"]
        > 9.0
    ).astype(int)


class TestDecomposition:
    def test_unaware_predictor_has_zero_nde(self, scm):
        decomp = effect_decomposition(
            scm, "sex", _feature_predictor, n=8000, random_state=0
        )
        assert decomp.natural_direct_effect == pytest.approx(0.0)
        assert decomp.total_effect < -0.05  # females disadvantaged
        assert decomp.natural_indirect_effect == pytest.approx(
            decomp.total_effect
        )
        assert decomp.indirect_share == pytest.approx(1.0)
        assert decomp.dominant_channel() == "indirect"

    def test_direct_predictor_has_nonzero_nde(self, scm):
        decomp = effect_decomposition(
            scm, "sex", _direct_predictor, n=8000, random_state=0
        )
        assert decomp.natural_direct_effect < -0.05
        assert abs(decomp.total_effect) > abs(decomp.natural_direct_effect)

    def test_te_is_sum_of_nde_and_nie(self, scm):
        decomp = effect_decomposition(
            scm, "sex", _direct_predictor, n=4000, random_state=1
        )
        assert decomp.total_effect == pytest.approx(
            decomp.natural_direct_effect + decomp.natural_indirect_effect
        )

    def test_no_causal_effect_no_te(self):
        neutral = biased_hiring_scm(
            sex_effect_experience=0.0, sex_effect_skill=0.0
        )
        decomp = effect_decomposition(
            neutral, "sex", _feature_predictor, n=8000, random_state=0
        )
        assert abs(decomp.total_effect) < 0.02

    def test_direct_only_predictor_dominant_direct(self):
        neutral = biased_hiring_scm(
            sex_effect_experience=0.0, sex_effect_skill=0.0
        )

        def sexist(values):
            return (values["sex"] < 0.5).astype(int)  # hires only males

        decomp = effect_decomposition(
            neutral, "sex", sexist, n=4000, random_state=0
        )
        assert decomp.total_effect == pytest.approx(-1.0)
        assert decomp.dominant_channel() == "direct"
        assert decomp.indirect_share == pytest.approx(0.0, abs=1e-9)

    def test_rates_are_probabilities(self, scm):
        decomp = effect_decomposition(
            scm, "sex", _feature_predictor, n=2000, random_state=2
        )
        assert 0.0 <= decomp.baseline_rate <= 1.0
        assert 0.0 <= decomp.treated_rate <= 1.0

    def test_unknown_protected_raises(self, scm):
        with pytest.raises(CausalModelError, match="unknown protected"):
            effect_decomposition(scm, "ghost", _feature_predictor)

    def test_deterministic_given_seed(self, scm):
        a = effect_decomposition(
            scm, "sex", _feature_predictor, n=2000, random_state=9
        )
        b = effect_decomposition(
            scm, "sex", _feature_predictor, n=2000, random_state=9
        )
        assert a.total_effect == b.total_effect
