"""Tests for counterfactual auditing and the SCM zoo."""

import numpy as np
import pytest

from repro.causal import (
    CounterfactualResult,
    biased_hiring_scm,
    counterfactual_flip_rate,
    generate_counterfactual_pairs,
    law_school_scm,
)
from repro.exceptions import CausalModelError


class TestCounterfactualResult:
    def test_flip_rate(self):
        result = CounterfactualResult(
            np.array([1, 0, 1, 0]), np.array([1, 1, 1, 0]), tolerance=0.0
        )
        assert result.flip_rate == pytest.approx(0.25)
        assert not result.is_fair

    def test_tolerance_allows_small_flips(self):
        result = CounterfactualResult(
            np.array([1, 0, 1, 0]), np.array([1, 1, 1, 0]), tolerance=0.3
        )
        assert result.is_fair

    def test_shape_mismatch_rejected(self):
        with pytest.raises(CausalModelError, match="equal shape"):
            CounterfactualResult(np.array([1, 0]), np.array([1]), 0.0)


class TestHiringScm:
    def test_sex_effect_shifts_features(self):
        scm = biased_hiring_scm(sex_effect_experience=-2.0)
        data = scm.sample(20000, random_state=0)
        female = data["sex"] == 1.0
        gap = data["experience"][~female].mean() - data["experience"][female].mean()
        assert gap == pytest.approx(2.0, abs=0.1)

    def test_zero_effect_no_gap(self):
        scm = biased_hiring_scm(sex_effect_experience=0.0, sex_effect_skill=0.0)
        data = scm.sample(20000, random_state=0)
        female = data["sex"] == 1.0
        gap = abs(
            data["skill_score"][~female].mean()
            - data["skill_score"][female].mean()
        )
        assert gap < 0.5


class TestLawSchoolScm:
    def test_knowledge_drives_both_scores(self):
        scm = law_school_scm()
        data = scm.sample(20000, random_state=0)
        corr = np.corrcoef(data["gpa"], data["lsat"])[0, 1]
        assert corr > 0.4

    def test_race_effect_on_lsat(self):
        scm = law_school_scm(race_effect_lsat=-5.0)
        data = scm.sample(30000, random_state=0)
        minority = data["race"] == 1.0
        gap = data["lsat"][~minority].mean() - data["lsat"][minority].mean()
        assert gap == pytest.approx(5.0, abs=0.3)


class TestFlipRateAudit:
    def test_pairs_share_noise(self):
        scm = biased_hiring_scm()
        observed = scm.sample(300, random_state=0)
        factual, counter = generate_counterfactual_pairs(
            scm, observed, "sex", 1.0 - observed["sex"]
        )
        # exogenous noise is held fixed: counterfactual experience differs
        # from factual by exactly the sex effect
        delta = counter["experience"] - factual["experience"]
        expected = -1.0 * (1.0 - 2.0 * factual["sex"])
        np.testing.assert_allclose(delta, expected, atol=1e-10)

    def test_flip_rate_increases_with_effect_size(self):
        rates = []
        for effect in (0.0, -2.0, -6.0):
            scm = biased_hiring_scm(
                sex_effect_experience=effect, sex_effect_skill=3 * effect
            )
            observed = scm.sample(2000, random_state=1)

            def predictor(values):
                return (
                    values["experience"] + 0.1 * values["skill_score"] > 11.5
                ).astype(int)

            result = counterfactual_flip_rate(
                scm, observed, "sex", 1.0 - observed["sex"], predictor
            )
            rates.append(result.flip_rate)
        assert rates[0] == pytest.approx(0.0)
        assert rates[0] < rates[1] < rates[2]
