"""Tests for repro.data.marginals."""

import pytest

from repro.data import PopulationMarginals, make_hiring
from repro.exceptions import ValidationError


class TestConstruction:
    def test_basic(self):
        m = PopulationMarginals("sex", {"male": 0.5, "female": 0.5})
        assert m.proportion("male") == 0.5
        assert set(m.groups) == {"male", "female"}

    def test_renormalises_tiny_drift(self):
        m = PopulationMarginals("sex", {"a": 0.5000004, "b": 0.4999996})
        assert m.proportion("a") + m.proportion("b") == pytest.approx(1.0)

    def test_rejects_bad_sum(self):
        with pytest.raises(ValidationError, match="sum to 1"):
            PopulationMarginals("sex", {"a": 0.7, "b": 0.7})

    def test_rejects_negative(self):
        with pytest.raises(ValidationError, match="non-negative"):
            PopulationMarginals("sex", {"a": -0.2, "b": 1.2})

    def test_rejects_empty(self):
        with pytest.raises(ValidationError, match="non-empty"):
            PopulationMarginals("sex", {})

    def test_unknown_group_lookup_raises(self):
        m = PopulationMarginals("sex", {"a": 0.5, "b": 0.5})
        with pytest.raises(ValidationError, match="unknown group"):
            m.proportion("c")


class TestFromDataset:
    def test_empirical(self):
        ds = make_hiring(n=4000, female_fraction=0.3, random_state=0)
        m = PopulationMarginals.from_dataset(ds, "sex")
        assert m.proportion("female") == pytest.approx(0.3, abs=0.03)

    def test_expected_counts(self):
        m = PopulationMarginals("sex", {"male": 0.6, "female": 0.4})
        counts = m.expected_counts(100)
        assert counts["male"] == pytest.approx(60)


class TestGaps:
    def test_representation_gap_detects_undersampling(self):
        population = PopulationMarginals("sex", {"male": 0.5, "female": 0.5})
        sample = make_hiring(n=4000, female_fraction=0.2, random_state=0)
        gaps = population.representation_gap(sample)
        assert gaps["female"] < -0.2
        assert gaps["male"] > 0.2

    def test_tv_gap_zero_for_matching(self):
        population = PopulationMarginals("sex", {"male": 0.5, "female": 0.5})
        sample = make_hiring(n=20000, female_fraction=0.5, random_state=0)
        assert population.total_variation_gap(sample) < 0.02

    def test_tv_gap_large_for_skew(self):
        population = PopulationMarginals("sex", {"male": 0.5, "female": 0.5})
        sample = make_hiring(n=4000, female_fraction=0.05, random_state=0)
        assert population.total_variation_gap(sample) > 0.4
