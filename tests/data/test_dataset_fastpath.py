"""``take``/``concat`` fast paths: dtype-exact, copy-free of re-validation.

Both operations used to route their outputs back through the validating
constructor, paying a second full-column copy and an O(n) category scan
on arrays that are canonical by construction.  These tests pin the fast
paths to the validated-constructor reference: identical values, exact
dtypes, immutability — and prove validation really is skipped.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.data.dataset as dataset_module
from repro.data import Column, Schema, TabularDataset
from repro.exceptions import DatasetError


@pytest.fixture()
def schema():
    return Schema(
        (
            Column(name="score", kind="numeric", role="feature"),
            Column(
                name="group",
                kind="categorical",
                role="protected",
                categories=("a", "b", "c"),
            ),
            Column(
                name="tier",
                kind="categorical",
                role="feature",
                categories=(1, 2, 3),
            ),
            Column(name="hired", kind="binary", role="label"),
        )
    )


@pytest.fixture()
def data(schema):
    rng = np.random.default_rng(19)
    n = 500
    return TabularDataset(
        schema,
        {
            "score": rng.normal(size=n),
            "group": rng.choice(["a", "b", "c"], size=n),
            "tier": rng.choice([1, 2, 3], size=n),
            "hired": rng.integers(0, 2, size=n),
        },
    )


def _reference(dataset, columns):
    """What the validating constructor would have produced."""
    return TabularDataset(
        dataset.schema, {n: np.asarray(c) for n, c in columns.items()}
    )


def assert_datasets_identical(got, want):
    assert got.schema == want.schema
    assert got.n_rows == want.n_rows
    for name in want.schema.names():
        a, b = got.column(name), want.column(name)
        assert a.dtype == b.dtype, name
        np.testing.assert_array_equal(a, b)
        assert not a.flags.writeable, name


@pytest.mark.parametrize(
    "indices",
    [
        np.arange(0, 500, 7),
        np.array([499, 0, 250, 0, 3]),  # out of order, with repeats
        np.array([], dtype=np.int64),
    ],
    ids=["strided", "unordered", "empty"],
)
def test_take_matches_validated_reference(data, indices):
    got = data.take(indices)
    want = _reference(
        data, {n: data.column(n)[indices] for n in data.schema.names()}
    )
    if len(indices):
        assert_datasets_identical(got, want)
    else:
        # the validating constructor refuses empty input; the fast path
        # must still produce a dtype-exact empty dataset.
        assert got.n_rows == 0
        for name in data.schema.names():
            assert got.column(name).dtype == data.column(name).dtype


def test_take_boolean_mask(data):
    mask = np.asarray(data.column("score")) > 0
    got = data.take(mask)
    want = _reference(
        data, {n: data.column(n)[mask] for n in data.schema.names()}
    )
    assert_datasets_identical(got, want)


def test_take_rejects_bad_mask_and_shape(data):
    with pytest.raises(DatasetError, match="boolean mask length"):
        data.take(np.ones(3, dtype=bool))
    with pytest.raises(DatasetError, match="1-dimensional"):
        data.take(np.zeros((2, 2), dtype=np.int64))


def test_take_result_is_independent_of_source(data):
    taken = data.take(np.arange(10))
    assert not np.shares_memory(
        taken.column("score"), data.column("score")
    )


def test_concat_matches_validated_reference(data):
    left = data.take(np.arange(0, 200))
    right = data.take(np.arange(200, 500))
    got = left.concat(right)
    assert_datasets_identical(got, data)


def test_concat_rejects_different_columns(data, schema):
    other_schema = Schema(tuple(schema)[:2])
    other = TabularDataset(
        other_schema,
        {"score": np.zeros(4), "group": np.array(["a", "a", "b", "c"])},
    )
    with pytest.raises(DatasetError, match="different columns"):
        data.concat(other)


def test_concat_different_category_sets_falls_back_to_validation(data, schema):
    """Same names, different declared categories: the validated path runs."""
    wider = Schema(
        tuple(
            col if col.name != "group" else Column(
                name="group",
                kind="categorical",
                role="protected",
                categories=("a", "b", "c", "d"),
            )
            for col in schema
        )
    )
    other = TabularDataset(
        wider,
        {
            "score": np.zeros(4),
            "group": np.array(["d", "d", "d", "d"]),
            "tier": np.array([1, 1, 2, 3]),
            "hired": np.array([0, 1, 0, 1]),
        },
    )
    # 'd' is outside self's declared categories — validation must catch it.
    with pytest.raises(DatasetError, match="outside its declared"):
        data.concat(other)


def test_fast_paths_skip_revalidation(data, monkeypatch):
    """take/concat on canonical inputs never re-enter ``_as_column_array``."""

    def boom(values, column):
        raise AssertionError(
            f"_as_column_array re-entered for column {column.name!r}"
        )

    monkeypatch.setattr(dataset_module, "_as_column_array", boom)
    taken = data.take(np.arange(50))
    joined = taken.concat(data.take(np.arange(50, 100)))
    assert joined.n_rows == 100


def test_fast_path_outputs_compose_with_library_ops(data):
    """Trusted outputs behave like validated datasets downstream."""
    half = data.take(np.arange(0, 500, 2))
    rejoined = half.concat(data.take(np.arange(1, 500, 2)))
    assert rejoined.n_rows == 500
    table = rejoined.codes("group")
    assert list(table.categories) == ["a", "b", "c"]
    assert sorted(rejoined.filter(group="a").column("group").tolist()) == sorted(
        v for v in rejoined.column("group").tolist() if v == "a"
    )
