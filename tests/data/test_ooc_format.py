"""Packed columnar format: roundtrip fidelity and corruption handling.

Every corruption mode — truncated column file, garbled header, length
mismatch against the sidecar, silently edited bytes — must surface as a
:class:`DatasetError` naming the offending path, never a raw numpy or
JSON error mid-audit.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data import (
    MemmapDataset,
    PackedWriter,
    is_packed,
    make_hiring,
    make_intersectional,
    open_dataset,
    pack_dataset,
    packed_fingerprint,
)
from repro.data.io import load_dataset, save_dataset
from repro.data.ooc import PACK_SIDECAR
from repro.exceptions import DatasetError
from repro.observability.provenance import dataset_fingerprint


@pytest.fixture(scope="module")
def source():
    return make_intersectional(n=2500, random_state=3)


@pytest.fixture()
def packed(source, tmp_path):
    path = tmp_path / "packed"
    pack_dataset(source, path)
    return path


def test_roundtrip_preserves_columns_schema_and_fingerprint(source, packed):
    data = open_dataset(packed)
    assert isinstance(data, MemmapDataset)
    assert data.schema == source.schema
    assert data.n_rows == source.n_rows
    for name in source.schema.names():
        original = source.column(name)
        loaded = data.column(name)
        assert loaded.dtype == original.dtype
        np.testing.assert_array_equal(np.asarray(loaded), original)
    # The packed fingerprint is the in-memory fingerprint — cache keys
    # and resume checkpoints transfer between representations.
    assert packed_fingerprint(packed) == dataset_fingerprint(source)
    assert dataset_fingerprint(data) == dataset_fingerprint(source)


def test_roundtrip_preserves_code_tables(source, packed):
    data = open_dataset(packed)
    for name in ("gender", "race", "promoted"):
        original = source.codes(name)
        loaded = data.codes(name)
        assert loaded.categories == original.categories
        np.testing.assert_array_equal(
            np.asarray(loaded.codes), original.codes
        )
        declared = source.schema[name].categories
        present = {v for v in np.asarray(source.column(name)).tolist()}
        assert data.present_categories(name) == [
            c for c in declared if c in present
        ]


def test_verify_passes_on_clean_pack(packed):
    open_dataset(packed, verify=True)  # must not raise


def test_is_packed_and_load_dataset_dispatch(source, packed, tmp_path):
    assert is_packed(packed)
    assert not is_packed(tmp_path / "nowhere")
    loaded = load_dataset(packed)
    assert isinstance(loaded, MemmapDataset)

    csv_path = tmp_path / "flat.csv"
    save_dataset(source, csv_path)
    assert not is_packed(csv_path)
    assert not isinstance(load_dataset(csv_path), MemmapDataset)


def test_chunked_writer_matches_single_shot(source, tmp_path):
    whole = tmp_path / "whole"
    chunked = tmp_path / "chunked"
    pack_dataset(source, whole)
    with PackedWriter(chunked, source.schema) as writer:
        for lo in range(0, source.n_rows, 400):
            chunk = source.take(np.arange(lo, min(lo + 400, source.n_rows)))
            writer.append(chunk)
    assert packed_fingerprint(chunked) == packed_fingerprint(whole)
    a, b = open_dataset(whole), open_dataset(chunked)
    for name in source.schema.names():
        np.testing.assert_array_equal(
            np.asarray(a.column(name)), np.asarray(b.column(name))
        )


# -- corruption modes --------------------------------------------------------


def _column_file(packed, index=0):
    payload = json.loads((packed / PACK_SIDECAR).read_text())
    return packed / payload["columns"][index]["file"]


def test_truncated_column_file(packed):
    victim = _column_file(packed)
    blob = victim.read_bytes()
    victim.write_bytes(blob[:-16])
    with pytest.raises(DatasetError, match="truncated") as excinfo:
        open_dataset(packed)
    assert str(victim) in str(excinfo.value)


def test_overlong_column_file(packed):
    victim = _column_file(packed)
    with victim.open("ab") as handle:
        handle.write(b"\0" * 24)
    with pytest.raises(DatasetError, match="overlong") as excinfo:
        open_dataset(packed)
    assert str(victim) in str(excinfo.value)


def test_garbled_npy_header(packed):
    victim = _column_file(packed)
    blob = bytearray(victim.read_bytes())
    blob[:6] = b"\x93NOPE\0"
    victim.write_bytes(bytes(blob))
    with pytest.raises(DatasetError, match="garbled .npy header") as excinfo:
        open_dataset(packed)
    assert str(victim) in str(excinfo.value)


def test_missing_column_file(packed):
    victim = _column_file(packed, index=2)
    victim.unlink()
    with pytest.raises(DatasetError, match="missing") as excinfo:
        open_dataset(packed)
    assert str(victim) in str(excinfo.value)


def test_sidecar_length_mismatch(packed):
    sidecar = packed / PACK_SIDECAR
    payload = json.loads(sidecar.read_text())
    payload["n_rows"] -= 5
    sidecar.write_text(json.dumps(payload))
    with pytest.raises(DatasetError, match="n_rows"):
        open_dataset(packed)


def test_sidecar_dtype_mismatch(packed):
    sidecar = packed / PACK_SIDECAR
    payload = json.loads(sidecar.read_text())
    payload["columns"][0]["dtype"] = "<i2"
    sidecar.write_text(json.dumps(payload))
    with pytest.raises(DatasetError, match="dtype"):
        open_dataset(packed)


def test_corrupt_sidecar_json(packed):
    sidecar = packed / PACK_SIDECAR
    sidecar.write_text(sidecar.read_text()[:-20])
    with pytest.raises(DatasetError, match="byte offset") as excinfo:
        open_dataset(packed)
    assert str(sidecar) in str(excinfo.value)


def test_missing_sidecar_is_not_a_packed_dataset(tmp_path):
    (tmp_path / "empty").mkdir()
    with pytest.raises(DatasetError, match="not a packed dataset"):
        open_dataset(tmp_path / "empty")
    assert not is_packed(tmp_path / "empty")


def test_stale_fingerprint_detected_by_verify(packed):
    victim = _column_file(packed)
    blob = bytearray(victim.read_bytes())
    blob[-1] ^= 0xFF  # flip data bits without changing the length
    victim.write_bytes(bytes(blob))
    open_dataset(packed)  # length/dtype checks alone cannot see this
    with pytest.raises(DatasetError, match="stale fingerprint") as excinfo:
        open_dataset(packed, verify=True)
    assert str(packed) in str(excinfo.value)


# -- writer misuse -----------------------------------------------------------


def test_writer_refuses_existing_pack(source, packed):
    with pytest.raises(DatasetError, match="already holds"):
        PackedWriter(packed, source.schema)


def test_writer_rejects_append_after_close(source, tmp_path):
    writer = PackedWriter(tmp_path / "w", source.schema)
    writer.append(source)
    writer.close()
    with pytest.raises(DatasetError, match="already closed"):
        writer.append(source)


def test_writer_rejects_mismatched_chunk_lengths(source, tmp_path):
    writer = PackedWriter(tmp_path / "w", source.schema)
    chunk = {name: np.asarray(source.column(name)) for name in source.schema.names()}
    chunk["score"] = chunk["score"][:-3]
    with pytest.raises(DatasetError, match="mismatched lengths"):
        writer.append(chunk)
    writer.abort()


def test_empty_pack_is_refused_and_cleaned_up(source, tmp_path):
    path = tmp_path / "w"
    writer = PackedWriter(path, source.schema)
    with pytest.raises(DatasetError, match="empty"):
        writer.close()
    assert not (path / PACK_SIDECAR).exists()
    assert list(path.iterdir()) == []  # placeholders removed


def test_context_manager_aborts_on_error(source, tmp_path):
    path = tmp_path / "w"
    with pytest.raises(RuntimeError, match="boom"):
        with PackedWriter(path, source.schema) as writer:
            writer.append(source)
            raise RuntimeError("boom")
    assert not (path / PACK_SIDECAR).exists()
    assert list(path.iterdir()) == []


def test_pack_other_generators_roundtrip(tmp_path):
    data = make_hiring(n=800, random_state=1)
    pack_dataset(data, tmp_path / "h")
    loaded = open_dataset(tmp_path / "h", verify=True)
    assert dataset_fingerprint(loaded) == dataset_fingerprint(data)
