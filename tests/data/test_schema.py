"""Tests for repro.data.schema."""

import pytest

from repro.data.schema import Column, ColumnKind, ColumnRole, Schema
from repro.exceptions import SchemaError


class TestColumn:
    def test_defaults(self):
        col = Column("age")
        assert col.kind == ColumnKind.NUMERIC
        assert col.role == ColumnRole.FEATURE
        assert not col.is_discrete

    def test_binary_gets_default_categories(self):
        col = Column("hired", kind=ColumnKind.BINARY)
        assert col.categories == (0, 1)
        assert col.is_discrete

    def test_categorical_requires_categories(self):
        with pytest.raises(SchemaError, match="must declare its categories"):
            Column("city", kind=ColumnKind.CATEGORICAL)

    def test_rejects_bad_kind(self):
        with pytest.raises(SchemaError, match="kind must be one of"):
            Column("x", kind="weird")

    def test_rejects_bad_role(self):
        with pytest.raises(SchemaError, match="role must be one of"):
            Column("x", role="weird")

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError, match="non-empty string"):
            Column("")

    def test_rejects_duplicate_categories(self):
        with pytest.raises(SchemaError, match="duplicate categories"):
            Column("c", kind=ColumnKind.CATEGORICAL, categories=("a", "a"))

    def test_with_role_returns_new_column(self):
        col = Column("sex", kind=ColumnKind.CATEGORICAL,
                     role=ColumnRole.PROTECTED, categories=("m", "f"))
        feature = col.with_role(ColumnRole.FEATURE)
        assert feature.role == ColumnRole.FEATURE
        assert col.role == ColumnRole.PROTECTED
        assert feature.categories == col.categories

    def test_statute_tags_carried(self):
        col = Column("sex", kind=ColumnKind.CATEGORICAL,
                     role=ColumnRole.PROTECTED, categories=("m", "f"),
                     statute_tags=("title_vii",))
        assert "title_vii" in col.statute_tags


class TestSchema:
    def _schema(self):
        return Schema((
            Column("a"),
            Column("sex", kind=ColumnKind.CATEGORICAL,
                   role=ColumnRole.PROTECTED, categories=("m", "f")),
            Column("y", kind=ColumnKind.BINARY, role=ColumnRole.LABEL),
        ))

    def test_lookup_and_contains(self):
        schema = self._schema()
        assert "a" in schema
        assert "missing" not in schema
        assert schema["sex"].role == ColumnRole.PROTECTED

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError, match="unknown column"):
            self._schema()["nope"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate column names"):
            Schema((Column("a"), Column("a")))

    def test_at_most_one_label(self):
        with pytest.raises(SchemaError, match="at most one label"):
            Schema((
                Column("y1", kind=ColumnKind.BINARY, role=ColumnRole.LABEL),
                Column("y2", kind=ColumnKind.BINARY, role=ColumnRole.LABEL),
            ))

    def test_role_accessors(self):
        schema = self._schema()
        assert schema.feature_names == ["a"]
        assert schema.protected_names == ["sex"]
        assert schema.label_name == "y"
        assert schema.prediction_names == []

    def test_label_name_none_when_absent(self):
        schema = Schema((Column("a"),))
        assert schema.label_name is None

    def test_add_and_drop(self):
        schema = self._schema()
        bigger = schema.add(Column("b"))
        assert "b" in bigger
        assert "b" not in schema
        smaller = bigger.drop("b")
        assert "b" not in smaller

    def test_drop_missing_raises(self):
        with pytest.raises(SchemaError):
            self._schema().drop("nope")

    def test_replace_column(self):
        schema = self._schema()
        replaced = schema.replace_column(
            schema["sex"].with_role(ColumnRole.FEATURE)
        )
        assert replaced["sex"].role == ColumnRole.FEATURE
        assert replaced.names() == schema.names()

    def test_select_preserves_order(self):
        schema = self._schema()
        sub = schema.select(["y", "a"])
        assert sub.names() == ["y", "a"]

    def test_iteration_and_len(self):
        schema = self._schema()
        assert len(schema) == 3
        assert [c.name for c in schema] == ["a", "sex", "y"]
