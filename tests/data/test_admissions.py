"""Tests for the multi-group admissions generator and 3-group auditing."""

import numpy as np
import pytest

from repro.core import FairnessAudit, demographic_parity, four_fifths_rule
from repro.data import ETHNICITY_GROUPS, make_admissions
from repro.exceptions import ValidationError
from repro.mitigation import QuantileRepair
from repro.subgroup import audit_subgroups


class TestGenerator:
    def test_schema(self):
        ds = make_admissions(n=300, random_state=0)
        assert set(ds.schema.protected_names) == {"ethnicity", "sex"}
        assert ds.schema.label_name == "admitted"
        assert ds.schema["ethnicity"].categories == ETHNICITY_GROUPS

    def test_shares_respected(self):
        ds = make_admissions(
            n=20000, ethnicity_shares=(0.5, 0.3, 0.2), random_state=0
        )
        eth = ds.column("ethnicity")
        assert np.mean(eth == "group_x") == pytest.approx(0.5, abs=0.02)
        assert np.mean(eth == "group_z") == pytest.approx(0.2, abs=0.02)

    def test_per_group_bias(self):
        ds = make_admissions(
            n=20000, ethnicity_bias=(0.0, 0.8, 1.6), random_state=0
        )
        eth = ds.column("ethnicity")
        admitted = ds.column("admitted")
        rates = {g: admitted[eth == g].mean() for g in ETHNICITY_GROUPS}
        assert rates["group_x"] > rates["group_y"] > rates["group_z"]

    def test_no_bias_near_parity(self):
        ds = make_admissions(n=20000, random_state=0)
        result = demographic_parity(
            ds.column("admitted"), ds.column("ethnicity")
        )
        assert result.gap < 0.03

    def test_validation(self):
        with pytest.raises(ValidationError, match="three entries"):
            make_admissions(ethnicity_shares=(0.5, 0.5))
        with pytest.raises(ValidationError, match="sum to 1"):
            make_admissions(ethnicity_shares=(0.5, 0.5, 0.5))


class TestThreeGroupAuditing:
    @pytest.fixture(scope="class")
    def biased(self):
        return make_admissions(
            n=8000, ethnicity_bias=(0.0, 0.8, 1.6), sex_bias=0.5,
            random_state=3,
        )

    def test_parity_over_all_pairs(self, biased):
        result = demographic_parity(
            biased.column("admitted"), biased.column("ethnicity"),
            with_significance=True,
        )
        # gap is max-min over the three groups; chi-square significance
        assert not result.satisfied
        assert result.significance.method == "chi_square"
        assert result.disadvantaged_group() == "group_z"

    def test_four_fifths_picks_extremes(self, biased):
        result = demographic_parity(
            biased.column("admitted"), biased.column("ethnicity")
        )
        finding = four_fifths_rule(result.rates())
        assert finding.reference_group == "group_x"
        assert finding.disadvantaged_group == "group_z"
        assert not finding.passes

    def test_audit_runs_both_attributes_and_intersection(self, biased):
        report = FairnessAudit(biased, tolerance=0.05).run()
        assert report.finding("ethnicity", "demographic_parity").satisfied is False
        assert report.finding("sex", "demographic_parity").satisfied is False
        # 3 × 2 = 6 intersectional cells audited
        inter = [
            f for f in report.intersectional_findings
            if f.metric == "demographic_parity"
        ][0]
        assert len(inter.result.group_stats) == 6

    def test_subgroup_scan_finds_worst_cell(self, biased):
        findings = audit_subgroups(
            biased.labels(), biased,
            attributes=["ethnicity", "sex"], max_order=2, min_size=30,
        )
        worst = findings[0]
        assert ("ethnicity", "group_z") in worst.subgroup.conditions

    def test_multigroup_quantile_repair(self, biased):
        # repair a score across three groups at once
        rng = np.random.default_rng(0)
        eth = biased.column("ethnicity")
        scores = rng.normal(0, 1, biased.n_rows)
        scores = scores - 0.8 * (eth == "group_y") - 1.6 * (eth == "group_z")
        repaired = QuantileRepair().fit_transform(scores, eth)
        means = [repaired[eth == g].mean() for g in ETHNICITY_GROUPS]
        assert max(means) - min(means) < 0.1
