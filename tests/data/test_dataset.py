"""Tests for repro.data.dataset."""

import numpy as np
import pytest

from repro.data import Column, Schema, TabularDataset
from repro.data.schema import ColumnKind, ColumnRole
from repro.exceptions import DatasetError, SchemaError


class TestConstruction:
    def test_basic(self, tiny_dataset):
        assert tiny_dataset.n_rows == 6
        assert len(tiny_dataset) == 6
        assert "score" in tiny_dataset

    def test_missing_column_rejected(self, tiny_schema):
        with pytest.raises(DatasetError, match="missing columns"):
            TabularDataset(tiny_schema, {"score": [1.0], "sex": ["male"]})

    def test_extra_column_rejected(self, tiny_schema):
        with pytest.raises(DatasetError, match="absent from schema"):
            TabularDataset(tiny_schema, {
                "score": [1.0], "sex": ["male"], "hired": [1], "zzz": [0],
            })

    def test_mismatched_lengths_rejected(self, tiny_schema):
        with pytest.raises(DatasetError, match="mismatched lengths"):
            TabularDataset(tiny_schema, {
                "score": [1.0, 2.0], "sex": ["male"], "hired": [1],
            })

    def test_out_of_category_values_rejected(self, tiny_schema):
        with pytest.raises(DatasetError, match="outside its declared"):
            TabularDataset(tiny_schema, {
                "score": [1.0], "sex": ["alien"], "hired": [1],
            })

    def test_binary_label_values_validated(self, tiny_schema):
        with pytest.raises(DatasetError, match="outside its declared"):
            TabularDataset(tiny_schema, {
                "score": [1.0], "sex": ["male"], "hired": [2],
            })

    def test_columns_are_readonly(self, tiny_dataset):
        with pytest.raises(ValueError):
            tiny_dataset.column("score")[0] = 99.0


class TestAccess:
    def test_labels(self, tiny_dataset):
        assert tiny_dataset.labels().tolist() == [1, 0, 1, 1, 0, 0]

    def test_protected_default(self, tiny_dataset):
        assert set(tiny_dataset.protected()) == {"male", "female"}

    def test_protected_named_non_protected_raises(self, tiny_dataset):
        with pytest.raises(DatasetError, match="not protected"):
            tiny_dataset.protected("score")

    def test_unknown_column_raises(self, tiny_dataset):
        with pytest.raises(SchemaError, match="unknown column"):
            tiny_dataset.column("nope")

    def test_feature_matrix_excludes_protected_and_label(self, tiny_dataset):
        X = tiny_dataset.feature_matrix()
        assert X.shape == (6, 1)
        assert X[:, 0].tolist() == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]

    def test_feature_matrix_one_hot(self):
        schema = Schema((
            Column("city", kind=ColumnKind.CATEGORICAL,
                   categories=("paris", "rome")),
            Column("y", kind=ColumnKind.BINARY, role=ColumnRole.LABEL),
        ))
        ds = TabularDataset(schema, {"city": ["rome", "paris"], "y": [0, 1]})
        X = ds.feature_matrix()
        assert X.shape == (2, 2)
        assert X.tolist() == [[0.0, 1.0], [1.0, 0.0]]
        assert ds.feature_matrix_names() == ["city=paris", "city=rome"]

    def test_rate(self, tiny_dataset):
        assert tiny_dataset.rate("hired") == pytest.approx(0.5)
        mask = tiny_dataset.column("sex") == "male"
        assert tiny_dataset.rate("hired", where=mask) == pytest.approx(2 / 3)

    def test_rate_empty_selection_raises(self, tiny_dataset):
        with pytest.raises(DatasetError, match="empty selection"):
            tiny_dataset.rate("hired", where=np.zeros(6, dtype=bool))


class TestRowOps:
    def test_take_indices(self, tiny_dataset):
        sub = tiny_dataset.take([0, 2])
        assert sub.n_rows == 2
        assert sub.column("score").tolist() == [1.0, 3.0]

    def test_take_boolean_mask(self, tiny_dataset):
        sub = tiny_dataset.take(tiny_dataset.column("sex") == "female")
        assert sub.n_rows == 3

    def test_take_bad_mask_length(self, tiny_dataset):
        with pytest.raises(DatasetError, match="mask length"):
            tiny_dataset.take(np.array([True, False]))

    def test_filter(self, tiny_dataset):
        sub = tiny_dataset.filter(sex="female", hired=1)
        assert sub.n_rows == 1
        assert sub.column("score")[0] == 4.0

    def test_split_partitions(self, biased_hiring):
        train, test = biased_hiring.split(test_fraction=0.25, random_state=3)
        assert train.n_rows + test.n_rows == biased_hiring.n_rows
        assert test.n_rows == pytest.approx(0.25 * biased_hiring.n_rows, abs=2)

    def test_split_stratified_preserves_shares(self, biased_hiring):
        train, test = biased_hiring.split(
            test_fraction=0.3, random_state=3, stratify_by="sex"
        )
        overall = np.mean(biased_hiring.column("sex") == "female")
        test_share = np.mean(test.column("sex") == "female")
        assert test_share == pytest.approx(overall, abs=0.02)

    def test_split_deterministic_given_seed(self, biased_hiring):
        a1, b1 = biased_hiring.split(random_state=11)
        a2, b2 = biased_hiring.split(random_state=11)
        assert a1.column("score" if "score" in a1 else "experience").tolist() == \
            a2.column("score" if "score" in a2 else "experience").tolist()
        assert b1.n_rows == b2.n_rows

    def test_groupby(self, tiny_dataset):
        groups = dict(tiny_dataset.groupby("sex"))
        assert set(groups) == {"male", "female"}
        assert groups["male"].n_rows == 3

    def test_concat(self, tiny_dataset):
        doubled = tiny_dataset.concat(tiny_dataset)
        assert doubled.n_rows == 12

    def test_concat_mismatched_schema_raises(self, tiny_dataset):
        other = tiny_dataset.drop_column("score")
        with pytest.raises(DatasetError, match="different columns"):
            tiny_dataset.concat(other)


class TestColumnOps:
    def test_with_column_adds(self, tiny_dataset):
        ds = tiny_dataset.with_column(Column("bonus"), [0.0] * 6)
        assert "bonus" in ds
        assert "bonus" not in tiny_dataset

    def test_with_column_replaces(self, tiny_dataset):
        ds = tiny_dataset.with_column(
            tiny_dataset.schema["score"], [9.0] * 6
        )
        assert ds.column("score").tolist() == [9.0] * 6

    def test_with_predictions(self, tiny_dataset):
        ds = tiny_dataset.with_predictions([1, 1, 0, 0, 1, 0])
        assert ds.schema["prediction"].role == ColumnRole.PREDICTION

    def test_drop_column(self, tiny_dataset):
        ds = tiny_dataset.drop_column("score")
        assert "score" not in ds
        assert ds.n_rows == 6

    def test_with_role(self, tiny_dataset):
        ds = tiny_dataset.with_role("sex", ColumnRole.FEATURE)
        assert ds.schema["sex"].role == ColumnRole.FEATURE
        # unawareness direction: feature matrix now includes the one-hot sex
        assert ds.feature_matrix().shape[1] == 3


class TestInterchange:
    def test_csv_roundtrip(self, tiny_dataset):
        text = tiny_dataset.to_csv()
        back = TabularDataset.from_csv(tiny_dataset.schema, text)
        assert back.n_rows == tiny_dataset.n_rows
        assert back.column("sex").tolist() == tiny_dataset.column("sex").tolist()
        assert back.column("hired").tolist() == tiny_dataset.column("hired").tolist()
        np.testing.assert_allclose(
            back.column("score"), tiny_dataset.column("score")
        )

    def test_from_csv_rejects_wrong_header(self, tiny_dataset):
        with pytest.raises(DatasetError, match="does not match schema"):
            TabularDataset.from_csv(tiny_dataset.schema, "a,b,c\n1,2,3\n")

    def test_from_csv_rejects_empty(self, tiny_schema):
        with pytest.raises(DatasetError, match="empty"):
            TabularDataset.from_csv(tiny_schema, "")

    def test_from_rows(self, tiny_schema):
        ds = TabularDataset.from_rows(tiny_schema, [
            {"score": 1.0, "sex": "male", "hired": 1},
            {"score": 2.0, "sex": "female", "hired": 0},
        ])
        assert ds.n_rows == 2

    def test_to_dict(self, tiny_dataset):
        d = tiny_dataset.to_dict()
        assert set(d) == {"score", "sex", "hired"}
        assert d["hired"] == [1, 0, 1, 1, 0, 0]

    def test_describe(self, tiny_dataset):
        summary = tiny_dataset.describe()
        assert summary["sex"]["counts"] == {"male": 3, "female": 3}
        assert summary["score"]["mean"] == pytest.approx(3.5)
