"""Packed datasets are bit-for-bit interchangeable with in-memory ones.

The acceptance bar for the out-of-core data plane: the full audit
battery, the subgroup scan (both backends, serial and ``jobs=N``),
multiplicity corrections, and resume checkpoints produce *identical*
results whether the input is an in-memory :class:`TabularDataset`, a
packed :class:`MemmapDataset`, or a chunk stream over the pack — and no
column-sized array ever crosses the worker pickle boundary.
"""

from __future__ import annotations

from concurrent.futures import Future

import numpy as np
import pytest

from repro.core.audit import FairnessAudit
from repro.core.serialize import report_to_dict
from repro.data import make_intersectional, open_dataset, pack_dataset
from repro.kernel import use_backend
from repro.streaming import audit_stream
from repro.data.ooc import stream_chunks
from repro.subgroup import adjust_for_multiple_testing, audit_subgroups


def finding_signature(finding):
    return (
        finding.subgroup.conditions,
        finding.subgroup.size,
        finding.rate,
        finding.complement_rate,
        finding.gap,
        finding.ci_low,
        finding.ci_high,
        finding.p_value,
        finding.adjusted_p_value,
    )


def signatures(findings):
    return [finding_signature(f) for f in findings]


@pytest.fixture(scope="module")
def inputs(tmp_path_factory):
    data = make_intersectional(n=5000, random_state=13)
    predictions = (np.asarray(data.column("score")) > 0.55).astype(np.int64)
    path = tmp_path_factory.mktemp("pack") / "intersectional"
    pack_dataset(data, path, chunk_rows=700)  # multi-chunk on purpose
    packed = open_dataset(path, chunk_rows=700)
    return data, packed, predictions


def strip_provenance(report_dict):
    report_dict.pop("provenance", None)
    return report_dict


def test_audit_battery_identical_across_representations(inputs):
    data, packed, _ = inputs
    in_memory = strip_provenance(report_to_dict(FairnessAudit(data).run()))
    memmapped = strip_provenance(report_to_dict(FairnessAudit(packed).run()))
    streamed = strip_provenance(
        report_to_dict(audit_stream(stream_chunks(packed)))
    )
    assert memmapped == in_memory
    assert streamed == in_memory


def test_stream_chunks_accepts_path_and_dataset(inputs):
    data, packed, _ = inputs
    from_path = list(stream_chunks(packed.path, chunk_rows=700))
    from_mm = list(stream_chunks(packed))
    from_mem = list(stream_chunks(data, chunk_rows=700))
    assert (
        len(from_path) == len(from_mm) == len(from_mem) == (5000 + 699) // 700
    )
    for a, b, c in zip(from_path, from_mm, from_mem):
        for name in data.schema.names():
            np.testing.assert_array_equal(np.asarray(a.column(name)),
                                          np.asarray(b.column(name)))
            np.testing.assert_array_equal(np.asarray(a.column(name)),
                                          np.asarray(c.column(name)))


@pytest.mark.parametrize("backend", ["kernel", "reference"])
def test_serial_scan_identical_across_representations(inputs, backend):
    data, packed, predictions = inputs
    with use_backend(backend):
        reference = audit_subgroups(predictions, data, max_order=2, min_size=5)
        memmapped = audit_subgroups(predictions, packed, max_order=2, min_size=5)
    assert signatures(memmapped) == signatures(reference)


@pytest.mark.parametrize("method", ["holm", "bh"])
def test_adjusted_p_values_identical(inputs, method):
    data, packed, predictions = inputs
    reference = adjust_for_multiple_testing(
        audit_subgroups(predictions, data, max_order=2, min_size=5),
        method=method,
    )
    memmapped = adjust_for_multiple_testing(
        audit_subgroups(predictions, packed, max_order=2, min_size=5),
        method=method,
    )
    assert signatures(memmapped) == signatures(reference)


def test_checkpoints_byte_identical_across_representation_and_jobs(
    inputs, tmp_path
):
    data, packed, predictions = inputs
    texts = {}
    for source, rep in ((data, "mem"), (packed, "packed")):
        for jobs in (1, 2):
            path = tmp_path / f"{rep}-{jobs}.json"
            findings = audit_subgroups(
                predictions, source, max_order=2, min_size=5, jobs=jobs,
                checkpoint_path=path, checkpoint_every=3,
            )
            texts[(rep, jobs)] = path.read_text()
            if (rep, jobs) != ("mem", 1):
                assert signatures(findings) == reference_signatures
            else:
                reference_signatures = signatures(findings)
    assert len(set(texts.values())) == 1  # all four byte-identical


def test_interrupted_scan_resumes_across_representations(inputs, tmp_path):
    """A checkpoint written from memory resumes against the pack."""
    data, packed, predictions = inputs

    class Stop(Exception):
        pass

    def stop_after(evaluated, total):
        if evaluated >= 6:
            raise Stop

    reference = audit_subgroups(predictions, data, max_order=2, min_size=5)
    path = tmp_path / "cross.json"
    with pytest.raises(Stop):
        audit_subgroups(
            predictions, data, max_order=2, min_size=5,
            checkpoint_path=path, checkpoint_every=3, on_progress=stop_after,
        )
    resumed = audit_subgroups(
        predictions, packed, max_order=2, min_size=5, jobs=2,
        checkpoint_path=path, checkpoint_every=3, resume=True,
    )
    assert signatures(resumed) == signatures(reference)


class _PickleBoundaryExecutor:
    """Inline executor that rejects any column-sized array in submits.

    Stands in for the process pool: whatever reaches ``submit`` is what
    would be pickled to a worker, so finding an ndarray bigger than a
    few dozen elements there means a column crossed the boundary.
    """

    def __init__(self):
        self.submits = 0

    def _scan(self, obj, path="args"):
        if isinstance(obj, np.ndarray):
            assert obj.size <= 64, (
                f"column-sized array ({obj.size} elements) crossed the "
                f"pickle boundary at {path}"
            )
        elif isinstance(obj, dict):
            for key, value in obj.items():
                self._scan(value, f"{path}[{key!r}]")
        elif isinstance(obj, (list, tuple)):
            for i, value in enumerate(obj):
                self._scan(value, f"{path}[{i}]")

    def submit(self, fn, *args, **kwargs) -> Future:
        self.submits += 1
        self._scan(args)
        self._scan(kwargs)
        future: Future = Future()
        future.set_result(fn(*args, **kwargs))
        return future

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


@pytest.mark.parametrize("representation", ["mem", "packed"])
def test_no_column_array_crosses_the_pickle_boundary(inputs, representation):
    data, packed, predictions = inputs
    source = data if representation == "mem" else packed
    serial = audit_subgroups(predictions, data, max_order=2, min_size=5)
    executor = _PickleBoundaryExecutor()
    parallel = audit_subgroups(
        predictions, source, max_order=2, min_size=5, jobs=2,
        executor_factory=lambda n: executor,
    )
    assert executor.submits > 0
    assert signatures(parallel) == signatures(serial)


def test_real_pool_identical_for_packed_input(inputs):
    data, packed, predictions = inputs
    serial = audit_subgroups(predictions, data, max_order=2, min_size=5)
    parallel = audit_subgroups(
        predictions, packed, max_order=2, min_size=5, jobs=2
    )
    assert signatures(parallel) == signatures(serial)
