"""Tests for repro.data.generators."""

import numpy as np
import pytest

from repro.data import (
    make_credit,
    make_hiring,
    make_housing,
    make_intersectional,
    make_recidivism,
)
from repro.exceptions import ValidationError


class TestMakeHiring:
    def test_shape_and_schema(self):
        ds = make_hiring(n=300, random_state=0)
        assert ds.n_rows == 300
        assert ds.schema.label_name == "hired"
        assert ds.schema.protected_names == ["sex"]
        assert "university" in ds.schema.feature_names

    def test_deterministic_given_seed(self):
        a = make_hiring(n=200, random_state=42)
        b = make_hiring(n=200, random_state=42)
        np.testing.assert_array_equal(a.column("hired"), b.column("hired"))
        np.testing.assert_allclose(a.column("experience"), b.column("experience"))

    def test_different_seeds_differ(self):
        a = make_hiring(n=200, random_state=1)
        b = make_hiring(n=200, random_state=2)
        assert not np.array_equal(a.column("hired"), b.column("hired"))

    def test_direct_bias_lowers_female_rate(self):
        biased = make_hiring(n=6000, direct_bias=2.0, random_state=0)
        sex = biased.column("sex")
        hired = biased.column("hired")
        female_rate = hired[sex == "female"].mean()
        male_rate = hired[sex == "male"].mean()
        assert male_rate - female_rate > 0.15

    def test_no_bias_gives_near_parity(self):
        clean = make_hiring(n=8000, direct_bias=0.0, random_state=0)
        sex = clean.column("sex")
        hired = clean.column("hired")
        gap = abs(hired[sex == "female"].mean() - hired[sex == "male"].mean())
        assert gap < 0.04

    def test_proxy_strength_controls_university_sex_correlation(self):
        strong = make_hiring(n=5000, proxy_strength=1.0, random_state=0)
        agreement = np.mean(
            (strong.column("university") == "u_alpha")
            == (strong.column("sex") == "female")
        )
        assert agreement == 1.0
        weak = make_hiring(n=5000, proxy_strength=0.0, random_state=0)
        agreement = np.mean(
            (weak.column("university") == "u_alpha")
            == (weak.column("sex") == "female")
        )
        assert 0.4 < agreement < 0.6

    def test_base_rate_respected(self):
        ds = make_hiring(n=8000, base_rate=0.3, label_noise=0.0, random_state=0)
        assert ds.column("hired").mean() == pytest.approx(0.3, abs=0.05)

    def test_female_fraction(self):
        ds = make_hiring(n=5000, female_fraction=0.2, random_state=0)
        assert np.mean(ds.column("sex") == "female") == pytest.approx(0.2, abs=0.03)

    def test_invalid_params_raise(self):
        with pytest.raises(ValidationError):
            make_hiring(n=0)
        with pytest.raises(ValidationError):
            make_hiring(female_fraction=1.5)
        with pytest.raises(ValidationError):
            make_hiring(base_rate=0.0)


class TestMakeCredit:
    def test_schema(self):
        ds = make_credit(n=200, random_state=0)
        assert ds.schema.label_name == "approved"
        assert ds.schema.protected_names == ["race"]

    def test_redlining_strength(self):
        ds = make_credit(n=5000, redlining_strength=1.0, random_state=0)
        agreement = np.mean(
            (ds.column("zip_region") == "region_a")
            == (ds.column("race") == "minority")
        )
        assert agreement == 1.0

    def test_income_gap_lowers_minority_approval(self):
        gapped = make_credit(n=8000, income_gap=1.0, random_state=0)
        race = gapped.column("race")
        approved = gapped.column("approved")
        assert (
            approved[race == "majority"].mean()
            - approved[race == "minority"].mean()
        ) > 0.05

    def test_income_positive(self):
        ds = make_credit(n=500, random_state=0)
        assert np.all(ds.column("income") > 0)


class TestMakeHousing:
    def test_schema(self):
        ds = make_housing(n=200, random_state=0)
        assert ds.schema.label_name == "accepted"
        assert ds.schema.protected_names == ["familial_status"]

    def test_familial_penalty_bias(self):
        ds = make_housing(n=8000, familial_penalty=2.0, random_state=0)
        fam = ds.column("familial_status")
        accepted = ds.column("accepted")
        gap = (
            accepted[fam == "no_children"].mean()
            - accepted[fam == "with_children"].mean()
        )
        assert gap > 0.15


class TestMakeRecidivism:
    def test_schema(self):
        ds = make_recidivism(n=200, random_state=0)
        assert ds.schema.label_name == "rearrested"
        assert ds.schema.protected_names == ["race"]

    def test_measurement_bias_raises_minority_label_rate(self):
        ds = make_recidivism(n=8000, measurement_bias=0.3, random_state=0)
        race = ds.column("race")
        labels = ds.column("rearrested")
        gap = labels[race == "minority"].mean() - labels[race == "majority"].mean()
        assert gap > 0.15

    def test_age_bounds(self):
        ds = make_recidivism(n=1000, random_state=0)
        assert ds.column("age").min() >= 18
        assert ds.column("age").max() <= 80


class TestMakeIntersectional:
    def test_marginals_fair_intersection_unfair(self):
        ds = make_intersectional(n=30000, subgroup_penalty=0.3, random_state=0)
        gender = ds.column("gender")
        race = ds.column("race")
        promoted = ds.column("promoted")

        gender_gap = abs(
            promoted[gender == "female"].mean()
            - promoted[gender == "male"].mean()
        )
        race_gap = abs(
            promoted[race == "caucasian"].mean()
            - promoted[race == "non_caucasian"].mean()
        )
        assert gender_gap < 0.03
        assert race_gap < 0.03

        crossed = (
            ((gender == "male") & (race == "non_caucasian"))
            | ((gender == "female") & (race == "caucasian"))
        )
        subgroup_gap = promoted[~crossed].mean() - promoted[crossed].mean()
        assert subgroup_gap > 0.5  # 2 * penalty = 0.6, sampling noise aside

    def test_two_protected_attributes_declared(self):
        ds = make_intersectional(n=100, random_state=0)
        assert set(ds.schema.protected_names) == {"gender", "race"}

    def test_penalty_bounds_validated(self):
        with pytest.raises(ValidationError):
            make_intersectional(subgroup_penalty=0.9, base_rate=0.5)
