"""Tests for repro.data.bias injectors."""

import numpy as np
import pytest

from repro.data import (
    inject_label_bias,
    inject_measurement_noise,
    inject_proxy_column,
    inject_representation_bias,
    swap_protected_values,
)
from repro.exceptions import DatasetError


@pytest.fixture
def clean(clean_hiring):
    return clean_hiring


class TestLabelBias:
    def test_demotion_lowers_group_rate(self, clean):
        biased = inject_label_bias(
            clean, "sex", "female",
            flip_positive_to_negative=0.5, random_state=0,
        )
        sex = clean.column("sex")
        before = clean.labels()[sex == "female"].mean()
        after = biased.labels()[sex == "female"].mean()
        assert after < before * 0.75
        # other group untouched
        np.testing.assert_array_equal(
            clean.labels()[sex == "male"], biased.labels()[sex == "male"]
        )

    def test_promotion_raises_group_rate(self, clean):
        biased = inject_label_bias(
            clean, "sex", "female",
            flip_negative_to_positive=0.5, random_state=0,
        )
        sex = clean.column("sex")
        assert (
            biased.labels()[sex == "female"].mean()
            > clean.labels()[sex == "female"].mean()
        )

    def test_zero_probability_is_identity(self, clean):
        same = inject_label_bias(clean, "sex", "female", random_state=0)
        np.testing.assert_array_equal(same.labels(), clean.labels())

    def test_original_untouched(self, clean):
        before = clean.labels().copy()
        inject_label_bias(
            clean, "sex", "female",
            flip_positive_to_negative=1.0, random_state=0,
        )
        np.testing.assert_array_equal(clean.labels(), before)

    def test_unknown_group_raises(self, clean):
        with pytest.raises(DatasetError, match="empty"):
            inject_label_bias(clean, "sex", "robot",
                              flip_positive_to_negative=0.5)

    def test_non_protected_attribute_raises(self, clean):
        with pytest.raises(DatasetError, match="not a protected attribute"):
            inject_label_bias(clean, "experience", 1.0)


class TestRepresentationBias:
    def test_undersampling(self, clean):
        reduced = inject_representation_bias(
            clean, "sex", "female", keep_fraction=0.25, random_state=0
        )
        n_female_before = int((clean.column("sex") == "female").sum())
        n_female_after = int((reduced.column("sex") == "female").sum())
        assert n_female_after == round(0.25 * n_female_before)
        n_male_before = int((clean.column("sex") == "male").sum())
        n_male_after = int((reduced.column("sex") == "male").sum())
        assert n_male_after == n_male_before

    def test_keep_all_is_identity_size(self, clean):
        same = inject_representation_bias(
            clean, "sex", "female", keep_fraction=1.0, random_state=0
        )
        assert same.n_rows == clean.n_rows

    def test_keep_none_removes_group(self, clean):
        gone = inject_representation_bias(
            clean, "sex", "female", keep_fraction=0.0, random_state=0
        )
        assert not (gone.column("sex") == "female").any()


class TestProxyColumn:
    def test_perfect_proxy(self, clean):
        ds = inject_proxy_column(
            clean, "sex", "neighborhood", strength=1.0, random_state=0
        )
        membership = ds.column("sex") == ds.schema["sex"].categories[1]
        proxy = ds.column("neighborhood") == "p1"
        assert np.array_equal(membership, proxy)

    def test_zero_strength_uncorrelated(self, clean):
        ds = inject_proxy_column(
            clean, "sex", "neighborhood", strength=0.0, random_state=0
        )
        membership = (ds.column("sex") == "female").astype(float)
        proxy = (ds.column("neighborhood") == "p1").astype(float)
        assert abs(np.corrcoef(membership, proxy)[0, 1]) < 0.08

    def test_proxy_is_a_feature(self, clean):
        ds = inject_proxy_column(clean, "sex", "nb", strength=0.5, random_state=0)
        assert "nb" in [c.name for c in ds.schema.by_role("feature")]

    def test_existing_name_raises(self, clean):
        with pytest.raises(DatasetError, match="already exists"):
            inject_proxy_column(clean, "sex", "experience", strength=0.5)


class TestMeasurementNoise:
    def test_noise_increases_group_variance(self, clean):
        noisy = inject_measurement_noise(
            clean, "skill_score", "sex", "female", noise_std=20.0,
            random_state=0,
        )
        sex = clean.column("sex")
        var_before = clean.column("skill_score")[sex == "female"].var()
        var_after = noisy.column("skill_score")[sex == "female"].var()
        assert var_after > var_before * 1.5
        np.testing.assert_array_equal(
            clean.column("skill_score")[sex == "male"],
            noisy.column("skill_score")[sex == "male"],
        )

    def test_non_numeric_feature_raises(self, clean):
        with pytest.raises(DatasetError, match="must be numeric"):
            inject_measurement_noise(clean, "university", "sex", "female", 1.0)


class TestSwapProtected:
    def test_swap_is_involution(self, clean):
        swapped = swap_protected_values(clean, "sex")
        double = swap_protected_values(swapped, "sex")
        np.testing.assert_array_equal(
            double.column("sex"), clean.column("sex")
        )

    def test_swap_flips_every_row(self, clean):
        swapped = swap_protected_values(clean, "sex")
        assert not (swapped.column("sex") == clean.column("sex")).any()
