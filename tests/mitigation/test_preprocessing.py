"""Tests for repro.mitigation.preprocessing."""

import numpy as np
import pytest

from repro.core import demographic_parity
from repro.data import make_hiring
from repro.exceptions import MitigationError
from repro.mitigation import massaging, reweighing, uniform_resampling
from repro.models import LogisticRegression, Standardizer


@pytest.fixture(scope="module")
def biased():
    return make_hiring(
        n=3000, direct_bias=2.0, proxy_strength=0.9, random_state=11
    )


def _trained_gap(dataset, sample_weight=None):
    X = Standardizer().fit_transform(dataset.feature_matrix())
    model = LogisticRegression(max_iter=800).fit(
        X, dataset.labels(), sample_weight=sample_weight
    )
    preds = model.predict(X)
    return demographic_parity(preds, dataset.column("sex")).gap


class TestReweighing:
    def test_weights_decorrelate_label_and_group(self, biased):
        weights = reweighing(biased, "sex")
        sex = biased.column("sex")
        labels = biased.labels()
        # weighted positive rate must match across groups
        rates = {}
        for group in ("male", "female"):
            mask = sex == group
            rates[group] = float(
                np.sum(weights[mask] * labels[mask]) / np.sum(weights[mask])
            )
        assert rates["male"] == pytest.approx(rates["female"], abs=1e-9)

    def test_weights_positive_and_mean_one_ish(self, biased):
        weights = reweighing(biased, "sex")
        assert np.all(weights > 0)
        assert weights.mean() == pytest.approx(1.0, abs=0.05)

    def test_reweighing_reduces_model_gap(self, biased):
        gap_plain = _trained_gap(biased)
        gap_reweighed = _trained_gap(biased, reweighing(biased, "sex"))
        assert gap_reweighed < gap_plain

    def test_requires_labels(self, biased):
        unlabeled = biased.drop_column("hired")
        with pytest.raises(MitigationError, match="labels"):
            reweighing(unlabeled, "sex")


class TestMassaging:
    def test_equalises_group_positive_rates(self, biased):
        repaired = massaging(biased, "sex")
        result = demographic_parity(repaired.labels(), repaired.column("sex"))
        assert result.gap < 0.02

    def test_preserves_overall_positive_count(self, biased):
        repaired = massaging(biased, "sex")
        assert repaired.labels().sum() == biased.labels().sum()

    def test_minimal_changes(self, biased):
        repaired = massaging(biased, "sex")
        changed = int(np.sum(repaired.labels() != biased.labels()))
        # 2*m relabelings where m ≈ rate-gap equaliser; far below n
        assert 0 < changed < 0.2 * biased.n_rows

    def test_already_fair_data_untouched(self):
        fair = make_hiring(n=2000, direct_bias=0.0, random_state=0)
        repaired = massaging(fair, "sex")
        changed = int(np.sum(repaired.labels() != fair.labels()))
        assert changed < 0.03 * fair.n_rows

    def test_non_binary_attribute_rejected(self, biased):
        ds = biased  # sex is binary; simulate 3 groups via race-less check
        from repro.data import make_intersectional

        inter = make_intersectional(n=200, random_state=0)
        # gender is binary there, so force error with a constructed column
        with pytest.raises(MitigationError, match="binary"):
            three = inter.with_column(
                inter.schema["gender"], inter.column("gender")
            )
            # craft a dataset whose protected column has 1 category present
            massaging(inter.filter(gender="male"), "gender")


class TestUniformResampling:
    def test_independence_after_resampling(self, biased):
        resampled = uniform_resampling(biased, "sex", random_state=0)
        result = demographic_parity(
            resampled.labels(), resampled.column("sex")
        )
        assert result.gap < 0.03

    def test_size_approximately_preserved(self, biased):
        resampled = uniform_resampling(biased, "sex", random_state=0)
        assert abs(resampled.n_rows - biased.n_rows) <= 4

    def test_deterministic(self, biased):
        a = uniform_resampling(biased, "sex", random_state=5)
        b = uniform_resampling(biased, "sex", random_state=5)
        np.testing.assert_array_equal(a.labels(), b.labels())
