"""Tests for in-processing and post-processing mitigations."""

import numpy as np
import pytest

from repro.core import demographic_parity, equal_opportunity
from repro.data import make_hiring
from repro.exceptions import MitigationError, NotFittedError, ValidationError
from repro.mitigation import (
    FairLogisticRegression,
    GroupThresholds,
    quota_selector,
)
from repro.models import LogisticRegression, Standardizer, accuracy


@pytest.fixture(scope="module")
def setup():
    ds = make_hiring(
        n=3000, direct_bias=2.0, proxy_strength=0.9, random_state=13
    )
    X = Standardizer().fit_transform(ds.feature_matrix())
    return ds, X, ds.labels(), ds.column("sex")


class TestFairLogisticRegression:
    def test_requires_groups(self, setup):
        __, X, y, __ = setup
        with pytest.raises(ValidationError, match="groups"):
            FairLogisticRegression().fit(X, y)

    def test_penalty_reduces_gap(self, setup):
        __, X, y, groups = setup
        plain = LogisticRegression(max_iter=800).fit(X, y)
        fair = FairLogisticRegression(fairness_weight=30.0, max_iter=800)
        fair.fit(X, y, groups=groups)
        gap_plain = demographic_parity(plain.predict(X), groups).gap
        gap_fair = demographic_parity(fair.predict(X), groups).gap
        assert gap_fair < gap_plain * 0.6

    def test_zero_weight_matches_plain(self, setup):
        __, X, y, groups = setup
        plain = LogisticRegression(max_iter=500).fit(X, y)
        fair = FairLogisticRegression(fairness_weight=0.0, max_iter=500)
        fair.fit(X, y, groups=groups)
        np.testing.assert_allclose(fair.coef_, plain.coef_, atol=1e-6)

    def test_accuracy_cost_is_bounded(self, setup):
        __, X, y, groups = setup
        plain = LogisticRegression(max_iter=800).fit(X, y)
        fair = FairLogisticRegression(fairness_weight=30.0, max_iter=800)
        fair.fit(X, y, groups=groups)
        assert accuracy(y, fair.predict(X)) > accuracy(y, plain.predict(X)) - 0.15

    def test_non_binary_groups_rejected(self, setup):
        __, X, y, __ = setup
        bad_groups = np.array(["a", "b", "c"] * (len(y) // 3 + 1))[: len(y)]
        with pytest.raises(ValidationError, match="binary"):
            FairLogisticRegression().fit(X, y, groups=bad_groups)


class TestGroupThresholds:
    def test_dp_target_equalises_selection_rates(self, setup):
        __, X, y, groups = setup
        model = LogisticRegression(max_iter=800).fit(X, y)
        probs = model.predict_proba(X)
        gap_before = demographic_parity(model.predict(X), groups).gap
        post = GroupThresholds("demographic_parity").fit(probs, groups)
        decisions = post.predict(probs, groups)
        gap_after = demographic_parity(decisions, groups).gap
        assert gap_after < 0.03
        assert gap_after < gap_before

    def test_eo_target_equalises_tpr(self, setup):
        __, X, y, groups = setup
        model = LogisticRegression(max_iter=800).fit(X, y)
        probs = model.predict_proba(X)
        post = GroupThresholds("equal_opportunity").fit(probs, groups, y_true=y)
        decisions = post.predict(probs, groups)
        result = equal_opportunity(y, decisions, groups)
        assert result.gap < 0.06

    def test_eo_requires_labels(self, setup):
        __, X, y, groups = setup
        probs = np.linspace(0.1, 0.9, len(y))
        with pytest.raises(MitigationError, match="y_true"):
            GroupThresholds("equal_opportunity").fit(probs, groups)

    def test_unknown_target_rejected(self):
        with pytest.raises(ValidationError):
            GroupThresholds("vibes")

    def test_predict_before_fit_raises(self, setup):
        __, __, y, groups = setup
        with pytest.raises(NotFittedError):
            GroupThresholds().predict(np.full(len(y), 0.5), groups)

    def test_unseen_group_at_predict_raises(self, setup):
        __, X, y, groups = setup
        post = GroupThresholds().fit(np.linspace(0, 1, len(y)), groups)
        with pytest.raises(MitigationError, match="not seen"):
            post.predict([0.5], ["martian"])

    def test_out_of_range_probabilities_rejected(self, setup):
        __, __, __, groups = setup
        with pytest.raises(ValidationError):
            GroupThresholds().fit(np.full(len(groups), 1.5), groups)


class TestQuotaSelector:
    def test_selects_exactly_n(self):
        rng = np.random.default_rng(0)
        scores = rng.random(100)
        groups = np.array(["a"] * 70 + ["b"] * 30)
        selected = quota_selector(scores, groups, n_select=20)
        assert selected.sum() == 20

    def test_proportional_default_quota(self):
        rng = np.random.default_rng(0)
        scores = np.concatenate([rng.random(70) + 1.0, rng.random(30)])
        groups = np.array(["a"] * 70 + ["b"] * 30)
        # group b scores strictly lower; without quotas b gets nothing
        selected = quota_selector(scores, groups, n_select=20)
        b_selected = selected[groups == "b"].sum()
        assert b_selected >= 6  # floor(0.3 * 20) = 6 reserved seats

    def test_explicit_quota(self):
        rng = np.random.default_rng(0)
        scores = np.concatenate([rng.random(70) + 1.0, rng.random(30)])
        groups = np.array(["a"] * 70 + ["b"] * 30)
        selected = quota_selector(
            scores, groups, n_select=20, quotas={"b": 0.5}
        )
        assert selected[groups == "b"].sum() >= 10

    def test_merit_within_group(self):
        scores = np.array([0.9, 0.1, 0.8, 0.2])
        groups = np.array(["a", "a", "b", "b"])
        selected = quota_selector(scores, groups, n_select=2,
                                  quotas={"a": 0.5, "b": 0.5})
        np.testing.assert_array_equal(selected, [1, 0, 1, 0])

    def test_overfull_quota_rejected(self):
        with pytest.raises(MitigationError, match="> 1"):
            quota_selector([1.0, 2.0], ["a", "b"], 1,
                           quotas={"a": 0.8, "b": 0.8})

    def test_too_many_selections_rejected(self):
        with pytest.raises(MitigationError, match="cannot select"):
            quota_selector([1.0], ["a"], 5)

    def test_unknown_quota_group_rejected(self):
        with pytest.raises(MitigationError, match="not in candidates"):
            quota_selector([1.0, 2.0], ["a", "a"], 1, quotas={"z": 0.5})
