"""Tests for repro.mitigation.ot_repair (group-aware and group-blind)."""

import numpy as np
import pytest

from repro.exceptions import MitigationError, NotFittedError
from repro.mitigation import GroupBlindRepair, QuantileRepair
from repro.stats import wasserstein1_empirical


def _two_group_scores(n=4000, shift=2.0, seed=0):
    rng = np.random.default_rng(seed)
    groups = np.where(rng.random(n) < 0.5, "a", "b")
    values = rng.normal(0, 1, n)
    values[groups == "b"] -= shift
    return values, groups


class TestQuantileRepair:
    def test_total_repair_removes_w1_gap(self):
        values, groups = _two_group_scores()
        repaired = QuantileRepair(amount=1.0).fit_transform(values, groups)
        gap = wasserstein1_empirical(
            repaired[groups == "a"], repaired[groups == "b"]
        )
        assert gap < 0.1

    def test_zero_amount_is_identity(self):
        values, groups = _two_group_scores()
        repaired = QuantileRepair(amount=0.0).fit_transform(values, groups)
        np.testing.assert_allclose(repaired, values)

    def test_partial_repair_in_between(self):
        values, groups = _two_group_scores()
        before = wasserstein1_empirical(
            values[groups == "a"], values[groups == "b"]
        )
        half = QuantileRepair(amount=0.5).fit_transform(values, groups)
        gap_half = wasserstein1_empirical(
            half[groups == "a"], half[groups == "b"]
        )
        assert 0.1 < gap_half < before

    def test_preserves_within_group_order(self):
        values, groups = _two_group_scores(n=500)
        repaired = QuantileRepair().fit_transform(values, groups)
        for g in ("a", "b"):
            order_before = np.argsort(values[groups == g], kind="stable")
            order_after = np.argsort(repaired[groups == g], kind="stable")
            np.testing.assert_array_equal(order_before, order_after)

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            QuantileRepair().transform([1.0], ["a"])

    def test_single_group_rejected(self):
        with pytest.raises(MitigationError, match="two groups"):
            QuantileRepair().fit([1.0, 2.0], ["a", "a"])

    def test_unseen_group_rejected(self):
        repair = QuantileRepair().fit([1.0, 2.0], ["a", "b"])
        with pytest.raises(MitigationError, match="not seen"):
            repair.transform([1.0], ["c"])


class TestGroupBlindRepair:
    def _references(self, shift=2.0, seed=1):
        rng = np.random.default_rng(seed)
        return {
            "a": rng.normal(0, 1, 3000),
            "b": rng.normal(-shift, 1, 3000),
        }

    def test_reduces_gap_without_labels(self):
        values, groups = _two_group_scores(shift=2.0, seed=2)
        repair = GroupBlindRepair(
            self._references(2.0), marginals={"a": 0.5, "b": 0.5}
        )
        diag = repair.gap_reduction(values, groups)
        assert diag["w1_before"] > 1.5
        assert diag["w1_after"] < diag["w1_before"]
        assert diag["relative_reduction"] > 0.1

    def test_transform_needs_no_group_labels(self):
        values, __ = _two_group_scores()
        repair = GroupBlindRepair(self._references())
        repaired = repair.transform(values)
        assert repaired.shape == values.shape
        assert np.all(np.isfinite(repaired))

    def test_monotone_map(self):
        values, __ = _two_group_scores(n=800)
        repair = GroupBlindRepair(self._references())
        repaired = repair.transform(values)
        order = np.argsort(values, kind="stable")
        diffs = np.diff(repaired[order])
        assert np.all(diffs >= -1e-9)

    def test_zero_amount_identity(self):
        values, __ = _two_group_scores(n=300)
        repair = GroupBlindRepair(self._references(), amount=0.0)
        np.testing.assert_allclose(repair.transform(values), values)

    def test_group_aware_beats_group_blind(self):
        # the information hierarchy: per-record labels allow full repair,
        # marginals only allow partial — the paper's IV.F trade-off
        values, groups = _two_group_scores(shift=2.0, seed=3)
        aware = QuantileRepair().fit_transform(values, groups)
        gap_aware = wasserstein1_empirical(
            aware[groups == "a"], aware[groups == "b"]
        )
        blind = GroupBlindRepair(self._references(2.0))
        gap_blind = blind.gap_reduction(values, groups)["w1_after"]
        assert gap_aware < gap_blind

    def test_marginals_must_match_groups(self):
        with pytest.raises(MitigationError, match="cover exactly"):
            GroupBlindRepair(self._references(), marginals={"a": 1.0})

    def test_requires_two_reference_groups(self):
        with pytest.raises(MitigationError, match="two groups"):
            GroupBlindRepair({"a": [1.0, 2.0]})

    def test_two_group_diagnostic_only(self):
        values = np.array([1.0, 2.0, 3.0])
        repair = GroupBlindRepair(self._references())
        with pytest.raises(MitigationError, match="exactly two"):
            repair.gap_reduction(values, ["a", "b", "c"])
