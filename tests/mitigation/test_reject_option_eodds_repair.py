"""Tests for reject-option, exact equalized-odds post-processing, and
the disparate-impact remover."""

import numpy as np
import pytest

from repro.core import demographic_parity, equalized_odds
from repro.data import make_hiring
from repro.exceptions import MitigationError, NotFittedError, ValidationError
from repro.mitigation import (
    DisparateImpactRemover,
    EqualizedOddsPostProcessor,
    RejectOptionClassifier,
)
from repro.models import LogisticRegression, Standardizer, accuracy
from repro.proxy import ProxyDetector


@pytest.fixture(scope="module")
def fitted():
    ds = make_hiring(
        n=4000, direct_bias=2.0, proxy_strength=0.9, random_state=23
    )
    X = Standardizer().fit_transform(ds.feature_matrix())
    model = LogisticRegression(max_iter=800).fit(X, ds.labels())
    probs = model.predict_proba(X)
    return ds, X, probs


class TestRejectOption:
    def test_band_zero_is_identity(self, fitted):
        ds, __, probs = fitted
        roc = RejectOptionClassifier("female", band=0.0)
        decisions = roc.predict(probs, ds.column("sex"))
        # only exact-0.5 scores would be flipped; virtually none exist
        plain = (probs >= 0.5).astype(int)
        assert np.mean(decisions != plain) < 0.01

    def test_band_flips_in_favor_of_disadvantaged(self, fitted):
        ds, __, probs = fitted
        sex = ds.column("sex")
        gap_before = demographic_parity(
            (probs >= 0.5).astype(int), sex
        ).gap
        roc = RejectOptionClassifier("female", band=0.15)
        decisions = roc.predict(probs, sex)
        gap_after = demographic_parity(decisions, sex).gap
        assert gap_after < gap_before

    def test_wider_band_flips_more(self, fitted):
        ds, __, probs = fitted
        narrow = RejectOptionClassifier("female", band=0.05)
        wide = RejectOptionClassifier("female", band=0.25)
        assert wide.band_size(probs) > narrow.band_size(probs)

    def test_widen_until_fair(self, fitted):
        ds, __, probs = fitted
        sex = ds.column("sex")
        roc = RejectOptionClassifier("female")
        band = roc.widen_until_fair(probs, sex, tolerance=0.05)
        decisions = roc.predict(probs, sex)
        assert demographic_parity(decisions, sex, tolerance=0.05).satisfied
        assert 0.0 <= band <= 0.5

    def test_unknown_group_rejected(self, fitted):
        ds, __, probs = fitted
        roc = RejectOptionClassifier("martian", band=0.1)
        with pytest.raises(MitigationError, match="absent"):
            roc.predict(probs, ds.column("sex"))

    def test_invalid_probabilities_rejected(self):
        roc = RejectOptionClassifier("a", band=0.1)
        with pytest.raises(ValidationError):
            roc.predict([1.5], ["a"])


class TestEqualizedOddsPostProcessor:
    def _setup(self, seed=0):
        ds = make_hiring(
            n=6000, direct_bias=2.0, proxy_strength=0.9, random_state=seed
        )
        # ground truth = true qualification, predictions = biased model
        qualified = (
            ds.column("qualification")
            > float(np.median(ds.column("qualification")))
        ).astype(int)
        X = Standardizer().fit_transform(ds.feature_matrix())
        model = LogisticRegression(max_iter=800).fit(X, ds.labels())
        preds = model.predict(X)
        return qualified, preds, ds.column("sex")

    def test_achieves_equalized_odds_in_expectation(self):
        y_true, preds, groups = self._setup()
        before = equalized_odds(y_true, preds, groups).gap
        post = EqualizedOddsPostProcessor(random_state=0).fit(
            y_true, preds, groups
        )
        derived = post.predict(preds, groups)
        after = equalized_odds(y_true, derived, groups).gap
        assert after < before
        assert after < 0.08  # sampling noise around the exact target

    def test_mixing_weights_are_convex(self):
        y_true, preds, groups = self._setup()
        post = EqualizedOddsPostProcessor(random_state=0).fit(
            y_true, preds, groups
        )
        for weights in post.mixing_.values():
            total = weights["base"] + weights["one"] + weights["zero"]
            assert total == pytest.approx(1.0)
            assert all(v >= -1e-12 for v in weights.values())

    def test_target_is_feasible_point(self):
        y_true, preds, groups = self._setup()
        post = EqualizedOddsPostProcessor(random_state=0).fit(
            y_true, preds, groups
        )
        fpr, tpr = post.target_
        assert 0.0 <= fpr <= 1.0
        assert 0.0 <= tpr <= 1.0

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            EqualizedOddsPostProcessor().predict([1, 0], ["a", "b"])

    def test_single_group_rejected(self):
        with pytest.raises(MitigationError, match="two groups"):
            EqualizedOddsPostProcessor().fit([1, 0], [1, 0], ["a", "a"])

    def test_deterministic_given_seed(self):
        y_true, preds, groups = self._setup()
        a = EqualizedOddsPostProcessor(random_state=9).fit(
            y_true, preds, groups
        ).predict(preds, groups)
        b = EqualizedOddsPostProcessor(random_state=9).fit(
            y_true, preds, groups
        ).predict(preds, groups)
        np.testing.assert_array_equal(a, b)


class TestDisparateImpactRemover:
    def test_removes_proxy_capacity(self):
        ds = make_hiring(
            n=3000, direct_bias=2.0, proxy_strength=0.0, random_state=31
        )
        # make numeric features sex-dependent to create numeric proxies
        sex = ds.column("sex")
        shifted = ds.with_column(
            ds.schema["experience"],
            ds.column("experience") + 3.0 * (sex == "male"),
        )
        before = ProxyDetector(random_state=0).scan(shifted, "sex")
        remover = DisparateImpactRemover(amount=1.0)
        repaired = remover.fit_transform(shifted, "sex")
        after = ProxyDetector(random_state=0).scan(repaired, "sex")
        exp_before = [s for s in before.scores if s.feature == "experience"][0]
        exp_after = [s for s in after.scores if s.feature == "experience"][0]
        assert exp_after.association < exp_before.association * 0.3

    def test_preserves_within_group_order(self):
        ds = make_hiring(n=1000, random_state=0)
        remover = DisparateImpactRemover(amount=1.0)
        repaired = remover.fit_transform(ds, "sex")
        sex = ds.column("sex")
        for group in ("male", "female"):
            mask = sex == group
            before = np.argsort(ds.column("experience")[mask], kind="stable")
            after = np.argsort(repaired.column("experience")[mask],
                               kind="stable")
            np.testing.assert_array_equal(before, after)

    def test_amount_zero_is_identity(self):
        ds = make_hiring(n=500, random_state=0)
        repaired = DisparateImpactRemover(amount=0.0).fit_transform(ds, "sex")
        np.testing.assert_allclose(
            repaired.column("experience"), ds.column("experience")
        )

    def test_categoricals_untouched(self):
        ds = make_hiring(n=500, proxy_strength=0.9, random_state=0)
        remover = DisparateImpactRemover().fit(ds, "sex")
        assert "university" not in remover.repaired_features
        repaired = remover.transform(ds)
        np.testing.assert_array_equal(
            repaired.column("university"), ds.column("university")
        )

    def test_requires_protected_attribute(self):
        ds = make_hiring(n=200, random_state=0)
        with pytest.raises(MitigationError, match="not protected"):
            DisparateImpactRemover().fit(ds, "experience")

    def test_transform_before_fit_raises(self):
        ds = make_hiring(n=200, random_state=0)
        with pytest.raises(MitigationError, match="fitted"):
            DisparateImpactRemover().transform(ds)

    def test_accuracy_survives_repair(self):
        ds = make_hiring(n=3000, direct_bias=0.0, random_state=2)
        repaired = DisparateImpactRemover().fit_transform(ds, "sex")
        X = Standardizer().fit_transform(repaired.feature_matrix())
        model = LogisticRegression(max_iter=600).fit(X, repaired.labels())
        assert accuracy(repaired.labels(), model.predict(X)) > 0.7


class TestEqualizedOddsTargetQuality:
    def test_partial_triangle_overlap_keeps_accuracy(self):
        """Regression: when group ROC points differ a lot (one triangle
        does not contain the other's point), the chosen common target
        must sit at the chord intersection, not the random-diagonal
        fallback — accuracy should stay well above chance."""
        from repro.data import make_recidivism
        from repro.models import accuracy as acc

        data = make_recidivism(n=8000, measurement_bias=0.25, random_state=9)
        truly = (
            data.column("propensity")
            > float(np.median(data.column("propensity")))
        ).astype(int)
        aware = data.with_role("race", "feature")
        X = Standardizer().fit_transform(aware.feature_matrix())
        model = LogisticRegression(max_iter=800).fit(X, aware.labels())
        preds = model.predict(X)
        race = data.column("race")

        post = EqualizedOddsPostProcessor(random_state=0).fit(
            truly, preds, race
        )
        derived = post.predict(preds, race)
        after = equalized_odds(truly, derived, race)
        assert after.gap < 0.05
        # diagonal fallback would score ~0.5; chord intersection ~0.68
        assert acc(truly, derived) > 0.6
        # the target is off-diagonal (a useful predictor)
        fpr, tpr = post.target_
        assert tpr - fpr > 0.2
