"""Tests for group-wise calibration repair."""

import numpy as np
import pytest

from repro.core import calibration_within_groups
from repro.exceptions import MitigationError, NotFittedError
from repro.mitigation import GroupCalibrator
from repro.models import sigmoid


@pytest.fixture(scope="module")
def miscalibrated():
    """Scores calibrated for group a, badly over-confident for group b."""
    rng = np.random.default_rng(0)
    n = 6000
    groups = np.where(rng.random(n) < 0.5, "a", "b")
    logits = rng.normal(0, 1.5, n)
    true_probs = np.where(
        groups == "a", sigmoid(logits), sigmoid(0.4 * logits - 0.8)
    )
    y = (rng.random(n) < true_probs).astype(int)
    scores = sigmoid(logits)  # correct for a, distorted for b
    return scores, groups, y


class TestGroupCalibrator:
    def test_closes_calibration_gap(self, miscalibrated):
        scores, groups, y = miscalibrated
        before = calibration_within_groups(y, scores, groups, tolerance=0.05)
        assert not before.satisfied
        repaired = GroupCalibrator().fit_transform(scores, groups, y)
        after = calibration_within_groups(y, repaired, groups, tolerance=0.05)
        assert after.gap < before.gap
        assert after.satisfied

    def test_calibrated_group_barely_changes(self, miscalibrated):
        scores, groups, y = miscalibrated
        repaired = GroupCalibrator().fit_transform(scores, groups, y)
        mask = groups == "a"
        # group a was already calibrated: its scores move little
        assert np.mean(np.abs(repaired[mask] - scores[mask])) < 0.05

    def test_output_in_unit_interval(self, miscalibrated):
        scores, groups, y = miscalibrated
        repaired = GroupCalibrator().fit_transform(scores, groups, y)
        assert np.all((repaired >= 0) & (repaired <= 1))

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            GroupCalibrator().transform([0.5], ["a"])

    def test_unseen_group_raises(self, miscalibrated):
        scores, groups, y = miscalibrated
        calibrator = GroupCalibrator().fit(scores, groups, y)
        with pytest.raises(MitigationError, match="not seen"):
            calibrator.transform([0.5], ["z"])

    def test_single_class_group_raises(self):
        scores = np.array([0.2, 0.8, 0.3, 0.7])
        groups = np.array(["a", "a", "b", "b"])
        y = np.array([0, 1, 1, 1])  # group b has only positives
        with pytest.raises(MitigationError, match="both outcome classes"):
            GroupCalibrator().fit(scores, groups, y)

    def test_single_group_raises(self):
        scores = np.array([0.2, 0.8, 0.3, 0.7])
        groups = np.array(["a"] * 4)
        y = np.array([0, 1, 0, 1])
        with pytest.raises(MitigationError, match="two groups"):
            GroupCalibrator().fit(scores, groups, y)
