"""Edge-case and validation tests for repro.core.metrics."""

import numpy as np
import pytest

from repro.core import (
    calibration_within_groups,
    conditional_demographic_disparity,
    conditional_statistical_parity,
    demographic_disparity,
    demographic_parity,
    disparate_impact_ratio,
    equal_opportunity,
    equalized_odds,
    predictive_parity,
)
from repro.core.types import EqualityConcept
from repro.exceptions import InsufficientDataError, MetricError, ValidationError


class TestValidation:
    def test_empty_inputs_rejected(self):
        with pytest.raises((MetricError, ValidationError)):
            demographic_parity([], [])

    def test_single_group_rejected_for_parity(self):
        with pytest.raises(MetricError, match="at least two groups"):
            demographic_parity([1, 0], ["a", "a"])

    def test_single_group_allowed_for_disparity(self):
        result = demographic_disparity([1, 1, 0], ["a", "a", "a"])
        assert result.satisfied

    def test_nonbinary_predictions_rejected(self):
        with pytest.raises(ValidationError):
            demographic_parity([0, 1, 2], ["a", "b", "a"])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="length mismatch"):
            demographic_parity([0, 1], ["a", "b", "a"])

    def test_tolerance_out_of_range(self):
        with pytest.raises(ValidationError):
            demographic_parity([0, 1], ["a", "b"], tolerance=2.0)


class TestTolerance:
    def test_gap_within_tolerance_passes(self):
        # rates 0.50 vs 0.45 → gap 0.05
        preds = [1] * 10 + [0] * 10 + [1] * 9 + [0] * 11
        groups = ["a"] * 20 + ["b"] * 20
        assert demographic_parity(preds, groups, tolerance=0.05).satisfied
        assert not demographic_parity(preds, groups, tolerance=0.01).satisfied

    def test_gap_and_ratio_consistency(self):
        preds = [1, 1, 1, 0, 1, 0, 0, 0]
        groups = ["a"] * 4 + ["b"] * 4
        result = demographic_parity(preds, groups)
        assert result.gap == pytest.approx(0.5)
        assert result.ratio == pytest.approx(0.25 / 0.75)


class TestInsufficientData:
    def test_equal_opportunity_no_positives_in_group(self):
        y_true = [1, 1, 0, 0]
        preds = [1, 0, 1, 0]
        groups = ["a", "a", "b", "b"]
        with pytest.raises(InsufficientDataError, match="no actual positives"):
            equal_opportunity(y_true, preds, groups)

    def test_equalized_odds_no_negatives_in_group(self):
        y_true = [1, 1, 1, 0]
        preds = [1, 0, 1, 0]
        groups = ["a", "a", "b", "b"]
        with pytest.raises(InsufficientDataError, match="no actual negatives"):
            equalized_odds(y_true, preds, groups)

    def test_predictive_parity_no_positive_predictions(self):
        y_true = [1, 0, 1, 0]
        preds = [0, 0, 1, 1]
        groups = ["a", "a", "b", "b"]
        with pytest.raises(InsufficientDataError, match="no positive"):
            predictive_parity(y_true, preds, groups)

    def test_csp_all_strata_skipped_raises(self):
        preds = [1, 0, 1, 0]
        groups = ["a", "a", "b", "b"]
        strata = ["s1", "s1", "s2", "s2"]  # no stratum has both groups
        with pytest.raises(InsufficientDataError, match="skipped"):
            conditional_statistical_parity(
                preds, groups, strata, min_stratum_group_size=1
            )

    def test_csp_records_skipped_strata(self):
        preds = [1, 0, 1, 0, 1, 0]
        groups = ["a", "b", "a", "b", "a", "a"]
        strata = ["s1", "s1", "s1", "s1", "s2", "s2"]
        result = conditional_statistical_parity(
            preds, groups, strata, min_stratum_group_size=1
        )
        assert result.skipped_strata == ("s2",)
        assert "s1" in result.strata


class TestSignificance:
    def test_two_group_significance_attached(self):
        rng = np.random.default_rng(0)
        groups = np.array(["a"] * 500 + ["b"] * 500)
        preds = np.concatenate([
            (rng.random(500) < 0.7).astype(int),
            (rng.random(500) < 0.3).astype(int),
        ])
        result = demographic_parity(preds, groups, with_significance=True)
        assert result.significance is not None
        assert result.significance.p_value < 1e-6

    def test_three_group_significance_is_chi_square(self):
        rng = np.random.default_rng(0)
        groups = np.array(["a"] * 300 + ["b"] * 300 + ["c"] * 300)
        preds = (rng.random(900) < 0.5).astype(int)
        result = demographic_parity(preds, groups, with_significance=True)
        assert result.significance.method == "chi_square"

    def test_no_significance_by_default(self):
        result = demographic_parity([1, 0], ["a", "b"])
        assert result.significance is None


class TestDisparateImpactRatio:
    def test_reference_defaults_to_highest(self):
        preds = [1] * 8 + [0] * 2 + [1] * 4 + [0] * 6
        groups = ["a"] * 10 + ["b"] * 10
        result = disparate_impact_ratio(preds, groups)
        assert result.details["reference_group"] == "a"
        assert result.ratio == pytest.approx(0.5)
        assert not result.satisfied  # 0.5 < 0.8

    def test_explicit_reference(self):
        preds = [1] * 8 + [0] * 2 + [1] * 4 + [0] * 6
        groups = ["a"] * 10 + ["b"] * 10
        result = disparate_impact_ratio(preds, groups, reference_group="b")
        assert result.details["reference_group"] == "b"
        assert result.details["ratios"]["a"] == pytest.approx(2.0)

    def test_unknown_reference_raises(self):
        with pytest.raises(MetricError, match="not present"):
            disparate_impact_ratio([1, 0], ["a", "b"], reference_group="z")

    def test_zero_reference_rate_gives_nan(self):
        result = disparate_impact_ratio([0, 0, 0, 0], ["a", "a", "b", "b"])
        assert np.isnan(result.ratio)
        assert not result.satisfied

    def test_four_fifths_boundary(self):
        # rates 0.8 vs 1.0 → ratio exactly 0.8, passes
        preds = [1] * 10 + [1] * 8 + [0] * 2
        groups = ["a"] * 10 + ["b"] * 10
        result = disparate_impact_ratio(preds, groups)
        assert result.satisfied


class TestCalibrationWithinGroups:
    def test_calibrated_groups_pass(self):
        rng = np.random.default_rng(0)
        n = 4000
        probs = rng.uniform(0.05, 0.95, n)
        y = (rng.random(n) < probs).astype(int)
        groups = np.where(rng.random(n) < 0.5, "a", "b")
        result = calibration_within_groups(y, probs, groups, tolerance=0.1)
        assert result.satisfied

    def test_miscalibrated_group_fails(self):
        rng = np.random.default_rng(0)
        n = 4000
        probs = rng.uniform(0.05, 0.95, n)
        groups = np.where(rng.random(n) < 0.5, "a", "b")
        true_probs = np.where(groups == "a", probs, np.clip(probs - 0.4, 0, 1))
        y = (rng.random(n) < true_probs).astype(int)
        result = calibration_within_groups(y, probs, groups, tolerance=0.1)
        assert not result.satisfied
        assert result.details["ece"]["b"] > result.details["ece"]["a"]


class TestEqualityConceptTags:
    @pytest.mark.parametrize("builder,expected", [
        (lambda: demographic_parity([1, 0], ["a", "b"]),
         EqualityConcept.EQUAL_OUTCOME),
        (lambda: demographic_disparity([1, 0], ["a", "b"]),
         EqualityConcept.EQUAL_OUTCOME),
        (lambda: equal_opportunity([1, 1], [1, 0], ["a", "b"]),
         EqualityConcept.EQUAL_TREATMENT),
    ])
    def test_tags_match_paper_iva(self, builder, expected):
        assert builder().equality_concept == expected


class TestConditionalDD:
    def test_mixed_strata(self):
        preds = [1, 1, 0, 0, 0, 0]
        groups = ["f"] * 6
        strata = ["j1", "j1", "j1", "j2", "j2", "j2"]
        result = conditional_demographic_disparity(preds, groups, strata)
        assert result.strata["j1"].satisfied  # 2/3 hired
        assert not result.strata["j2"].satisfied  # 0/3 hired
        assert result.gap == pytest.approx(0.5)
