"""The paper's Section III worked examples, reproduced exactly (E1–E7).

Each test builds the precise scenario from the paper's text (same
applicant counts, same hire counts) and asserts the same fair/unfair
verdict the paper states.
"""

import numpy as np
import pytest

from repro.causal import biased_hiring_scm
from repro.core import (
    conditional_demographic_disparity,
    conditional_statistical_parity,
    counterfactual_fairness,
    demographic_disparity,
    demographic_parity,
    equal_opportunity,
    equalized_odds,
)


def _arrays(*blocks):
    """Concatenate (value, count) blocks into one array."""
    out = []
    for value, count in blocks:
        out.extend([value] * count)
    return np.array(out)


class TestE1DemographicParity:
    """III.A: 10 female / 20 male applicants; 10 males hired (rate 0.5)."""

    def _scenario(self, females_hired: int):
        predictions = _arrays((1, 10), (0, 10), (1, females_hired),
                              (0, 10 - females_hired))
        groups = _arrays(("male", 20), ("female", 10))
        return predictions, groups

    def test_exactly_five_hired_females_is_fair(self):
        predictions, groups = self._scenario(5)
        result = demographic_parity(predictions, groups)
        assert result.satisfied
        assert result.rate_of("male") == pytest.approx(0.5)
        assert result.rate_of("female") == pytest.approx(0.5)
        assert result.gap == pytest.approx(0.0)

    @pytest.mark.parametrize("females_hired", [0, 1, 2, 3, 4])
    def test_fewer_than_five_biased_against_females(self, females_hired):
        predictions, groups = self._scenario(females_hired)
        result = demographic_parity(predictions, groups)
        assert not result.satisfied
        assert result.disadvantaged_group() == "female"

    @pytest.mark.parametrize("females_hired", [6, 7, 8, 9, 10])
    def test_more_than_five_biased_against_males(self, females_hired):
        predictions, groups = self._scenario(females_hired)
        result = demographic_parity(predictions, groups)
        assert not result.satisfied
        assert result.disadvantaged_group() == "male"


class TestE2ConditionalStatisticalParity:
    """III.B: 10 young males (5 hired) and 6 young females; fair iff 3 hired."""

    def _scenario(self, young_females_hired: int):
        # young males: 10 (5 hired); old males: 10 (0 hired for simplicity)
        # young females: 6 (k hired); old females: 4 (0 hired)
        predictions = np.concatenate([
            _arrays((1, 5), (0, 5)),            # young males
            _arrays((0, 10)),                    # old males
            _arrays((1, young_females_hired),    # young females
                    (0, 6 - young_females_hired)),
            _arrays((0, 4)),                     # old females
        ])
        groups = _arrays(("male", 20), ("female", 10))
        strata = np.concatenate([
            _arrays(("young", 10), ("old", 10)),
            _arrays(("young", 6), ("old", 4)),
        ])
        return predictions, groups, strata

    def test_three_young_females_hired_is_fair_within_young(self):
        predictions, groups, strata = self._scenario(3)
        result = conditional_statistical_parity(predictions, groups, strata)
        assert result.strata["young"].satisfied
        assert result.strata["young"].rate_of("female") == pytest.approx(0.5)
        assert result.strata["young"].rate_of("male") == pytest.approx(0.5)

    @pytest.mark.parametrize("hired", [0, 1, 2])
    def test_fewer_than_three_biased_against_young_females(self, hired):
        predictions, groups, strata = self._scenario(hired)
        result = conditional_statistical_parity(predictions, groups, strata)
        young = result.strata["young"]
        assert not young.satisfied
        assert young.disadvantaged_group() == "female"

    @pytest.mark.parametrize("hired", [4, 5, 6])
    def test_more_than_three_biased_against_young_males(self, hired):
        predictions, groups, strata = self._scenario(hired)
        result = conditional_statistical_parity(predictions, groups, strata)
        young = result.strata["young"]
        assert not young.satisfied
        assert young.disadvantaged_group() == "male"


class TestE3EqualOpportunity:
    """III.C: 10 qualified males (5 hired), 6 qualified females; fair iff 3."""

    def _scenario(self, qualified_females_hired: int):
        # males: 10 qualified (5 hired), 10 unqualified (0 hired)
        # females: 6 qualified (k hired), 4 unqualified (0 hired)
        y_true = np.concatenate([
            _arrays((1, 10), (0, 10)),
            _arrays((1, 6), (0, 4)),
        ])
        predictions = np.concatenate([
            _arrays((1, 5), (0, 5), (0, 10)),
            _arrays((1, qualified_females_hired),
                    (0, 6 - qualified_females_hired), (0, 4)),
        ])
        groups = _arrays(("male", 20), ("female", 10))
        return y_true, predictions, groups

    def test_three_hired_is_fair(self):
        y_true, predictions, groups = self._scenario(3)
        result = equal_opportunity(y_true, predictions, groups)
        assert result.satisfied
        assert result.rate_of("male") == pytest.approx(0.5)
        assert result.rate_of("female") == pytest.approx(0.5)

    @pytest.mark.parametrize("hired", [0, 1, 2])
    def test_fewer_biased_against_females(self, hired):
        y_true, predictions, groups = self._scenario(hired)
        result = equal_opportunity(y_true, predictions, groups)
        assert not result.satisfied
        assert result.disadvantaged_group() == "female"

    @pytest.mark.parametrize("hired", [4, 5, 6])
    def test_more_biased_against_males(self, hired):
        y_true, predictions, groups = self._scenario(hired)
        result = equal_opportunity(y_true, predictions, groups)
        assert not result.satisfied
        assert result.disadvantaged_group() == "male"

    def test_unconditional_rates_may_differ(self):
        # Equal opportunity ignores base rates: overall male hire rate is
        # 5/20 vs female 3/10 yet the metric is satisfied.
        y_true, predictions, groups = self._scenario(3)
        assert equal_opportunity(y_true, predictions, groups).satisfied
        assert not demographic_parity(predictions, groups).satisfied


class TestE4EqualizedOdds:
    """III.D: 6 female / 12 male; 6 qualified males, 3 qualified females."""

    def _scenario(self, females_pattern: str):
        """females_pattern: 'perfect' | 'miss_one' | 'false_positive'."""
        y_true = np.concatenate([
            _arrays((1, 6), (0, 6)),   # males: 6 good, 6 bad
            _arrays((1, 3), (0, 3)),   # females: 3 good, 3 bad
        ])
        male_preds = _arrays((1, 6), (0, 6))  # perfect male classification
        if females_pattern == "perfect":
            female_preds = _arrays((1, 3), (0, 3))
        elif females_pattern == "miss_one":
            female_preds = _arrays((1, 2), (0, 1), (0, 3))
        else:  # false_positive: hires one unqualified female
            female_preds = _arrays((1, 3), (1, 1), (0, 2))
        predictions = np.concatenate([male_preds, female_preds])
        groups = _arrays(("male", 12), ("female", 6))
        return y_true, predictions, groups

    def test_paper_scenario_is_fair(self):
        y_true, predictions, groups = self._scenario("perfect")
        result = equalized_odds(y_true, predictions, groups)
        assert result.satisfied
        assert result.details["tpr"]["male"] == pytest.approx(1.0)
        assert result.details["tpr"]["female"] == pytest.approx(1.0)
        assert result.details["fpr"]["male"] == pytest.approx(0.0)
        assert result.details["fpr"]["female"] == pytest.approx(0.0)
        # 9 hired, 9 rejected in total, as the paper sets up
        assert predictions.sum() == 9

    def test_missing_a_qualified_female_violates_tpr(self):
        y_true, predictions, groups = self._scenario("miss_one")
        result = equalized_odds(y_true, predictions, groups)
        assert not result.satisfied
        assert result.details["tpr_gap"] > 0.3
        assert result.details["fpr_gap"] == pytest.approx(0.0)

    def test_hiring_an_unqualified_female_violates_fpr(self):
        y_true, predictions, groups = self._scenario("false_positive")
        result = equalized_odds(y_true, predictions, groups)
        assert not result.satisfied
        assert result.details["tpr_gap"] == pytest.approx(0.0)
        assert result.details["fpr_gap"] > 0.3

    def test_stricter_than_equal_opportunity(self):
        y_true, predictions, groups = self._scenario("false_positive")
        assert equal_opportunity(y_true, predictions, groups).satisfied
        assert not equalized_odds(y_true, predictions, groups).satisfied


class TestE5DemographicDisparity:
    """III.E: 10 females; unfair iff more than 5 rejected."""

    def _scenario(self, females_hired: int):
        predictions = _arrays((1, females_hired), (0, 10 - females_hired))
        groups = _arrays(("female", 10))
        return predictions, groups

    @pytest.mark.parametrize("hired", [5, 6, 7, 8, 9, 10])
    def test_at_least_half_hired_is_fair(self, hired):
        predictions, groups = self._scenario(hired)
        assert demographic_disparity(predictions, groups).satisfied

    @pytest.mark.parametrize("hired", [0, 1, 2, 3, 4])
    def test_more_than_five_rejected_is_unfair(self, hired):
        predictions, groups = self._scenario(hired)
        result = demographic_disparity(predictions, groups)
        assert not result.satisfied
        assert result.details["shortfalls"]["female"] > 0


class TestE6ConditionalDemographicDisparity:
    """III.F: 100 females over 5 jobs; 40 hired overall.

    All females accepted in jobs 1–4 (10 each = 40 hired), all rejected in
    job 5 (60 applicants).  Unconditionally unfair; conditionally fair on
    jobs 1–4 and unfair on job 5 — the paper's exact narrative.
    """

    def _scenario(self):
        predictions = np.concatenate([
            _arrays((1, 10)) for __ in range(4)
        ] + [_arrays((0, 60))])
        groups = _arrays(("female", 100))
        strata = np.concatenate([
            _arrays((f"job{j}", 10)) for j in range(1, 5)
        ] + [_arrays(("job5", 60))])
        return predictions, groups, strata

    def test_unconditional_disparity_flags_unfair(self):
        predictions, groups, __ = self._scenario()
        result = demographic_disparity(predictions, groups)
        assert not result.satisfied
        assert result.rate_of("female") == pytest.approx(0.4)

    def test_conditional_is_fair_on_first_four_jobs(self):
        predictions, groups, strata = self._scenario()
        result = conditional_demographic_disparity(predictions, groups, strata)
        for job in ("job1", "job2", "job3", "job4"):
            assert result.strata[job].satisfied, job

    def test_conditional_is_unfair_on_fifth_job(self):
        predictions, groups, strata = self._scenario()
        result = conditional_demographic_disparity(predictions, groups, strata)
        assert not result.strata["job5"].satisfied
        assert result.violating_strata() == ["job5"]
        assert not result.satisfied


class TestE7CounterfactualFairness:
    """III.G: flip the protected attribute through the SCM; the prediction
    must not change."""

    def _observed(self, scm, n=400, seed=0):
        return scm.sample(n, random_state=seed)

    def test_biased_scm_plus_feature_predictor_is_unfair(self):
        # Sex causally shifts experience/skill; a predictor thresholding
        # those features flips when sex flips.
        scm = biased_hiring_scm(
            sex_effect_experience=-2.5, sex_effect_skill=-12.0
        )
        observed = self._observed(scm)

        def predictor(values):
            return (
                0.3 * values["experience"] + 0.1 * values["skill_score"] > 8.0
            ).astype(int)

        result = counterfactual_fairness(
            scm, observed, "sex",
            counterfactual_value=1.0 - observed["sex"],
            predictor=predictor,
        )
        assert not result.satisfied
        assert result.details["flip_rate"] > 0.05

    def test_no_causal_effect_means_fair(self):
        scm = biased_hiring_scm(sex_effect_experience=0.0, sex_effect_skill=0.0)
        observed = self._observed(scm)

        def predictor(values):
            return (values["experience"] > 5.0).astype(int)

        result = counterfactual_fairness(
            scm, observed, "sex",
            counterfactual_value=1.0 - observed["sex"],
            predictor=predictor,
        )
        assert result.satisfied
        assert result.details["flip_rate"] == pytest.approx(0.0)

    def test_predictor_on_noise_only_is_fair_even_under_bias(self):
        # A predictor using only the exogenous merit noise is
        # counterfactually fair regardless of the structural bias.
        scm = biased_hiring_scm(
            sex_effect_experience=-2.5, sex_effect_skill=-12.0
        )
        observed = self._observed(scm)

        def predictor(values):
            # experience minus the sex effect recovers 5 + u_experience
            return (
                values["experience"] - (-2.5) * values["sex"] > 5.0
            ).astype(int)

        result = counterfactual_fairness(
            scm, observed, "sex",
            counterfactual_value=1.0 - observed["sex"],
            predictor=predictor,
        )
        assert result.satisfied
