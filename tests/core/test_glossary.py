"""Tests for repro.core.glossary."""

import pytest

from repro.core.glossary import (
    GLOSSARY,
    define,
    related_terms,
    terms_in_section,
)
from repro.exceptions import LegalCatalogError


class TestLookup:
    def test_case_insensitive(self):
        entry = define("Disparate Impact")
        assert entry.term == "disparate impact"
        assert "neutral practices" in entry.definition

    def test_unknown_term_raises(self):
        with pytest.raises(LegalCatalogError, match="unknown glossary term"):
            define("vibes")

    def test_every_entry_has_section_and_discipline(self):
        for entry in GLOSSARY.values():
            assert entry.paper_section
            assert entry.discipline in ("law", "ml", "bridge")
            assert len(entry.definition) > 40

    def test_core_paper_terms_present(self):
        for term in (
            "direct discrimination", "indirect discrimination",
            "disparate treatment", "disparate impact",
            "equal treatment", "equal outcome", "affirmative action",
            "proxy discrimination", "fairness through unawareness",
            "discrimination by association", "intersectional discrimination",
            "feedback loop", "four-fifths rule", "proportionality test",
            "counterfactual fairness",
        ):
            define(term)


class TestCrossReferences:
    def test_related_terms_resolve(self):
        related = related_terms("proxy discrimination")
        names = {e.term for e in related}
        assert "fairness through unawareness" in names

    def test_all_related_references_valid(self):
        # every cross-reference must resolve to an existing entry
        for entry in GLOSSARY.values():
            for name in entry.related:
                define(name)

    def test_doctrine_pairs_cross_reference_each_other(self):
        eu_direct = define("direct discrimination")
        assert "disparate treatment" in eu_direct.related
        us_impact = define("disparate impact")
        assert "indirect discrimination" in us_impact.related


class TestSections:
    def test_section_iv_terms(self):
        terms = {e.term for e in terms_in_section("IV")}
        assert "proxy discrimination" in terms
        assert "feedback loop" in terms

    def test_section_ii_terms(self):
        terms = {e.term for e in terms_in_section("II")}
        assert "direct discrimination" in terms
        assert "disparate treatment" in terms
