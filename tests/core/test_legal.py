"""Tests for repro.core.legal."""

import pytest

from repro.core.legal import (
    Doctrine,
    ProportionalityTest,
    STATUTES,
    doctrines_for_metric,
    equality_concept_of,
    four_fifths_rule,
    metrics_for_doctrine,
    protected_attributes_in,
    statutes_protecting,
)
from repro.core.types import EqualityConcept
from repro.exceptions import LegalCatalogError


class TestStatuteCatalog:
    def test_paper_inventory_present(self):
        # the paper's II.B enumerates 13 US instruments; all are cataloged
        us_keys = {
            "title_vii", "ecoa", "fha", "title_vi", "pda", "epa", "adea",
            "ada_title_i", "cra_1991", "rehab_501_505", "gina", "pwfa",
            "ina_1965",
        }
        assert us_keys <= set(STATUTES)
        # and the EU instruments of II.A
        eu_keys = {
            "echr_art14", "esc_art_e", "eu_charter_art21", "eu_2000_43",
            "eu_2000_78", "eu_2004_113", "eu_2006_54",
        }
        assert eu_keys <= set(STATUTES)

    def test_title_vii_attributes(self):
        title_vii = STATUTES["title_vii"]
        assert title_vii.protects("sex", "employment")
        assert title_vii.protects("race", "employment")
        assert not title_vii.protects("age", "employment")
        assert not title_vii.protects("sex", "housing")

    def test_adea_is_age_only(self):
        adea = STATUTES["adea"]
        assert adea.protects("age", "employment")
        assert not adea.protects("sex", "employment")

    def test_fha_familial_status(self):
        assert STATUTES["fha"].protects("familial_status", "housing")

    def test_echr_has_no_sector_restriction(self):
        assert STATUTES["echr_art14"].protects("sex", "anything_at_all")


class TestStatutesProtecting:
    def test_sex_in_us_employment(self):
        keys = {s.key for s in statutes_protecting(
            "sex", sector="employment", jurisdiction="us"
        )}
        assert keys == {"title_vii", "epa", "cra_1991"}

    def test_race_in_eu(self):
        keys = {s.key for s in statutes_protecting("race", jurisdiction="eu")}
        assert "eu_2000_43" in keys
        assert "echr_art14" in keys

    def test_unknown_jurisdiction_raises(self):
        with pytest.raises(LegalCatalogError, match="unknown jurisdiction"):
            statutes_protecting("sex", jurisdiction="mars")

    def test_unprotected_attribute_empty(self):
        assert statutes_protecting("favorite_color") == []

    def test_protected_attributes_in_credit_us(self):
        attrs = protected_attributes_in("credit", jurisdiction="us")
        assert "marital_status" in attrs
        assert "race" in attrs


class TestMetricMappings:
    def test_paper_iva_classification(self):
        # "definitions A, B, E and F align with equal outcome, while C and
        # D with equal treatment. Definition G comprises a middle ground."
        assert equality_concept_of("demographic_parity") == EqualityConcept.EQUAL_OUTCOME
        assert equality_concept_of("conditional_statistical_parity") == EqualityConcept.EQUAL_OUTCOME
        assert equality_concept_of("demographic_disparity") == EqualityConcept.EQUAL_OUTCOME
        assert equality_concept_of("conditional_demographic_disparity") == EqualityConcept.EQUAL_OUTCOME
        assert equality_concept_of("equal_opportunity") == EqualityConcept.EQUAL_TREATMENT
        assert equality_concept_of("equalized_odds") == EqualityConcept.EQUAL_TREATMENT
        assert equality_concept_of("counterfactual_fairness") == EqualityConcept.HYBRID

    def test_unknown_metric_raises(self):
        with pytest.raises(LegalCatalogError, match="unknown metric"):
            equality_concept_of("vibes_parity")

    def test_doctrines_for_metric(self):
        assert Doctrine.INDIRECT in doctrines_for_metric("demographic_parity")
        assert Doctrine.DIRECT in doctrines_for_metric("counterfactual_fairness")

    def test_metrics_for_doctrine_accepts_us_aliases(self):
        eu = metrics_for_doctrine(Doctrine.INDIRECT)
        us = metrics_for_doctrine("disparate_impact")
        assert eu == us
        assert "demographic_parity" in eu

    def test_unknown_doctrine_raises(self):
        with pytest.raises(LegalCatalogError, match="unknown doctrine"):
            metrics_for_doctrine("vibes")


class TestFourFifthsRule:
    def test_passes_at_exact_boundary(self):
        finding = four_fifths_rule({"a": 1.0, "b": 0.8})
        assert finding.passes
        assert finding.ratio == pytest.approx(0.8)

    def test_fails_below(self):
        finding = four_fifths_rule({"a": 0.5, "b": 0.25})
        assert not finding.passes
        assert finding.disadvantaged_group == "b"
        assert finding.reference_group == "a"

    def test_nobody_selected_is_not_disparate(self):
        finding = four_fifths_rule({"a": 0.0, "b": 0.0})
        assert finding.passes
        assert finding.ratio == 1.0

    def test_custom_threshold(self):
        finding = four_fifths_rule({"a": 1.0, "b": 0.85}, threshold=0.9)
        assert not finding.passes

    def test_rejects_bad_rates(self):
        with pytest.raises(LegalCatalogError, match=r"\[0, 1\]"):
            four_fifths_rule({"a": 1.5})

    def test_rejects_empty(self):
        with pytest.raises(LegalCatalogError, match="non-empty"):
            four_fifths_rule({})

    def test_three_groups_uses_extremes(self):
        finding = four_fifths_rule({"a": 0.9, "b": 0.6, "c": 0.85})
        assert finding.reference_group == "a"
        assert finding.disadvantaged_group == "b"
        assert finding.ratio == pytest.approx(0.6 / 0.9)


class TestProportionalityTest:
    def test_all_prongs_pass(self):
        test = ProportionalityTest(
            aim="assess job-relevant coding skill",
            legitimate_aim=True, suitable=True, necessary=True,
            proportionate=True,
        )
        assert test.justified
        assert test.failing_prongs() == []
        assert "passes" in test.summary()

    def test_failing_prong_reported_in_order(self):
        test = ProportionalityTest(
            aim="reduce costs",
            legitimate_aim=True, suitable=True, necessary=False,
            proportionate=False,
        )
        assert not test.justified
        assert test.failing_prongs() == ["necessary", "proportionate"]
        assert "FAILS" in test.summary()

    def test_requires_stated_aim(self):
        with pytest.raises(LegalCatalogError, match="aim"):
            ProportionalityTest(
                aim="", legitimate_aim=True, suitable=True,
                necessary=True, proportionate=True,
            )
