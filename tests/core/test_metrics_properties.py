"""Property-based tests (hypothesis) for the fairness metrics.

Invariants checked:

* gaps are in [0, 1] and invariant to group relabeling and row order;
* perfect parity ⇔ gap 0 at tolerance 0;
* demographic parity is invariant under duplicating the whole sample;
* tolerance monotonicity: if satisfied at t, satisfied at every t' > t;
* equalized-odds gap upper-bounds the equal-opportunity gap.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    demographic_parity,
    equal_opportunity,
    equalized_odds,
)


@st.composite
def predictions_and_groups(draw, min_per_group=1):
    """Binary predictions with two groups, each non-empty."""
    n_a = draw(st.integers(min_per_group, 40))
    n_b = draw(st.integers(min_per_group, 40))
    preds = draw(
        st.lists(st.integers(0, 1), min_size=n_a + n_b, max_size=n_a + n_b)
    )
    groups = ["a"] * n_a + ["b"] * n_b
    return np.array(preds), np.array(groups)


@st.composite
def labeled_predictions(draw):
    """(y_true, preds, groups) with every (group, label) cell non-empty."""
    blocks = []
    for group in ("a", "b"):
        for label in (0, 1):
            count = draw(st.integers(1, 15))
            preds = draw(
                st.lists(st.integers(0, 1), min_size=count, max_size=count)
            )
            blocks.append((group, label, preds))
    y_true, predictions, groups = [], [], []
    for group, label, preds in blocks:
        for p in preds:
            y_true.append(label)
            predictions.append(p)
            groups.append(group)
    return np.array(y_true), np.array(predictions), np.array(groups)


class TestDemographicParityProperties:
    @given(predictions_and_groups())
    @settings(max_examples=80, deadline=None)
    def test_gap_in_unit_interval(self, data):
        preds, groups = data
        result = demographic_parity(preds, groups)
        assert 0.0 <= result.gap <= 1.0

    @given(predictions_and_groups())
    @settings(max_examples=60, deadline=None)
    def test_invariant_to_row_permutation(self, data):
        preds, groups = data
        rng = np.random.default_rng(0)
        order = rng.permutation(len(preds))
        a = demographic_parity(preds, groups)
        b = demographic_parity(preds[order], groups[order])
        assert a.gap == pytest.approx(b.gap)
        assert a.rates() == pytest.approx(b.rates())

    @given(predictions_and_groups())
    @settings(max_examples=60, deadline=None)
    def test_invariant_to_group_relabeling(self, data):
        preds, groups = data
        relabeled = np.where(groups == "a", "zebra", "yak")
        a = demographic_parity(preds, groups)
        b = demographic_parity(preds, relabeled)
        assert a.gap == pytest.approx(b.gap)

    @given(predictions_and_groups())
    @settings(max_examples=60, deadline=None)
    def test_duplication_invariance(self, data):
        preds, groups = data
        a = demographic_parity(preds, groups)
        b = demographic_parity(
            np.concatenate([preds, preds]), np.concatenate([groups, groups])
        )
        assert a.gap == pytest.approx(b.gap)

    @given(predictions_and_groups(), st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_tolerance_monotonicity(self, data, t1, t2):
        preds, groups = data
        low, high = min(t1, t2), max(t1, t2)
        if demographic_parity(preds, groups, tolerance=low).satisfied:
            assert demographic_parity(preds, groups, tolerance=high).satisfied

    @given(predictions_and_groups())
    @settings(max_examples=60, deadline=None)
    def test_zero_gap_iff_equal_rates(self, data):
        preds, groups = data
        result = demographic_parity(preds, groups)
        rates = list(result.rates().values())
        if result.gap == 0:
            assert rates[0] == pytest.approx(rates[1])
        else:
            assert rates[0] != pytest.approx(rates[1])

    @given(predictions_and_groups())
    @settings(max_examples=60, deadline=None)
    def test_all_same_prediction_is_fair(self, data):
        __, groups = data
        ones = np.ones(len(groups), dtype=int)
        assert demographic_parity(ones, groups).gap == 0.0
        zeros = np.zeros(len(groups), dtype=int)
        assert demographic_parity(zeros, groups).gap == 0.0


class TestErrorRateMetricProperties:
    @given(labeled_predictions())
    @settings(max_examples=60, deadline=None)
    def test_equalized_odds_gap_bounds_equal_opportunity_gap(self, data):
        y_true, preds, groups = data
        eo = equal_opportunity(y_true, preds, groups)
        eodds = equalized_odds(y_true, preds, groups)
        assert eodds.gap >= eo.gap - 1e-12

    @given(labeled_predictions())
    @settings(max_examples=60, deadline=None)
    def test_equalized_odds_satisfied_implies_eo_satisfied(self, data):
        y_true, preds, groups = data
        if equalized_odds(y_true, preds, groups, tolerance=0.1).satisfied:
            assert equal_opportunity(
                y_true, preds, groups, tolerance=0.1
            ).satisfied

    @given(labeled_predictions())
    @settings(max_examples=60, deadline=None)
    def test_perfect_predictor_satisfies_equalized_odds(self, data):
        y_true, __, groups = data
        result = equalized_odds(y_true, y_true, groups)
        assert result.satisfied
        assert result.gap == 0.0

    @given(labeled_predictions())
    @settings(max_examples=40, deadline=None)
    def test_prediction_flip_swaps_tpr_to_one_minus_fnr(self, data):
        y_true, preds, groups = data
        flipped = 1 - preds
        original = equalized_odds(y_true, preds, groups)
        inverted = equalized_odds(y_true, flipped, groups)
        for group in ("a", "b"):
            assert inverted.details["tpr"][group] == pytest.approx(
                1.0 - original.details["tpr"][group]
            )
