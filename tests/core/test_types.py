"""Unit tests for repro.core.types result objects."""

import numpy as np
import pytest

from repro.core.types import (
    ConditionalMetricResult,
    EqualityConcept,
    GroupStats,
    MetricResult,
    build_result,
)
from repro.exceptions import MetricError


def _stats(rates: dict) -> list[GroupStats]:
    return [
        GroupStats(group=g, n=100, positives=int(r * 100), rate=r)
        for g, r in rates.items()
    ]


class TestGroupStats:
    def test_rejects_negative_counts(self):
        with pytest.raises(MetricError):
            GroupStats(group="a", n=-1, positives=0, rate=0.0)

    def test_rejects_positives_above_n(self):
        with pytest.raises(MetricError, match="exceed"):
            GroupStats(group="a", n=2, positives=3, rate=1.5)


class TestBuildResult:
    def test_gap_and_ratio(self):
        result = build_result(
            "m", _stats({"a": 0.8, "b": 0.4}), tolerance=0.1,
            equality_concept=EqualityConcept.EQUAL_OUTCOME,
        )
        assert result.gap == pytest.approx(0.4)
        assert result.ratio == pytest.approx(0.5)
        assert not result.satisfied

    def test_satisfied_within_tolerance(self):
        result = build_result(
            "m", _stats({"a": 0.5, "b": 0.45}), tolerance=0.05,
            equality_concept=EqualityConcept.EQUAL_TREATMENT,
        )
        assert result.satisfied

    def test_zero_max_rate_nan_ratio(self):
        result = build_result(
            "m", _stats({"a": 0.0, "b": 0.0}), tolerance=0.0,
            equality_concept=EqualityConcept.EQUAL_OUTCOME,
        )
        assert np.isnan(result.ratio)
        assert result.gap == 0.0

    def test_empty_groups_rejected(self):
        with pytest.raises(MetricError, match="no groups"):
            build_result("m", [], 0.0, EqualityConcept.EQUAL_OUTCOME)

    def test_rate_values_override(self):
        result = build_result(
            "m", _stats({"a": 0.5, "b": 0.5}), tolerance=0.0,
            equality_concept=EqualityConcept.EQUAL_TREATMENT,
            rate_values=[0.9, 0.1],
        )
        assert result.gap == pytest.approx(0.8)


class TestMetricResultAccessors:
    @pytest.fixture
    def result(self):
        return build_result(
            "m", _stats({"a": 0.7, "b": 0.3, "c": 0.5}), tolerance=0.0,
            equality_concept=EqualityConcept.EQUAL_OUTCOME,
        )

    def test_rate_of(self, result):
        assert result.rate_of("b") == pytest.approx(0.3)
        with pytest.raises(MetricError, match="unknown group"):
            result.rate_of("z")

    def test_rates_and_counts(self, result):
        assert result.rates() == {"a": 0.7, "b": 0.3, "c": 0.5}
        assert result.counts() == {"a": 100, "b": 100, "c": 100}

    def test_extreme_groups(self, result):
        assert result.disadvantaged_group() == "b"
        assert result.advantaged_group() == "a"

    def test_repr_mentions_verdict(self, result):
        assert "violated" in repr(result)


class TestConditionalMetricResult:
    def _sub(self, gap, satisfied):
        return MetricResult(
            metric="m", group_stats=tuple(_stats({"a": 0.5})),
            gap=gap, ratio=1.0, tolerance=0.0, satisfied=satisfied,
            equality_concept=EqualityConcept.EQUAL_OUTCOME,
        )

    def test_satisfied_requires_all_strata(self):
        result = ConditionalMetricResult(
            metric="m", condition="s",
            strata={"s1": self._sub(0.0, True), "s2": self._sub(0.2, False)},
            tolerance=0.0,
            equality_concept=EqualityConcept.EQUAL_OUTCOME,
        )
        assert not result.satisfied
        assert result.gap == pytest.approx(0.2)
        assert result.violating_strata() == ["s2"]

    def test_empty_strata_gap_zero(self):
        result = ConditionalMetricResult(
            metric="m", condition="s", strata={}, tolerance=0.0,
            equality_concept=EqualityConcept.EQUAL_OUTCOME,
        )
        assert result.satisfied
        assert result.gap == 0.0
