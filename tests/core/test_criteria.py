"""Tests for repro.core.criteria — the Section IV selection engine."""

import pytest

from repro.core import UseCaseProfile, recommend_metrics, risk_flags
from repro.core.types import EqualityConcept
from repro.exceptions import ValidationError


def _profile(**overrides):
    defaults = dict(name="test case")
    defaults.update(overrides)
    return UseCaseProfile(**defaults)


class TestProfileValidation:
    def test_name_required(self):
        with pytest.raises(ValidationError, match="non-empty"):
            UseCaseProfile(name="")

    def test_jurisdiction_checked(self):
        with pytest.raises(ValidationError, match="jurisdiction"):
            _profile(jurisdiction="atlantis")

    def test_affirmative_action_requires_structural_bias(self):
        with pytest.raises(ValidationError, match="presupposes"):
            _profile(affirmative_action_mandated=True,
                     structural_bias_recognized=False)

    def test_protected_attribute_count(self):
        with pytest.raises(ValidationError, match="at least 1"):
            _profile(n_protected_attributes=0)


class TestRecommendations:
    def test_all_catalog_metrics_ranked(self):
        from repro.core import METRIC_CATALOG

        recs = recommend_metrics(_profile())
        assert len(recs) == len(METRIC_CATALOG)
        scores = [r.score for r in recs]
        assert scores == sorted(scores, reverse=True)

    def test_structural_bias_favours_equal_outcome(self):
        recs = recommend_metrics(_profile(structural_bias_recognized=True))
        top_feasible = [r for r in recs if r.feasible][0]
        assert top_feasible.equality_concept == EqualityConcept.EQUAL_OUTCOME

    def test_no_structural_bias_favours_equal_treatment(self):
        recs = recommend_metrics(
            _profile(structural_bias_recognized=False,
                     ground_truth_reliable=True)
        )
        top_feasible = [r for r in recs if r.feasible][0]
        assert top_feasible.equality_concept == EqualityConcept.EQUAL_TREATMENT

    def test_unreliable_labels_penalise_treatment_metrics(self):
        reliable = {r.metric: r.score for r in recommend_metrics(
            _profile(ground_truth_reliable=True)
        )}
        unreliable = {r.metric: r.score for r in recommend_metrics(
            _profile(ground_truth_reliable=False)
        )}
        assert unreliable["equal_opportunity"] < reliable["equal_opportunity"]
        assert unreliable["equalized_odds"] < reliable["equalized_odds"]
        # outcome metrics unaffected by label trust
        assert unreliable["demographic_parity"] == reliable["demographic_parity"]

    def test_missing_labels_make_treatment_metrics_infeasible(self):
        recs = {r.metric: r for r in recommend_metrics(
            _profile(labels_available=False)
        )}
        assert not recs["equal_opportunity"].feasible
        assert recs["equal_opportunity"].blockers
        assert recs["demographic_parity"].feasible

    def test_no_scm_blocks_counterfactual(self):
        recs = {r.metric: r for r in recommend_metrics(
            _profile(causal_model_available=False)
        )}
        assert not recs["counterfactual_fairness"].feasible

    def test_scm_boosts_counterfactual(self):
        recs = {r.metric: r for r in recommend_metrics(
            _profile(causal_model_available=True)
        )}
        assert recs["counterfactual_fairness"].feasible
        assert recs["counterfactual_fairness"].score > 0

    def test_strata_enable_conditional_metrics(self):
        without = {r.metric: r for r in recommend_metrics(_profile())}
        with_strata = {r.metric: r for r in recommend_metrics(
            _profile(legitimate_factors=("seniority",))
        )}
        assert not without["conditional_statistical_parity"].feasible
        assert with_strata["conditional_statistical_parity"].feasible

    def test_punitive_context_boosts_equalized_odds(self):
        plain = {r.metric: r.score for r in recommend_metrics(_profile())}
        punitive = {r.metric: r.score for r in recommend_metrics(
            _profile(punitive_context=True)
        )}
        assert punitive["equalized_odds"] > plain["equalized_odds"]
        assert punitive["equal_opportunity"] < plain["equal_opportunity"]

    def test_us_jurisdiction_boosts_disparate_impact_ratio(self):
        eu = {r.metric: r.score for r in recommend_metrics(
            _profile(jurisdiction="eu")
        )}
        us = {r.metric: r.score for r in recommend_metrics(
            _profile(jurisdiction="us")
        )}
        assert us["disparate_impact_ratio"] > eu["disparate_impact_ratio"]

    def test_eu_jurisdiction_boosts_cdd(self):
        eu = {r.metric: r.score for r in recommend_metrics(
            _profile(jurisdiction="eu", legitimate_factors=("job",))
        )}
        us = {r.metric: r.score for r in recommend_metrics(
            _profile(jurisdiction="us", legitimate_factors=("job",))
        )}
        assert eu["conditional_demographic_disparity"] > us[
            "conditional_demographic_disparity"
        ]

    def test_every_recommendation_has_rationale_or_blockers(self):
        for rec in recommend_metrics(_profile(causal_model_available=True)):
            assert rec.rationale or rec.blockers


class TestRiskFlags:
    def test_sampling_flag_always_present(self):
        flags = risk_flags(_profile())
        assert any(f.risk == "sampling_requirements" for f in flags)

    def test_proxy_flag(self):
        flags = risk_flags(_profile(proxy_risk=True))
        proxy = [f for f in flags if f.risk == "proxy_discrimination"]
        assert len(proxy) == 1
        assert proxy[0].paper_section == "IV.B"
        assert proxy[0].tooling

    def test_intersectional_flag_from_attribute_count(self):
        flags = risk_flags(_profile(n_protected_attributes=2))
        assert any(f.risk == "intersectional_discrimination" for f in flags)
        flags_single = risk_flags(_profile(n_protected_attributes=1))
        assert not any(
            f.risk == "intersectional_discrimination" for f in flags_single
        )

    def test_feedback_and_manipulation_flags(self):
        flags = risk_flags(_profile(feedback_loop_risk=True,
                                    manipulation_risk=True))
        risks = {f.risk for f in flags}
        assert "feedback_loops" in risks
        assert "audit_manipulation" in risks

    def test_all_flags_cite_paper_sections(self):
        profile = _profile(
            proxy_risk=True, n_protected_attributes=3,
            small_subgroups_expected=True, feedback_loop_risk=True,
            manipulation_risk=True,
        )
        for flag in risk_flags(profile):
            assert flag.paper_section.startswith("IV.")
