"""Tests for repro.core.audit and repro.core.report."""

import pytest

from repro.core import FairnessAudit, intersection_column
from repro.core.report import render_markdown, render_text
from repro.data import make_intersectional
from repro.exceptions import AuditError
from repro.models import LogisticRegression


class TestConstruction:
    def test_requires_protected_attribute(self, biased_hiring):
        stripped = biased_hiring.drop_column("sex")
        with pytest.raises(AuditError, match="no protected attributes"):
            FairnessAudit(stripped)

    def test_prediction_length_checked(self, biased_hiring):
        with pytest.raises(AuditError, match="length"):
            FairnessAudit(biased_hiring, predictions=[1, 0])

    def test_unknown_strata_rejected(self, biased_hiring):
        with pytest.raises(AuditError, match="strata column"):
            FairnessAudit(biased_hiring, strata="nope")

    def test_defaults_to_label_audit(self, biased_hiring):
        audit = FairnessAudit(biased_hiring)
        assert audit.audits_labels


class TestLabelAudit:
    def test_biased_labels_flagged(self, biased_hiring):
        report = FairnessAudit(biased_hiring, tolerance=0.05).run()
        assert not report.is_clean
        dp = report.finding("sex", "demographic_parity")
        assert dp.satisfied is False
        assert dp.result.disadvantaged_group() == "female"

    def test_clean_labels_pass_dp(self, clean_hiring):
        report = FairnessAudit(clean_hiring, tolerance=0.05).run()
        dp = report.finding("sex", "demographic_parity")
        assert dp.satisfied is True

    def test_ground_truth_metrics_skipped_for_label_audit(self, biased_hiring):
        report = FairnessAudit(biased_hiring).run()
        eo = report.finding("sex", "equal_opportunity")
        assert eo.status == "skipped"
        assert "ground-truth" in eo.reason

    def test_power_notes_present(self, biased_hiring):
        report = FairnessAudit(biased_hiring).run()
        note = report.power_notes["sex"]
        assert note["min_detectable_gap"] > 0


class TestModelAudit:
    def test_model_predictions_audited(self, biased_hiring):
        model = LogisticRegression(max_iter=400).fit_dataset(biased_hiring)
        preds = model.predict_dataset(biased_hiring)
        report = FairnessAudit(
            biased_hiring, predictions=preds, tolerance=0.05,
            strata="university",
        ).run()
        # with labels distinct from predictions, error-rate metrics run
        eo = report.finding("sex", "equal_opportunity")
        assert eo.status == "ok"
        eodds = report.finding("sex", "equalized_odds")
        assert eodds.status == "ok"

    def test_calibration_runs_with_probabilities(self, biased_hiring):
        model = LogisticRegression(max_iter=400).fit_dataset(biased_hiring)
        preds = model.predict_dataset(biased_hiring)
        probs = model.predict_proba_dataset(biased_hiring)
        report = FairnessAudit(
            biased_hiring, predictions=preds, probabilities=probs
        ).run()
        cal = report.finding("sex", "calibration_within_groups")
        assert cal.status == "ok"

    def test_calibration_skipped_without_probabilities(self, biased_hiring):
        model = LogisticRegression(max_iter=400).fit_dataset(biased_hiring)
        preds = model.predict_dataset(biased_hiring)
        report = FairnessAudit(biased_hiring, predictions=preds).run()
        cal = report.finding("sex", "calibration_within_groups")
        assert cal.status == "skipped"

    def test_four_fifths_attached_to_di(self, biased_hiring):
        report = FairnessAudit(biased_hiring).run()
        di = report.finding("sex", "disparate_impact_ratio")
        assert di.four_fifths is not None
        assert 0 <= di.four_fifths.ratio <= 1


class TestIntersectionalAudit:
    def test_intersection_column(self):
        ds = make_intersectional(n=50, random_state=0)
        combined = intersection_column(ds, ["gender", "race"])
        assert combined.shape == (50,)
        assert all("×" in v for v in combined)

    def test_intersection_requires_two(self, biased_hiring):
        with pytest.raises(AuditError, match="at least two"):
            intersection_column(biased_hiring, ["sex"])

    def test_intersectional_findings_present(self):
        ds = make_intersectional(n=3000, subgroup_penalty=0.3, random_state=0)
        report = FairnessAudit(ds, tolerance=0.05).run()
        assert report.intersectional_findings
        inter_dp = [
            f for f in report.intersectional_findings
            if f.metric == "demographic_parity"
        ][0]
        assert inter_dp.satisfied is False  # intersection is biased

    def test_marginal_audits_pass_while_intersection_fails(self):
        # The paper's IV.C phenomenon, visible in a single report.
        ds = make_intersectional(n=12000, subgroup_penalty=0.3, random_state=0)
        report = FairnessAudit(ds, tolerance=0.05).run()
        assert report.finding("gender", "demographic_parity").satisfied
        assert report.finding("race", "demographic_parity").satisfied
        inter = [
            f for f in report.intersectional_findings
            if f.metric == "demographic_parity"
        ][0]
        assert inter.satisfied is False

    def test_single_attribute_has_no_intersectional_block(self, biased_hiring):
        report = FairnessAudit(biased_hiring).run()
        assert report.intersectional_findings == []


class TestReportAccessors:
    def test_finding_lookup_raises_when_absent(self, biased_hiring):
        report = FairnessAudit(biased_hiring).run()
        with pytest.raises(AuditError, match="no finding"):
            report.finding("sex", "not_a_metric")

    def test_partition_of_findings(self, biased_hiring):
        report = FairnessAudit(biased_hiring).run()
        total = len(report.all_findings())
        assert total == (
            len(report.violations()) + len(report.passes())
            + len(report.skipped())
        )


class TestRendering:
    def test_markdown_contains_key_sections(self, biased_hiring):
        report = FairnessAudit(biased_hiring, strata="university").run()
        text = render_markdown(report)
        assert "# Fairness audit report" in text
        assert "demographic_parity" in text
        assert "four-fifths" in text
        assert "Statistical power" in text

    def test_markdown_flags_violations(self, biased_hiring):
        report = FairnessAudit(biased_hiring, tolerance=0.01).run()
        assert "VIOLATIONS FOUND" in render_markdown(report)

    def test_text_rendering_strips_markup(self, biased_hiring):
        report = FairnessAudit(biased_hiring).run()
        text = render_text(report)
        assert "**" not in text
        assert "`" not in text

    def test_intersectional_section_rendered(self):
        ds = make_intersectional(n=2000, random_state=0)
        report = FairnessAudit(ds).run()
        assert "Intersectional subgroups" in render_markdown(report)


class TestPredictionColumnAudit:
    def test_from_prediction_column(self, biased_hiring):
        from repro.models import LogisticRegression

        model = LogisticRegression(max_iter=400).fit_dataset(biased_hiring)
        ds = biased_hiring.with_predictions(
            model.predict_dataset(biased_hiring)
        )
        audit = FairnessAudit.from_prediction_column(ds)
        assert not audit.audits_labels
        report = audit.run()
        assert report.finding("sex", "equal_opportunity").status == "ok"

    def test_missing_column_raises(self, biased_hiring):
        with pytest.raises(AuditError, match="no column"):
            FairnessAudit.from_prediction_column(biased_hiring)


def _singleton_strata_dataset():
    """A strata column in which every stratum under-represents a group,
    so all conditional metrics hit the sparse-subgroup path (IV.C)."""
    from repro.data import Column, Schema, TabularDataset

    schema = Schema((
        Column(
            "sex", kind="categorical", role="protected",
            categories=("male", "female"),
        ),
        Column("dept", kind="categorical", categories=("a", "b")),
        Column("hired", kind="binary", role="label"),
    ))
    # dept=a holds every male and one female; dept=b the remaining
    # females: each stratum has a singleton (or absent) group.
    return TabularDataset(schema, {
        "sex": ["male"] * 10 + ["female"] * 10,
        "dept": ["a"] * 11 + ["b"] * 9,
        "hired": [1, 0] * 10,
    })


class TestSingletonStrataSkipPath:
    """Regression: sparse strata must yield skipped findings, never an
    uncaught exception (the existing skip path, now under supervision)."""

    def test_conditional_metrics_skipped_not_raised(self):
        report = FairnessAudit(_singleton_strata_dataset(), strata="dept").run()
        for metric in (
            "conditional_statistical_parity",
            "conditional_demographic_disparity",
        ):
            finding = report.finding("sex", metric)
            assert finding.status == "skipped"
            assert "skipped" in finding.reason or "stratum" in finding.reason

    def test_no_error_findings_from_sparse_strata(self):
        report = FairnessAudit(_singleton_strata_dataset(), strata="dept").run()
        assert report.errors() == []
        assert not report.degraded

    def test_skip_reason_rendered_in_markdown(self):
        report = FairnessAudit(_singleton_strata_dataset(), strata="dept").run()
        text = render_markdown(report)
        assert "SKIPPED" in text


class TestInsufficientDataSurfacing:
    """The structured ``group``/``count`` fields of
    :class:`InsufficientDataError` must reach the finding and report."""

    def _one_sided_dataset(self):
        from repro.data import Column, Schema, TabularDataset

        schema = Schema((
            Column(
                "sex", kind="categorical", role="protected",
                categories=("male", "female"),
            ),
            Column("hired", kind="binary", role="label"),
        ))
        # every female outcome is positive: equalized_odds cannot
        # estimate her false-positive rate (no actual negatives)
        return TabularDataset(schema, {
            "sex": ["male"] * 8 + ["female"] * 8,
            "hired": [1, 0] * 4 + [1] * 8,
        })

    def test_group_and_count_in_reason(self):
        data = self._one_sided_dataset()
        predictions = [1, 0] * 8
        report = FairnessAudit(data, predictions=predictions).run()
        finding = report.finding("sex", "equalized_odds")
        assert finding.status == "skipped"
        assert "group=female" in finding.reason
        assert "n=" in finding.reason

    def test_group_reaches_markdown_report(self):
        data = self._one_sided_dataset()
        report = FairnessAudit(data, predictions=[1, 0] * 8).run()
        assert "group=female" in render_markdown(report)
