"""Tests for the companion metrics: treatment equality, FPR parity,
overall accuracy equality."""

import numpy as np
import pytest

from repro.core import (
    FairnessAudit,
    equalized_odds,
    false_positive_rate_parity,
    overall_accuracy_equality,
    treatment_equality,
)
from repro.data import make_hiring
from repro.exceptions import InsufficientDataError
from repro.models import LogisticRegression, Standardizer


def _blocks(*pairs):
    out = []
    for value, count in pairs:
        out.extend([value] * count)
    return np.array(out)


class TestTreatmentEquality:
    def test_balanced_errors_satisfy(self):
        # both groups: 2 FN, 2 FP
        y_true = _blocks((1, 4), (0, 4), (1, 4), (0, 4))
        preds = np.concatenate([
            _blocks((1, 2), (0, 2), (0, 2), (1, 2)),
            _blocks((1, 2), (0, 2), (0, 2), (1, 2)),
        ])
        groups = _blocks(("a", 8), ("b", 8))
        result = treatment_equality(y_true, preds, groups)
        assert result.satisfied
        assert result.rate_of("a") == pytest.approx(0.5)

    def test_skewed_error_types_violate(self):
        # group a: all errors are FNs; group b: all errors are FPs
        y_true = _blocks((1, 4), (0, 4), (1, 4), (0, 4))
        preds = np.concatenate([
            _blocks((0, 4), (0, 4)),   # a: 4 FN, 0 FP
            _blocks((1, 4), (1, 4)),   # b: 0 FN, 4 FP
        ])
        groups = _blocks(("a", 8), ("b", 8))
        result = treatment_equality(y_true, preds, groups)
        assert not result.satisfied
        assert result.rate_of("a") == 1.0
        assert result.rate_of("b") == 0.0

    def test_error_free_group_raises(self):
        y_true = _blocks((1, 2), (0, 2), (1, 2), (0, 2))
        preds = np.concatenate([
            _blocks((1, 2), (0, 2)),   # a: perfect
            _blocks((0, 2), (1, 2)),   # b: all wrong
        ])
        groups = _blocks(("a", 4), ("b", 4))
        with pytest.raises(InsufficientDataError, match="no errors"):
            treatment_equality(y_true, preds, groups)


class TestFprParity:
    def test_half_of_equalized_odds(self):
        rng = np.random.default_rng(0)
        n = 2000
        groups = np.where(rng.random(n) < 0.5, "a", "b")
        y_true = rng.integers(0, 2, n)
        # equal TPR but unequal FPR between groups
        preds = np.where(
            y_true == 1,
            (rng.random(n) < 0.8).astype(int),
            np.where(groups == "a",
                     (rng.random(n) < 0.3).astype(int),
                     (rng.random(n) < 0.05).astype(int)),
        )
        fpr = false_positive_rate_parity(y_true, preds, groups)
        eodds = equalized_odds(y_true, preds, groups)
        assert not fpr.satisfied
        assert fpr.gap == pytest.approx(eodds.details["fpr_gap"], abs=1e-12)

    def test_no_negatives_in_group_raises(self):
        with pytest.raises(InsufficientDataError, match="no.*negatives"):
            false_positive_rate_parity(
                [1, 1, 0, 1], [1, 0, 0, 1], ["a", "a", "b", "b"]
            )


class TestOverallAccuracyEquality:
    def test_equal_accuracy_satisfies(self):
        y_true = _blocks((1, 5), (0, 5), (1, 5), (0, 5))
        preds = np.concatenate([
            _blocks((1, 4), (0, 1), (0, 5)),   # a: 1 FN → 9/10 correct
            _blocks((1, 5), (1, 1), (0, 4)),   # b: 1 FP → 9/10 correct
        ])
        groups = _blocks(("a", 10), ("b", 10))
        result = overall_accuracy_equality(y_true, preds, groups)
        assert result.satisfied
        assert result.rate_of("a") == pytest.approx(0.9)

    def test_weaker_than_equalized_odds(self):
        # equal accuracy can coexist with violated equalized odds
        y_true = _blocks((1, 5), (0, 5), (1, 5), (0, 5))
        preds = np.concatenate([
            _blocks((0, 1), (1, 4), (0, 5)),   # a: misses 1 positive
            _blocks((1, 5), (1, 1), (0, 4)),   # b: 1 false positive
        ])
        groups = _blocks(("a", 10), ("b", 10))
        acc = overall_accuracy_equality(y_true, preds, groups)
        eodds = equalized_odds(y_true, preds, groups)
        assert acc.satisfied
        assert not eodds.satisfied


class TestAuditIntegration:
    def test_new_metrics_run_in_model_audit(self):
        ds = make_hiring(n=1500, direct_bias=1.5, random_state=3)
        X = Standardizer().fit_transform(ds.feature_matrix())
        model = LogisticRegression(max_iter=500).fit(X, ds.labels())
        report = FairnessAudit(ds, predictions=model.predict(X)).run()
        for metric in ("treatment_equality", "false_positive_rate_parity",
                       "overall_accuracy_equality"):
            finding = report.finding("sex", metric)
            assert finding.status == "ok", metric

    def test_new_metrics_skipped_in_label_audit(self):
        ds = make_hiring(n=500, random_state=3)
        report = FairnessAudit(ds).run()
        finding = report.finding("sex", "treatment_equality")
        assert finding.status == "skipped"
