"""Tests for report comparison and the fairness/accuracy frontier."""

import pytest

from repro.core import FairnessAudit
from repro.core.compare import compare_reports
from repro.core.frontier import fairness_frontier
from repro.data import make_hiring
from repro.exceptions import AuditError, MetricError
from repro.mitigation import GroupThresholds
from repro.models import LogisticRegression, Standardizer


@pytest.fixture(scope="module")
def before_after_reports():
    ds = make_hiring(
        n=3000, direct_bias=2.0, proxy_strength=0.9, random_state=37
    )
    X = Standardizer().fit_transform(ds.feature_matrix())
    model = LogisticRegression(max_iter=800).fit(X, ds.labels())
    probs = model.predict_proba(X)
    preds = model.predict(X)

    post = GroupThresholds("demographic_parity").fit(probs, ds.column("sex"))
    fixed_preds = post.predict(probs, ds.column("sex"))

    before = FairnessAudit(ds, predictions=preds, tolerance=0.05).run()
    after = FairnessAudit(ds, predictions=fixed_preds, tolerance=0.05).run()
    return before, after


class TestCompareReports:
    def test_mitigation_shows_as_fixed_or_improved(self, before_after_reports):
        before, after = before_after_reports
        comparison = compare_reports(before, after)
        dp = [d for d in comparison.deltas
              if d.metric == "demographic_parity" and d.attribute == "sex"][0]
        assert dp.classification in ("fixed", "improved")
        assert dp.gap_change < 0

    def test_self_comparison_is_unchanged(self, before_after_reports):
        before, __ = before_after_reports
        comparison = compare_reports(before, before)
        comparable = [
            d for d in comparison.deltas
            if d.classification != "incomparable"
        ]
        assert comparable
        assert all(d.classification == "unchanged" for d in comparable)
        assert not comparison.is_strict_improvement

    def test_skipped_findings_incomparable(self, before_after_reports):
        before, after = before_after_reports
        comparison = compare_reports(before, after)
        # calibration was skipped (no probabilities passed to the audit)
        cal = [d for d in comparison.deltas
               if d.metric == "calibration_within_groups"][0]
        assert cal.classification == "incomparable"

    def test_summary_mentions_classes(self, before_after_reports):
        before, after = before_after_reports
        text = compare_reports(before, after).summary()
        assert "demographic_parity" in text

    def test_type_checked(self, before_after_reports):
        before, __ = before_after_reports
        with pytest.raises(AuditError, match="AuditReport"):
            compare_reports(before, "not a report")


class TestFairnessFrontier:
    @pytest.fixture(scope="class")
    def scored(self):
        ds = make_hiring(
            n=2500, direct_bias=2.0, proxy_strength=0.9, random_state=41
        )
        X = Standardizer().fit_transform(ds.feature_matrix())
        model = LogisticRegression(max_iter=800).fit(X, ds.labels())
        return model.predict_proba(X), ds.column("sex"), ds.labels()

    def test_frontier_is_pareto(self, scored):
        probs, groups, y = scored
        frontier = fairness_frontier(probs, groups, y, n_thresholds=11)
        gaps = [p.dp_gap for p in frontier.points]
        accs = [p.accuracy for p in frontier.points]
        assert gaps == sorted(gaps)
        assert accs == sorted(accs)  # more gap allowed → more accuracy

    def test_includes_near_zero_gap_point(self, scored):
        probs, groups, y = scored
        frontier = fairness_frontier(probs, groups, y, n_thresholds=11)
        assert frontier.points[0].dp_gap < 0.05

    def test_best_accuracy_within(self, scored):
        probs, groups, y = scored
        frontier = fairness_frontier(probs, groups, y, n_thresholds=11)
        strict = frontier.best_accuracy_within(0.02)
        loose = frontier.best_accuracy_within(0.3)
        assert strict.dp_gap <= 0.02 + 1e-12
        assert loose.accuracy >= strict.accuracy

    def test_price_of_fairness_nonnegative(self, scored):
        probs, groups, y = scored
        frontier = fairness_frontier(probs, groups, y, n_thresholds=11)
        price = frontier.price_of_fairness(0.02)
        assert price >= 0.0

    def test_impossible_gap_raises(self, scored):
        probs, groups, y = scored
        frontier = fairness_frontier(probs, groups, y, n_thresholds=5)
        with pytest.raises(MetricError, match="no frontier point"):
            frontier.best_accuracy_within(-0.5)

    def test_requires_two_groups(self):
        with pytest.raises(MetricError, match="exactly two"):
            fairness_frontier([0.5, 0.6], ["a", "a"], [0, 1])
