"""Intersectional fairness audit (paper Section IV.C), the promotion case.

Run with::

    python examples/intersectional_promotion.py

Builds the paper's exact IV.C scenario: a promotion system audited on
gender and race separately looks fair, yet non-Caucasian males and
Caucasian females are disproportionally unfavoured.  The example shows:

1. marginal audits passing on both attributes;
2. the exhaustive subgroup scan exposing the two crossed subgroups, with
   Wilson intervals and significance (the sparsity caveat, quantified);
3. the gerrymandering auditor finding the same region without
   enumeration;
4. the exponential cost of deeper drill-downs, computed explicitly.
"""

from repro import FairnessAudit, make_intersectional
from repro.subgroup import (
    GerrymanderingAuditor,
    adjust_for_multiple_testing,
    audit_subgroups,
    subgroup_space_size,
)


def main() -> None:
    data = make_intersectional(
        n=8000, subgroup_penalty=0.3, random_state=0
    )
    labels = data.labels()

    print("— Marginal audits (gender alone, race alone)")
    report = FairnessAudit(data, tolerance=0.05).run()
    for attribute in ("gender", "race"):
        finding = report.finding(attribute, "demographic_parity")
        verdict = "PASS" if finding.satisfied else "VIOLATED"
        print(f"  {attribute:<8} demographic parity: {verdict} "
              f"(gap {finding.result.gap:.3f})")

    print("\n— Exhaustive intersectional scan (order ≤ 2, Holm-corrected)")
    findings = adjust_for_multiple_testing(audit_subgroups(
        labels, data, attributes=["gender", "race"], max_order=2
    ))
    for f in findings[:4]:
        print(f"  {f.subgroup.label():<38} rate={f.rate:.3f} "
              f"vs rest={f.complement_rate:.3f} gap={f.gap:+.3f} "
              f"CI=({f.ci_low:.3f},{f.ci_high:.3f}) "
              f"p_adj={f.adjusted_p_value:.2e} "
              f"{'SIGNIFICANT' if f.significant() else 'n.s.'}")

    print("\n— Gerrymandering auditor (no enumeration)")
    worst = GerrymanderingAuditor(max_depth=3).find_worst_subgroup(
        labels, data
    )
    print(f"  worst subgroup: {worst.subgroup.label() or '(leaf region)'} "
          f"gap={worst.gap:+.3f} n={worst.subgroup.size} "
          f"p={worst.p_value:.2e}")

    print("\n— The exponential wall (paper IV.C)")
    for k, categories in ((3, 4), (6, 4), (10, 5)):
        size = subgroup_space_size([categories] * k, max_order=k)
        print(f"  {k} attributes × {categories} categories, full drill-down: "
              f"{size:,} subgroups")


if __name__ == "__main__":
    main()
