"""Full Section V compliance workflow: from use case to dossier.

Run with::

    python examples/compliance_dossier.py

Executes the paper's closing call — systematic guidelines for the
design, deployment and assessment of fairness methods — as a single
function call: describe the use case, hand over the data and the model's
decisions, receive a reviewable dossier that chains statutes (II),
criteria-driven metric selection (IV), the audit battery (III), and the
cross-cutting risk flags (IV.B–F), headlined by the verdict on the
criteria-selected primary metric.
"""

from repro.core import UseCaseProfile
from repro.data import make_hiring
from repro.models import LogisticRegression, Standardizer
from repro.workflow import run_compliance_workflow


def main() -> None:
    profile = UseCaseProfile(
        name="graduate hiring recommender (EU, positive-action policy)",
        sector="employment",
        jurisdiction="eu",
        structural_bias_recognized=True,
        affirmative_action_mandated=True,
        labels_available=True,
        ground_truth_reliable=False,    # historical decisions are biased
        legitimate_factors=("university",),
        proxy_risk=True,
        feedback_loop_risk=True,
    )

    data = make_hiring(
        n=3000, direct_bias=2.0, proxy_strength=0.9, random_state=11
    )
    scaler = Standardizer()
    model = LogisticRegression(max_iter=800)
    model.fit(scaler.fit_transform(data.feature_matrix()), data.labels())

    dossier = run_compliance_workflow(
        data,
        profile,
        predictions=model.predict(
            scaler.transform(data.feature_matrix())
        ),
        probabilities=model.predict_proba(
            scaler.transform(data.feature_matrix())
        ),
        tolerance=0.05,
        strata="university",
    )
    print(dossier.to_markdown())
    print(f"\n>>> headline verdict: {dossier.verdict.upper()} on "
          f"{dossier.primary_metric}")


if __name__ == "__main__":
    main()
