"""Fairness through unawareness fails (paper Section IV.B), demonstrated.

Run with::

    python examples/proxy_unawareness.py

Reproduces the paper's central IV.B warning: on a hiring dataset whose
labels are biased against women and whose ``university`` feature encodes
sex, removing the sex column barely changes the model's selection-rate
gap, because the proxy carries the bias.  The proxy detector then
identifies exactly which feature is responsible, and a concealment attack
shows that even explanation-based audits can be evaded — only the
outcome-based audit survives.
"""

from repro.data import make_hiring
from repro.data.schema import ColumnRole
from repro.manipulation import ConcealmentAttack, manipulation_report
from repro.models import LogisticRegression, Standardizer
from repro.proxy import (
    ProxyDetector,
    association_harm,
    fairness_through_unawareness,
)


def main() -> None:
    data = make_hiring(
        n=5000, direct_bias=2.5, proxy_strength=0.95, random_state=7
    )

    print("— Step 1: does dropping `sex` fix the bias? (IV.B)")
    report = fairness_through_unawareness(data, "sex", random_state=7)
    print(f"  aware model   gap={report.gap_aware:.3f} "
          f"acc={report.accuracy_aware:.3f}")
    print(f"  unaware model gap={report.gap_unaware:.3f} "
          f"acc={report.accuracy_unaware:.3f}")
    print(f"  => {report.conclusion()}\n")

    print("— Step 2: which feature is the proxy?")
    scan = ProxyDetector(random_state=7).scan(data, "sex")
    for score in scan.ranked():
        print(f"  {score.feature:<12} association={score.association:.3f} "
              f"reconstruction={score.reconstruction_power:.3f} "
              f"combined={score.combined:.3f}")
    print(f"  attribute reconstructible from all features: "
          f"{scan.attribute_is_reconstructible}\n")

    print("— Step 3: discrimination by association (IV.B)")
    scaler0 = Standardizer()
    unaware_model = LogisticRegression(max_iter=1000).fit(
        scaler0.fit_transform(data.feature_matrix()), data.labels()
    )
    harm = association_harm(
        data, "sex", "university",
        unaware_model.predict(scaler0.transform(data.feature_matrix())),
    )
    print(f"  {harm.summary()}\n")

    print("— Step 4: concealment attack vs audits (IV.E)")
    aware = data.with_role("sex", ColumnRole.FEATURE)
    scaler = Standardizer()
    X = scaler.fit_transform(aware.feature_matrix())
    names = aware.feature_matrix_names()
    sensitive = [i for i, n in enumerate(names) if n.startswith("sex=")]
    model = LogisticRegression(max_iter=1000).fit(X, aware.labels())

    honest = manipulation_report(model, X, data.column("sex"), sensitive)
    print(f"  honest model : explainer share={honest.explainer_share:.3f}, "
          f"outcome gap={honest.outcome_gap:.3f}, "
          f"diverge={honest.verdicts_diverge}")

    concealed = ConcealmentAttack(suppression=50.0).run(model, X, sensitive)
    attacked = manipulation_report(
        concealed.model, X, data.column("sex"), sensitive
    )
    print(f"  concealed    : explainer share={attacked.explainer_share:.3f}, "
          f"outcome gap={attacked.outcome_gap:.3f}, "
          f"diverge={attacked.verdicts_diverge}")
    print(f"  fidelity to original predictions: {concealed.fidelity:.3f}")
    print(f"  => {attacked.summary()}")


if __name__ == "__main__":
    main()
