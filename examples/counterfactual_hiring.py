"""Counterfactual fairness on a hiring SCM (paper Section III.G).

Run with::

    python examples/counterfactual_hiring.py

Builds the paper's III.G scenario on an explicit structural causal model
in which sex causally depresses the observable merit features.  Three
predictors are audited by flipping each applicant's sex *through the
SCM* (so downstream features adjust, exactly as the paper prescribes):

* a naive feature-threshold predictor — unfair (features carry the sex
  effect);
* the same predictor after a naive attribute swap that does NOT adjust
  features — reports a fake zero flip rate, the mistake the SCM approach
  exists to avoid;
* a predictor on the deconfounded merit component — counterfactually
  fair.
"""

import numpy as np

from repro.causal import biased_hiring_scm, counterfactual_flip_rate
from repro.core import counterfactual_fairness

EXPERIENCE_EFFECT = -2.0
SKILL_EFFECT = -10.0


def main() -> None:
    scm = biased_hiring_scm(
        sex_effect_experience=EXPERIENCE_EFFECT,
        sex_effect_skill=SKILL_EFFECT,
    )
    observed = scm.sample(5000, random_state=0)

    def feature_predictor(values):
        return (
            0.4 * values["experience"] + 0.1 * values["skill_score"] > 9.0
        ).astype(int)

    print("— Audit 1: feature-threshold predictor, SCM counterfactuals")
    result = counterfactual_fairness(
        scm, observed, "sex",
        counterfactual_value=1.0 - observed["sex"],
        predictor=feature_predictor,
    )
    print(f"  flip rate = {result.details['flip_rate']:.3f} "
          f"→ {'FAIR' if result.satisfied else 'UNFAIR'}")

    print("\n— Audit 2: same predictor, naive attribute swap (no adjustment)")
    naive_factual = feature_predictor(observed)
    naive_counter = feature_predictor(observed)  # features unchanged!
    flips = float(np.mean(naive_factual != naive_counter))
    print(f"  flip rate = {flips:.3f} → naively looks FAIR; the swap "
          "failed to adjust the features the paper says must change")

    print("\n— Audit 3: deconfounded-merit predictor")

    def merit_predictor(values):
        merit = values["experience"] - EXPERIENCE_EFFECT * values["sex"]
        return (merit > 5.0).astype(int)

    fair = counterfactual_flip_rate(
        scm, observed, "sex", 1.0 - observed["sex"], merit_predictor
    )
    print(f"  flip rate = {fair.flip_rate:.3f} "
          f"→ {'FAIR' if fair.is_fair else 'UNFAIR'}")


if __name__ == "__main__":
    main()
