"""ECOA credit-scoring scenario: disparate impact and its mitigation.

Run with::

    python examples/credit_scoring_ecoa.py

A lender's approval model is trained on a population with a structural
income gap and a redlined ``zip_region`` proxy for race.  The example:

1. audits the model under the US four-fifths rule (ECOA / disparate
   impact framing);
2. compares three mitigation placements — reweighing (pre), a fairness
   penalty (in), and group thresholds (post) — on the gap/accuracy
   trade-off, the paper's IV.A equal-treatment vs equal-outcome tension
   made quantitative;
3. runs the EU-style proportionality scaffold on the lender's proposed
   justification.
"""

from repro import FairnessAudit, make_credit
from repro.core import ProportionalityTest, demographic_parity
from repro.mitigation import (
    FairLogisticRegression,
    GroupThresholds,
    reweighing,
)
from repro.models import LogisticRegression, Standardizer, accuracy


def main() -> None:
    data = make_credit(
        n=6000, income_gap=1.2, redlining_strength=0.85, random_state=11
    )
    train, test = data.split(test_fraction=0.3, random_state=11,
                             stratify_by="race")
    scaler = Standardizer()
    X_train = scaler.fit_transform(train.feature_matrix())
    X_test = scaler.transform(test.feature_matrix())
    race_train = train.column("race")
    race_test = test.column("race")

    print("— Baseline model audit (four-fifths screen)")
    baseline = LogisticRegression(max_iter=800).fit(X_train, train.labels())
    preds = baseline.predict(X_test)
    report = FairnessAudit(test, predictions=preds, tolerance=0.05).run()
    di = report.finding("race", "disparate_impact_ratio")
    print(f"  selection rates: {di.result.rates()}")
    print(f"  four-fifths: {di.four_fifths}\n")

    print("— Mitigation ladder (gap vs accuracy)")
    rows = []
    rows.append(("baseline", preds))

    weights = reweighing(train, "race")
    pre = LogisticRegression(max_iter=800).fit(
        X_train, train.labels(), sample_weight=weights
    )
    rows.append(("reweighing (pre)", pre.predict(X_test)))

    fair = FairLogisticRegression(fairness_weight=30.0, max_iter=800)
    fair.fit(X_train, train.labels(), groups=race_train)
    rows.append(("penalty (in)", fair.predict(X_test)))

    post = GroupThresholds("demographic_parity").fit(
        baseline.predict_proba(X_train), race_train
    )
    rows.append(
        ("thresholds (post)", post.predict(baseline.predict_proba(X_test),
                                           race_test))
    )

    print(f"  {'method':<20} {'DP gap':>8} {'accuracy':>9}")
    for name, decisions in rows:
        gap = demographic_parity(decisions, race_test).gap
        acc = accuracy(test.labels(), decisions)
        print(f"  {name:<20} {gap:>8.3f} {acc:>9.3f}")

    print("\n— EU proportionality test on the lender's justification")
    test_result = ProportionalityTest(
        aim="price credit risk accurately using repayment-predictive factors",
        legitimate_aim=True,
        suitable=True,
        # income requirements predict repayment, but a less-discriminatory
        # model (above) achieves similar accuracy: necessity fails
        necessary=False,
        proportionate=False,
        rationale={
            "necessary": "group-threshold variant reaches near-identical "
            "accuracy with a fraction of the disparity",
        },
    )
    print(" ", test_result.summary())


if __name__ == "__main__":
    main()
