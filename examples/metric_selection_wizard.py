"""Criteria-driven metric selection (paper Section IV), as a wizard.

Run with::

    python examples/metric_selection_wizard.py

Describes two contrasting use cases as :class:`UseCaseProfile` objects —
an EU graduate-hiring system under a positive-action policy, and a US
credit scorer with trusted repayment labels — and prints the ranked
metric recommendations with the paper-derived rationale, plus the
cross-cutting risk flags (IV.B–IV.F) each deployment must address.
"""

from repro import UseCaseProfile, recommend_metrics, risk_flags
from repro.core import statutes_protecting


def describe(profile: UseCaseProfile) -> None:
    print("=" * 72)
    print(f"Use case: {profile.name}  [{profile.jurisdiction.upper()}, "
          f"{profile.sector}]")
    print("=" * 72)

    print("\nApplicable statutes for 'sex' in this sector:")
    for statute in statutes_protecting(
        "sex", sector=profile.sector, jurisdiction=profile.jurisdiction
    ):
        print(f"  - {statute.name} ({statute.year})")

    print("\nRanked metric recommendations:")
    for rec in recommend_metrics(profile):
        marker = " " if rec.feasible else "✗"
        print(f" {marker} {rec.score:+5.1f}  {rec.metric} "
              f"[{rec.equality_concept}]")
        for reason in rec.rationale[:2]:
            print(f"          · {reason}")
        for blocker in rec.blockers:
            print(f"          ✗ {blocker}")

    print("\nRisk flags:")
    for flag in risk_flags(profile):
        print(f"  [{flag.paper_section}] {flag.risk}: {flag.advice[:90]}...")
    print()


def main() -> None:
    eu_hiring = UseCaseProfile(
        name="graduate hiring with a board-mandated gender quota",
        sector="employment",
        jurisdiction="eu",
        structural_bias_recognized=True,
        affirmative_action_mandated=True,
        labels_available=True,
        ground_truth_reliable=False,  # past hiring decisions are biased
        legitimate_factors=("job_family",),
        causal_model_available=False,
        proxy_risk=True,
        feedback_loop_risk=True,
    )
    describe(eu_hiring)

    us_credit = UseCaseProfile(
        name="consumer credit scoring with observed repayment outcomes",
        sector="credit",
        jurisdiction="us",
        structural_bias_recognized=False,
        labels_available=True,
        ground_truth_reliable=True,  # repayment is objectively observed
        punitive_context=False,
        n_protected_attributes=2,
        proxy_risk=True,
        small_subgroups_expected=True,
    )
    describe(us_credit)


if __name__ == "__main__":
    main()
