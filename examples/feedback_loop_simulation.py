"""Feedback loops in a hiring market (paper Section IV.D), simulated.

Run with::

    python examples/feedback_loop_simulation.py

Three deployments of the same initially biased recommender:

* **laissez-faire** — decisions re-enter training data untouched;
* **discouragement** — additionally, under-selected groups apply less
  over time (the paper's applicant-discouragement channel);
* **intervention** — a parity post-processor corrects each round's
  decisions before they are recorded.

Prints the demographic-parity gap and female application share per
round; the intervention run is the only one whose gap collapses.
"""

import numpy as np

from repro.data import make_hiring
from repro.feedback import FeedbackLoopSimulator


def parity_intervention(decisions, cohort):
    """Promote rejected members of under-selected groups to the top rate."""
    sex = cohort.column("sex")
    fixed = decisions.copy()
    rates = {
        g: decisions[sex == g].mean()
        for g in ("male", "female") if (sex == g).any()
    }
    target = max(rates.values())
    for group, rate in rates.items():
        mask = sex == group
        deficit = int(round((target - rate) * mask.sum()))
        rejected = np.flatnonzero(mask & (decisions == 0))
        fixed[rejected[:deficit]] = 1
    return fixed


def run(label: str, **kwargs) -> None:
    seed_data = make_hiring(
        n=1500, direct_bias=2.0, proxy_strength=0.85, random_state=3
    )
    simulator = FeedbackLoopSimulator(
        initial_data=seed_data, cohort_size=500, random_state=3, **kwargs
    )
    history = simulator.run(n_rounds=8)
    print(f"\n{label}")
    print(f"  {'round':>5} {'DP gap':>8} {'female share':>13} "
          f"{'female hire rate':>17}")
    for record in history.records:
        print(
            f"  {record.round_index:>5} {record.dp_gap:>8.3f} "
            f"{record.application_shares['female']:>13.3f} "
            f"{record.hire_rates.get('female', float('nan')):>17.3f}"
        )
    print(f"  amplification (final − initial gap): "
          f"{history.amplification:+.3f}")


def main() -> None:
    run("laissez-faire (self-labelling only)")
    run("with applicant discouragement", discouragement=0.6)
    run("with per-round parity intervention",
        intervention=parity_intervention)


if __name__ == "__main__":
    main()
