"""Punitive-context auditing: recidivism risk scores (COMPAS-style).

Run with::

    python examples/recidivism_punitive.py

In punitive settings a *positive* prediction harms the individual, which
changes the metric choice (paper Section IV criteria): false-positive
balance and calibration matter, not selection rates.  This example:

1. lets the criteria engine rank metrics for a punitive US use case —
   equalized odds and calibration rise to the top;
2. trains a risk model on labels inflated by measurement bias against
   the minority group and audits it;
3. repairs the error-rate imbalance with the exact (randomised)
   equalized-odds post-processor;
4. repairs group calibration with per-group Platt maps, and shows the
   two fixes address different failures.
"""

import numpy as np

from repro.core import (
    UseCaseProfile,
    calibration_within_groups,
    equalized_odds,
    recommend_metrics,
)
from repro.data import make_recidivism
from repro.mitigation import EqualizedOddsPostProcessor, GroupCalibrator
from repro.models import LogisticRegression, Standardizer, accuracy


def main() -> None:
    print("— Step 1: metric selection for a punitive use case")
    profile = UseCaseProfile(
        name="pretrial risk scoring",
        sector="federally_funded_programs",
        jurisdiction="us",
        structural_bias_recognized=False,
        ground_truth_reliable=False,   # arrests ≠ offences
        punitive_context=True,
        proxy_risk=True,
    )
    for rec in recommend_metrics(profile)[:4]:
        print(f"  {rec.score:+5.1f} {rec.metric}")

    print("\n— Step 2: train on measurement-biased labels and audit")
    data = make_recidivism(
        n=8000, measurement_bias=0.25, random_state=9
    )
    # ground truth: the true propensity, not the recorded re-arrest
    truly_high_risk = (
        data.column("propensity")
        > float(np.median(data.column("propensity")))
    ).astype(int)

    # a race-AWARE deployment: the recorded labels are inflated for the
    # minority group, and with race visible the model learns to act on it
    aware = data.with_role("race", "feature")
    scaler = Standardizer()
    X = scaler.fit_transform(aware.feature_matrix())
    model = LogisticRegression(max_iter=800).fit(X, aware.labels())
    preds = model.predict(X)
    probs = model.predict_proba(X)
    race = data.column("race")

    before = equalized_odds(truly_high_risk, preds, race)
    print(f"  equalized odds vs true risk: gap={before.gap:.3f} "
          f"(FPR gap {before.details['fpr_gap']:.3f}) — the minority "
          "group absorbs extra false positives")

    print("\n— Step 3: exact equalized-odds post-processing")
    post = EqualizedOddsPostProcessor(random_state=0).fit(
        truly_high_risk, preds, race
    )
    derived = post.predict(preds, race)
    after = equalized_odds(truly_high_risk, derived, race)
    print(f"  gap {before.gap:.3f} → {after.gap:.3f}; accuracy "
          f"{accuracy(truly_high_risk, preds):.3f} → "
          f"{accuracy(truly_high_risk, derived):.3f} "
          "(randomised decisions — disclose this procedurally)")

    print("\n— Step 4: group calibration of the risk scores")
    cal_before = calibration_within_groups(
        truly_high_risk, probs, race, tolerance=0.05
    )
    repaired = GroupCalibrator().fit_transform(probs, race, truly_high_risk)
    cal_after = calibration_within_groups(
        truly_high_risk, repaired, race, tolerance=0.05
    )
    print(f"  worst-group ECE {cal_before.gap:.3f} → {cal_after.gap:.3f} "
          f"({'PASS' if cal_after.satisfied else 'still violated'})")


if __name__ == "__main__":
    main()
