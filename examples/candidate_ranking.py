"""Fair candidate ranking: exposure parity and re-ranking.

Run with::

    python examples/candidate_ranking.py

The paper's running example is hiring; modern hiring products *rank*
candidates rather than classify them, which moves the fairness question
from selection rates to *exposure* (recruiters read from the top).  This
example scores a biased candidate pool, shows that the merit ranking
under-exposes women even at equal headcount, and applies a prefix-fair
re-ranker, quantifying the exposure gained and the score cost paid —
the ranking version of the IV.A equal-treatment/equal-outcome dial.
"""

import numpy as np

from repro.data import make_hiring
from repro.models import LogisticRegression, Standardizer
from repro.ranking import (
    exposure_parity,
    fair_rerank,
    group_exposure,
    representation_at_k,
)


def main() -> None:
    data = make_hiring(
        n=400, direct_bias=2.0, proxy_strength=0.9, random_state=19
    )
    scaler = Standardizer()
    model = LogisticRegression(max_iter=800)
    model.fit(scaler.fit_transform(data.feature_matrix()), data.labels())
    scores = model.predict_proba(scaler.transform(data.feature_matrix()))
    groups = data.column("sex")

    merit_order = np.argsort(-scores)
    merit_groups = groups[merit_order]

    print("— Merit ranking (scores from the biased model)")
    print(f"  exposure shares: {group_exposure(merit_groups)}")
    print(f"  top-20 representation: {representation_at_k(merit_groups, 20)}")
    result = exposure_parity(merit_groups, tolerance=0.03)
    print(f"  exposure parity: "
          f"{'PASS' if result.satisfied else 'VIOLATED'} "
          f"(worst shortfall {result.gap:.3f})\n")

    fair_order = fair_rerank(scores, groups)
    fair_groups = groups[fair_order]

    print("— Fair re-ranking (prefix-proportional)")
    print(f"  exposure shares: {group_exposure(fair_groups)}")
    print(f"  top-20 representation: {representation_at_k(fair_groups, 20)}")
    result = exposure_parity(fair_groups, tolerance=0.03)
    print(f"  exposure parity: "
          f"{'PASS' if result.satisfied else 'VIOLATED'} "
          f"(worst shortfall {result.gap:.3f})")

    merit_top = scores[merit_order][:20].mean()
    fair_top = scores[fair_order][:20].mean()
    print(f"\n— Cost: mean top-20 score {merit_top:.3f} → {fair_top:.3f} "
          f"({merit_top - fair_top:+.3f} paid for exposure parity)")


if __name__ == "__main__":
    main()
