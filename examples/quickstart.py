"""Quickstart: audit a biased hiring dataset and a model trained on it.

Run with::

    python examples/quickstart.py

Walks the paper's core loop end to end: generate a hiring population with
historical label bias and a proxy feature, train a model that never sees
the protected attribute, audit it with every Section III definition, and
print the markdown report.
"""

from repro import FairnessAudit, make_hiring
from repro.models import LogisticRegression, Standardizer


def main() -> None:
    # A hiring population with direct label bias against women and a
    # university feature that strongly encodes sex (the IV.B proxy).
    data = make_hiring(
        n=4000,
        direct_bias=2.0,
        proxy_strength=0.9,
        random_state=42,
    )
    train, test = data.split(test_fraction=0.3, random_state=42,
                             stratify_by="sex")

    # Train a classifier.  Protected columns are never model features, so
    # this model is "fair through unawareness" — which the audit below
    # shows to be an empty guarantee.
    scaler = Standardizer()
    model = LogisticRegression(max_iter=800)
    model.fit(scaler.fit_transform(train.feature_matrix()), train.labels())
    predictions = model.predict(scaler.transform(test.feature_matrix()))
    probabilities = model.predict_proba(scaler.transform(test.feature_matrix()))

    # Audit the model's decisions on held-out applicants.
    audit = FairnessAudit(
        test,
        predictions=predictions,
        probabilities=probabilities,
        tolerance=0.05,
        strata="university",
    )
    report = audit.run()
    print(report.to_markdown())

    print("Violated metrics:",
          sorted({f.metric for f in report.violations()}))


if __name__ == "__main__":
    main()
