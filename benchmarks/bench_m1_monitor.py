"""M1-monitor — fleet data plane: exactness first, then throughput.

Three guards, in the order the fleet's contract demands:

1. **Equivalence before timing.**  A :class:`~repro.monitor.MonitorFleet`
   driving N streams must produce byte-identical window gaps,
   violations, and drift events to N independent pre-PR monitors run
   serially on the same per-stream data.  The pre-PR implementation is
   embedded below (``_LegacyListMonitor`` — Python-list buffering, a
   fresh accumulator materialised per window, per-window threshold
   drift) so the baseline cannot silently inherit fleet-era speedups.
2. **Aggregate ingest ≥ 20× the legacy baseline.**  64 streams of the
   default battery over two protected attributes, window 500: the
   fleet's sustained aggregate rows/s must beat the single-stream
   legacy monitor's by ``MIN_SPEEDUP``.
3. **Sequential detection curve.**  Over ≥ 200 null windows the
   spending+CUSUM detectors' false-alarm rate stays within the nominal
   alpha, while an injected gap at twice the drift threshold is caught
   within ``DETECT_WITHIN`` windows.

Results land in ``BENCH_M1.json`` for the cross-PR trajectory.
"""

import os
import time

import numpy as np

from repro.core.config import AuditConfig, MonitorConfig
from repro.monitor import MonitorFleet
from repro.streaming import AuditAccumulator, finalize

from benchmarks.conftest import report, write_bench_json

#: benchmark regime: the MonitorConfig defaults over two string-valued
#: protected attributes — the shape the paper's monitoring examples use.
WINDOW = 500
N_ROWS = int(os.environ.get("REPRO_M1_ROWS", 25_000))
N_STREAMS = int(os.environ.get("REPRO_M1_STREAMS", 64))
#: the tentpole guarantee: fleet aggregate ingest versus the pre-PR
#: single-stream monitor at the same point (same data, same window).
MIN_SPEEDUP = 20.0
#: detection-curve regime (guard 3)
PER_GROUP = 100
NULL_WINDOWS = 220
ALPHA = 0.05
DETECT_WITHIN = 3


class _LegacyListMonitor:
    """The pre-PR ``FairnessMonitor`` data plane, condensed verbatim.

    Buffers through Python lists (``tolist`` + list slicing), builds a
    fresh accumulator per window and materialises it through the full
    audit battery, then applies the running-mean threshold test — the
    exact observe() cost profile this PR replaced.  Observability hooks
    are omitted, which only flatters the baseline.
    """

    def __init__(self, protected, *, config, window, drift_threshold=0.1):
        self.protected = tuple(protected)
        self.config = config
        self.window = int(window)
        self.drift_threshold = float(drift_threshold)
        self.windows = []
        self.drift_events = []
        self._gap_history = {}
        self._rows_seen = 0
        self._buffer = {}

    def observe(self, y_true, predictions, protected):
        columns = {name: np.asarray(protected[name]) for name in self.protected}
        columns["__label__"] = np.asarray(y_true)
        columns["__prediction__"] = np.asarray(predictions)
        for name, arr in columns.items():
            self._buffer.setdefault(name, []).extend(arr.tolist())
        closed = []
        while len(self._buffer["__label__"]) >= self.window:
            closed.append(self._close_window(self.window))
        return closed

    def flush(self):
        remaining = len(self._buffer.get("__label__", []))
        return self._close_window(remaining) if remaining else None

    def _close_window(self, size):
        taken = {name: values[:size] for name, values in self._buffer.items()}
        self._buffer = {
            name: values[size:] for name, values in self._buffer.items()
        }
        start = self._rows_seen
        self._rows_seen += size
        index = len(self.windows)
        gaps, violations = self._audit_window(taken)
        drift = self._detect_drift(index, gaps)
        result = {
            "window": index,
            "rows": [start, self._rows_seen],
            "gaps": {key: round(gap, 6) for key, gap in gaps.items()},
            "violations": list(violations),
            "drift": [event for event in drift],
        }
        self.windows.append(result)
        self.drift_events.extend(drift)
        return result

    def _audit_window(self, taken):
        accumulator = AuditAccumulator(self.protected, label="outcome")
        accumulator.ingest(
            y_true=taken["__label__"],
            predictions=taken["__prediction__"],
            protected={name: taken[name] for name in self.protected},
        )
        audit = finalize(accumulator, self.config)
        gaps, violations = {}, []
        for finding in audit.findings:
            if finding.result is None:
                continue
            key = f"{finding.attribute}/{finding.metric}"
            gaps[key] = float(finding.result.gap)
            if finding.status == "violation":
                violations.append(key)
        return gaps, tuple(violations)

    def _detect_drift(self, index, gaps):
        events = []
        for key, gap in gaps.items():
            history = self._gap_history.setdefault(key, [])
            if history:
                baseline = float(np.mean(history))
                delta = gap - baseline
                if abs(delta) > self.drift_threshold:
                    attribute, metric = key.split("/", 1)
                    events.append({
                        "window": index,
                        "attribute": attribute,
                        "metric": metric,
                        "value": round(gap, 6),
                        "baseline": round(baseline, 6),
                        "delta": round(delta, 6),
                    })
            history.append(gap)
        return tuple(events)


def _stream_feed(n, seed):
    """One stream's rows: labels, 5%-biased predictions, two attributes."""
    rng = np.random.default_rng(seed)
    sex = np.where(rng.random(n) < 0.5, "female", "male")
    race = rng.choice(
        np.array(["groupa", "groupb", "groupc", "groupd"]), size=n
    )
    y = (rng.random(n) < 0.5).astype(int)
    p = y.copy()
    p[(sex == "female") & (rng.random(n) < 0.05)] = 0
    return y, p, {"sex": sex, "race": race}


def _exact_window(rate_f, rate_m, rng):
    """A window of 2 * PER_GROUP rows with binomially sampled rates."""
    nf = rng.binomial(PER_GROUP, rate_f)
    nm = rng.binomial(PER_GROUP, rate_m)
    sex = np.array(["female"] * PER_GROUP + ["male"] * PER_GROUP)
    p = np.concatenate([
        np.r_[np.ones(nf), np.zeros(PER_GROUP - nf)],
        np.r_[np.ones(nm), np.zeros(PER_GROUP - nm)],
    ]).astype(int)
    return np.ones(2 * PER_GROUP, dtype=int), p, sex


def _assert_fleet_matches_serial_legacy(config):
    """Guard 1: byte-identical results, asserted before any timing."""
    feeds = {f"s{i}": _stream_feed(3 * WINDOW, 100 + i) for i in range(4)}
    fleet = MonitorFleet(
        ["sex", "race"], config=config, monitor=MonitorConfig(window=WINDOW)
    )
    for name, (y, p, prot) in feeds.items():
        fleet.observe(name, y_true=y, predictions=p, protected=prot)
    fleet.flush()
    for name, (y, p, prot) in feeds.items():
        legacy = _LegacyListMonitor(
            ["sex", "race"], config=config, window=WINDOW
        )
        legacy.observe(y_true=y, predictions=p, protected=prot)
        legacy.flush()
        ours = [w.to_dict() for w in fleet.stream(name).windows]
        theirs = legacy.windows
        assert ours == theirs, (
            f"fleet stream {name!r} diverged from the serial legacy "
            f"monitor: {ours[:1]} vs {theirs[:1]}"
        )


def _detection_curve():
    """Guard 3: null false-alarm rate and injected-drift latency."""
    rng = np.random.default_rng(0)
    monitor = MonitorConfig(
        window=2 * PER_GROUP, drift_threshold=0.1,
        detectors=("spending", "cusum"), alpha=ALPHA, horizon=NULL_WINDOWS,
    )
    fleet = MonitorFleet(
        ["sex"],
        config=AuditConfig(metrics=("demographic_parity",)),
        monitor=monitor,
    )
    for _ in range(NULL_WINDOWS):
        y, p, sex = _exact_window(0.5, 0.5, rng)
        fleet.observe("s", y_true=y, predictions=p, protected={"sex": sex})
    state = fleet.stream("s")
    false_alarms = len({e.window for e in state.drift_events})
    for _ in range(DETECT_WITHIN):
        y, p, sex = _exact_window(0.3, 0.5, rng)
        fleet.observe("s", y_true=y, predictions=p, protected={"sex": sex})
    detected = [
        e.window for e in state.drift_events if e.window >= NULL_WINDOWS
    ]
    latency = min(detected) - NULL_WINDOWS + 1 if detected else None
    return false_alarms / NULL_WINDOWS, latency


def test_m1_monitor_fleet(benchmark):
    config = AuditConfig()
    _assert_fleet_matches_serial_legacy(config)

    legacy_feed = _stream_feed(N_ROWS, 0)
    fleet_feeds = {f"s{i}": _stream_feed(N_ROWS, i) for i in range(N_STREAMS)}

    def experiment():
        # legacy baseline: best of 3 single-stream runs
        y, p, prot = legacy_feed
        legacy_s = float("inf")
        for _ in range(3):
            legacy = _LegacyListMonitor(
                ["sex", "race"], config=config, window=WINDOW
            )
            start = time.perf_counter()
            legacy.observe(y_true=y, predictions=p, protected=prot)
            legacy_s = min(legacy_s, time.perf_counter() - start)

        # fleet: best of 2 over N_STREAMS streams
        fleet_s = float("inf")
        for _ in range(2):
            fleet = MonitorFleet(
                ["sex", "race"], config=config,
                monitor=MonitorConfig(window=WINDOW),
            )
            start = time.perf_counter()
            for name, (fy, fp, fprot) in fleet_feeds.items():
                fleet.observe(name, y_true=fy, predictions=fp, protected=fprot)
            fleet_s = min(fleet_s, time.perf_counter() - start)

        false_alarm_rate, latency = _detection_curve()
        return legacy_s, fleet_s, false_alarm_rate, latency

    legacy_s, fleet_s, false_alarm_rate, latency = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    legacy_rps = N_ROWS / legacy_s
    fleet_rps = N_ROWS * N_STREAMS / fleet_s
    speedup = fleet_rps / legacy_rps

    report("M1-monitor fleet data plane", [
        ("streams", "rows/stream", "window", "legacy rows/s",
         "fleet rows/s", "speedup", "null FA rate", "detect latency"),
        (N_STREAMS, N_ROWS, WINDOW, round(legacy_rps), round(fleet_rps),
         round(speedup, 1), round(false_alarm_rate, 4), latency),
    ])
    write_bench_json("M1", {
        "n_streams": N_STREAMS,
        "rows_per_stream": N_ROWS,
        "window": WINDOW,
        "legacy_rows_per_second": round(legacy_rps),
        "fleet_rows_per_second": round(fleet_rps),
        "speedup": round(speedup, 2),
        "null_windows": NULL_WINDOWS,
        "false_alarm_rate": round(false_alarm_rate, 4),
        "detection_latency_windows": latency,
        "floors": {
            "min_speedup": MIN_SPEEDUP,
            "max_false_alarm_rate": ALPHA,
            "max_detection_latency": DETECT_WITHIN,
        },
    })

    assert speedup >= MIN_SPEEDUP, (
        f"fleet ingest speedup regressed: {speedup:.1f}x < "
        f"floor {MIN_SPEEDUP}x ({fleet_rps:.0f} vs {legacy_rps:.0f} rows/s)"
    )
    assert false_alarm_rate <= ALPHA, (
        f"sequential detectors alarm too often under the null: "
        f"{false_alarm_rate:.3f} > alpha {ALPHA}"
    )
    assert latency is not None and latency <= DETECT_WITHIN, (
        f"injected 2x-threshold drift not caught within "
        f"{DETECT_WITHIN} windows (latency={latency})"
    )
