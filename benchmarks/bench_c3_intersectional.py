"""C3 — paper §IV.C: marginal fairness, intersectional unfairness.

Claim reproduced: the promotion system is fair on gender alone and race
alone, yet non-Caucasian males and Caucasian females are disadvantaged;
the exhaustive scan and the gerrymandering oracle both expose exactly
those crossed subgroups, and the subgroup space grows exponentially.
"""

from repro.core import demographic_parity
from repro.data import make_intersectional
from repro.subgroup import (
    GerrymanderingAuditor,
    audit_subgroups,
    subgroup_space_size,
)

from benchmarks.conftest import report


def test_c3_intersectional_audit(benchmark):
    def experiment():
        data = make_intersectional(
            n=8000, subgroup_penalty=0.3, random_state=0
        )
        labels = data.labels()
        gender_gap = demographic_parity(labels, data.column("gender")).gap
        race_gap = demographic_parity(labels, data.column("race")).gap

        findings = audit_subgroups(
            labels, data, attributes=["gender", "race"], max_order=2
        )
        top = findings[0]
        oracle = GerrymanderingAuditor(max_depth=3).find_worst_subgroup(
            labels, data
        )
        return gender_gap, race_gap, findings, top, oracle

    gender_gap, race_gap, findings, top, oracle = benchmark.pedantic(
        experiment, rounds=2, iterations=1
    )
    rows = [
        ("gender marginal gap", round(gender_gap, 3)),
        ("race marginal gap", round(race_gap, 3)),
        ("worst enumerated subgroup", top.subgroup.label()),
        ("  its gap vs rest", round(top.gap, 3)),
        ("oracle-found subgroup gap", round(oracle.gap, 3)),
        ("subgroup space (10 attrs × 5 cats, full order)",
         subgroup_space_size([5] * 10, max_order=10)),
    ]
    report("C3 intersectional discrimination", rows)

    # marginals pass at the 0.05 tolerance
    assert gender_gap < 0.05
    assert race_gap < 0.05
    # the crossed subgroups carry a large, significant gap
    crossed_labels = {
        "gender=male ∧ race=non_caucasian",
        "gender=female ∧ race=caucasian",
    }
    top_two = {f.subgroup.label() for f in findings[:2]}
    assert top_two <= crossed_labels | {
        "gender=female ∧ race=non_caucasian",
        "gender=male ∧ race=caucasian",
    }
    assert abs(top.gap) > 0.3
    assert top.significant()
    # the oracle finds a comparably disparate region without enumeration
    assert abs(oracle.gap) > 0.3
