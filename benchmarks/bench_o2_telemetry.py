"""O2 — unified telemetry pipeline overhead: off vs fully enabled.

PR 7 rebuilt the telemetry layer (trace contexts, labeled metrics with
bounded histograms, the alerting event bus).  The contract is the same
as O1's but tighter, because the new instruments sit on hotter paths:

* telemetry *off* (the production default — null tracer, process
  registry, default event bus with no subscribers or sink) must cost
  ≤0.5% over the bare metric battery;
* telemetry *fully enabled* (real tracer collecting every span, a fresh
  labeled registry, an event bus writing a JSON-lines sink) must cost
  ≤3% over bare, and ≤3% over the off path — the last ratio is the
  pipeline's own bill, clean of the supervised-runner wrapper both
  instrumented paths share.

Each guard carries a small absolute floor: once the dataset's
contingency caches are warm the battery is milliseconds, so per-run
fixed costs (runner setup, provenance) would otherwise swamp a pure
ratio.  The result envelope is written to ``BENCH_O2.json`` for the CI
artifact trail.
"""

import statistics
import time

from repro.core import FairnessAudit
from repro.core.audit import _BATTERY
from repro.core.config import AuditConfig
from repro.data import make_hiring
from repro.observability import (
    EventBus,
    MetricsRegistry,
    Tracer,
    use_event_bus,
    use_metrics,
    use_tracer,
)

from benchmarks.conftest import report, write_bench_json

ROUNDS = 5


def _config():
    return AuditConfig(tolerance=0.05, strata="university")


def _bare_battery(audit: FairnessAudit) -> float:
    """The same evaluations ``run()`` performs, without instrumentation."""
    start = time.perf_counter()
    findings = []
    for attribute in audit.protected_attributes:
        for metric in _BATTERY:
            findings.append(audit._evaluate(metric, attribute))
        audit._power_note(attribute)
    return time.perf_counter() - start


def _telemetry_off(audit: FairnessAudit) -> float:
    """``run()`` on the defaults: null tracer, shared bus, no sink."""
    start = time.perf_counter()
    audit.run()
    return time.perf_counter() - start


def _telemetry_on(data, sink_path) -> float:
    """``run()`` with every pipeline stage live: spans, registry, sink."""
    audit = FairnessAudit(data, config=_config())
    with use_tracer(Tracer(run_id="bench-o2")), \
            use_metrics(MetricsRegistry()), \
            use_event_bus(EventBus(sink=sink_path)) as bus:
        start = time.perf_counter()
        audit.run()
        elapsed = time.perf_counter() - start
        bus.close()
    return elapsed


def test_o2_telemetry_pipeline_overhead(benchmark, tmp_path):
    # large enough that the battery's evaluation work dominates and the
    # overhead ratios are measured, not floored away
    data = make_hiring(
        n=400_000, direct_bias=1.5, proxy_strength=0.8, random_state=0
    )

    def experiment():
        bare, off, on = [], [], []
        for index in range(ROUNDS):
            bare.append(_bare_battery(FairnessAudit(data, config=_config())))
            off.append(_telemetry_off(FairnessAudit(data, config=_config())))
            on.append(_telemetry_on(data, tmp_path / f"events-{index}.jsonl"))
        return (
            statistics.median(bare),
            statistics.median(off),
            statistics.median(on),
        )

    bare, off, on = benchmark.pedantic(experiment, rounds=1, iterations=1)
    off_overhead = off / bare - 1.0
    on_overhead = on / bare - 1.0
    pipeline_overhead = on / off - 1.0
    report("O2 telemetry pipeline overhead (n=400k hiring)", [
        ("path", "median seconds"),
        ("bare battery", round(bare, 4)),
        ("telemetry off", round(off, 4)),
        ("telemetry fully enabled", round(on, 4)),
        ("off vs bare", f"{off_overhead * 100:+.2f}%"),
        ("enabled vs bare", f"{on_overhead * 100:+.2f}%"),
        ("enabled vs off (pipeline cost)",
         f"{pipeline_overhead * 100:+.2f}%"),
    ])
    write_bench_json("O2", {
        "n_rows": data.n_rows,
        "rounds": ROUNDS,
        "bare_seconds": round(bare, 6),
        "telemetry_off_seconds": round(off, 6),
        "telemetry_on_seconds": round(on, 6),
        "off_overhead_pct": round(off_overhead * 100, 3),
        "on_overhead_pct": round(on_overhead * 100, 3),
        "pipeline_overhead_pct": round(pipeline_overhead * 100, 3),
    })

    # the PR's acceptance guards; absolute floors absorb per-run fixed
    # costs once the dataset caches make the battery ms-scale
    assert off - bare < max(0.005 * bare, 1.5e-3)
    assert on - bare < max(0.03 * bare, 5e-3)
    # the new pipeline itself: spans + labeled registry + event sink
    # must be within 3% (or timer jitter) of running with none of them
    assert on - off < max(0.03 * off, 1.5e-3)
