"""ST1 — streaming: ingest throughput and sharded-merge overhead.

The streaming engine's contract is that exactness costs nothing
operationally: chunked ingest must sustain a practical row rate, and a
sharded (ingest shards → merge → finalize) audit must land within 10%
of the single-pass streaming audit's wall time while producing the
byte-identical report.  This bench measures both and fails if either
regresses past the floor, emitting the rows into ``BENCH_ST1.json``
for the cross-PR trajectory.
"""

import time

import numpy as np

from repro.core.config import AuditConfig
from repro.data import make_hiring
from repro.streaming import (
    AuditAccumulator,
    accumulator_for,
    audit_stream,
    finalize,
)

from benchmarks.conftest import report, write_bench_json

N_ROWS = 200_000
CHUNK = 10_000
#: conservative floor — the bincount kernel sustains millions of rows/s,
#: but CI machines are noisy; regressing below this means something
#: structural broke (per-row Python loops, lost vectorisation).
MIN_ROWS_PER_SECOND = 50_000
#: sharded audit (merge of 8 shard states) must stay within 10% of the
#: single-pass streaming audit.
MAX_SHARD_OVERHEAD = 1.10


def _chunks(dataset, predictions, size):
    for lo in range(0, dataset.n_rows, size):
        idx = np.arange(lo, min(lo + size, dataset.n_rows))
        yield dataset.take(idx), predictions[lo: lo + size]


def test_st1_streaming(benchmark):
    data = make_hiring(
        n=N_ROWS, direct_bias=1.2, proxy_strength=0.5, random_state=0
    )
    rng = np.random.default_rng(1)
    predictions = (
        data.column("hired") ^ (rng.random(N_ROWS) < 0.1)
    ).astype(int)
    config = AuditConfig(tolerance=0.05)

    def experiment():
        # ingest throughput
        acc = accumulator_for(data)
        start = time.perf_counter()
        for chunk, preds in _chunks(data, predictions, CHUNK):
            acc.ingest_dataset(chunk, preds)
        ingest_s = time.perf_counter() - start

        # single-pass streaming audit (ingest + finalize)
        start = time.perf_counter()
        single = audit_stream(_chunks(data, predictions, CHUNK), config)
        single_s = time.perf_counter() - start

        # sharded: 8 shard accumulators, merged, then finalized
        start = time.perf_counter()
        shards = []
        bounds = np.linspace(0, N_ROWS, 9, dtype=int)
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            shard = accumulator_for(data)
            shard.ingest_dataset(
                data.take(np.arange(lo, hi)), predictions[lo:hi]
            )
            shards.append(shard)
        merged = AuditAccumulator.merge_all(shards)
        sharded_report = finalize(merged, config)
        sharded_s = time.perf_counter() - start
        return ingest_s, single_s, sharded_s, single, sharded_report

    ingest_s, single_s, sharded_s, single, sharded_report = (
        benchmark.pedantic(experiment, rounds=1, iterations=1)
    )
    rows_per_s = N_ROWS / ingest_s
    overhead = sharded_s / single_s

    report("ST1 streaming throughput", [
        ("rows", "chunk", "ingest_s", "rows/s", "single_s", "sharded_s",
         "overhead"),
        (N_ROWS, CHUNK, round(ingest_s, 4), round(rows_per_s),
         round(single_s, 4), round(sharded_s, 4), round(overhead, 3)),
    ])
    write_bench_json("ST1", {
        "n_rows": N_ROWS,
        "chunk_size": CHUNK,
        "ingest_seconds": round(ingest_s, 4),
        "rows_per_second": round(rows_per_s),
        "single_pass_seconds": round(single_s, 4),
        "sharded_seconds": round(sharded_s, 4),
        "shard_overhead": round(overhead, 4),
        "floors": {
            "min_rows_per_second": MIN_ROWS_PER_SECOND,
            "max_shard_overhead": MAX_SHARD_OVERHEAD,
        },
    })

    # the guarantee the docs advertise: identical verdicts either way
    from repro.core.serialize import report_to_dict

    lhs, rhs = report_to_dict(single), report_to_dict(sharded_report)
    lhs.pop("provenance"), rhs.pop("provenance")
    assert lhs == rhs, "sharded report diverged from single-pass stream"

    assert rows_per_s >= MIN_ROWS_PER_SECOND, (
        f"streaming ingest regressed: {rows_per_s:.0f} rows/s "
        f"< floor {MIN_ROWS_PER_SECOND}"
    )
    assert overhead <= MAX_SHARD_OVERHEAD, (
        f"sharded audit overhead {overhead:.2f}x exceeds "
        f"{MAX_SHARD_OVERHEAD}x of single-pass"
    )
