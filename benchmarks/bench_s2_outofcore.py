"""S2 — out-of-core: full audit battery over 100M rows in bounded memory.

The out-of-core data plane's promise is that dataset size stops being a
memory question.  This bench packs ``REPRO_S2_ROWS`` rows (default
100M; CI runs 1M) and audits them in child processes whose peak RSS is
measured from the outside:

* **scan child** — a checkpointed subgroup scan (interrupted, then
  resumed with ``jobs=2``) runs under a *constant* RSS ceiling: every
  scan path reads fixed-size chunks, so the bound is the same at 1M
  and 100M rows, and the resumed findings must equal the uninterrupted
  scan's exactly.
* **battery child** — the streaming battery's chunked ingest is
  constant-memory too; finalisation materialises the count
  reconstruction (one int/str cell value per dimension per row), so
  the battery child gets a *per-row byte budget* on top of the base
  ceiling — linear with a small audited constant, never an
  object-per-row blowup.

Throughput must clear ``MIN_ROWS_PER_SECOND``.  Results land in
``BENCH_S2.json`` for the cross-PR trajectory.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.data import Column, Schema
from repro.data.ooc import PackedWriter

from benchmarks.conftest import report, write_bench_json

N_ROWS = int(os.environ.get("REPRO_S2_ROWS", str(100_000_000)))
GEN_CHUNK = 1_000_000
#: conservative floor for the streaming battery's chunked ingest — the
#: bincount kernel sustains millions of rows/s; falling below this
#: means a per-row path crept into the chunk loop.
MIN_ROWS_PER_SECOND = 500_000
#: constant ceiling on the scan child's peak RSS.  Deliberately NOT a
#: function of the row count: every subgroup-scan path reads bounded
#: chunks, so the same number must hold at 1M rows (CI) and 100M rows.
SCAN_MAX_RSS_MB = 800
#: the battery child gets the same base plus a per-row byte budget for
#: finalisation: the count reconstruction (3 int64 dims here) plus the
#: audit's own code tables, intersection labels, and metric masks.
#: Measured ~230 B/row peak; 384 gives headroom while still catching an
#: object-per-row regression (Python-object columns alone cost more).
BATTERY_BASE_MB = 800
BATTERY_BYTES_PER_ROW = 384

_SCHEMA = Schema(
    (
        Column(name="gender", kind="categorical", role="protected",
               categories=(0, 1)),
        Column(name="race", kind="categorical", role="protected",
               categories=(0, 1, 2)),
        Column(name="promoted", kind="binary", role="label"),
        Column(name="pred", kind="binary", role="prediction"),
    )
)


def _pack(path: Path, n_rows: int) -> float:
    """Write the synthetic pack chunk-by-chunk; returns wall seconds."""
    rng = np.random.default_rng(29)
    start = time.perf_counter()
    with PackedWriter(path, _SCHEMA, chunk_rows=GEN_CHUNK) as writer:
        remaining = n_rows
        while remaining:
            size = min(GEN_CHUNK, remaining)
            gender = rng.integers(0, 2, size=size)
            race = rng.integers(0, 3, size=size)
            base = 0.35 + 0.08 * gender - 0.05 * (race == 2)
            promoted = (rng.random(size) < base).astype(np.int64)
            pred = (rng.random(size) < base + 0.04 * gender).astype(np.int64)
            writer.append({
                "gender": gender, "race": race,
                "promoted": promoted, "pred": pred,
            })
            remaining -= size
    return time.perf_counter() - start


_CHILD = """
import json, resource, sys, time
import numpy as np
from repro.data import open_dataset

mode, pack_path, work_dir = sys.argv[1], sys.argv[2], sys.argv[3]
data = open_dataset(pack_path)
out = {"n_rows": data.n_rows}

if mode == "battery":
    from repro.core.serialize import report_to_dict
    from repro.data.ooc import stream_chunks
    from repro.streaming import finalize, ingest_stream

    # chunked ingest is the part that scales with rows; finalize is the
    # fixed per-battery cost over the count reconstruction — timed
    # apart so the throughput floor measures the out-of-core read path.
    start = time.perf_counter()
    accumulator = ingest_stream(stream_chunks(data), None)
    out["ingest_seconds"] = time.perf_counter() - start
    start = time.perf_counter()
    battery = report_to_dict(finalize(accumulator, None))
    out["finalize_seconds"] = time.perf_counter() - start
    battery.pop("provenance", None)
    out["battery_metrics"] = len(battery.get("metrics", battery))
else:
    from repro.subgroup import audit_subgroups

    predictions = data.column("pred")

    def signatures(findings):
        return [
            (list(f.subgroup.conditions), f.subgroup.size, f.rate,
             f.complement_rate, f.gap, f.ci_low, f.ci_high, f.p_value)
            for f in findings
        ]

    scan_kwargs = dict(max_order=2, min_size=max(100, data.n_rows // 1000),
                       checkpoint_every=3)
    start = time.perf_counter()
    full = audit_subgroups(predictions, data, jobs=2,
                           checkpoint_path=work_dir + "/full.json",
                           **scan_kwargs)
    out["scan_seconds"] = time.perf_counter() - start
    out["n_findings"] = len(full)

    class Stop(Exception):
        pass

    def stop_after(evaluated, total):
        if evaluated >= 4:
            raise Stop

    start = time.perf_counter()
    try:
        audit_subgroups(predictions, data, on_progress=stop_after,
                        checkpoint_path=work_dir + "/resume.json",
                        **scan_kwargs)
        out["interrupted"] = False
    except Stop:
        out["interrupted"] = True
    resumed = audit_subgroups(predictions, data, jobs=2, resume=True,
                              checkpoint_path=work_dir + "/resume.json",
                              **scan_kwargs)
    out["resume_seconds"] = time.perf_counter() - start
    out["resume_identical"] = signatures(resumed) == signatures(full)

out["max_rss_kb"] = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
json.dump(out, sys.stdout)
"""


def _run_child(mode: str, pack_path: Path, work_dir: Path, env: dict) -> dict:
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, mode, str(pack_path), str(work_dir)],
        env=env, capture_output=True, text=True, timeout=7200,
    )
    assert proc.returncode == 0, f"{mode} child failed: {proc.stderr[-4000:]}"
    return json.loads(proc.stdout)


def test_s2_outofcore(benchmark, tmp_path):
    pack_path = tmp_path / "s2-pack"
    pack_s = _pack(pack_path, N_ROWS)
    pack_bytes = sum(f.stat().st_size for f in pack_path.iterdir())

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [src, env.get("PYTHONPATH", "")] if p
    )

    def experiment():
        return (
            _run_child("battery", pack_path, tmp_path, env),
            _run_child("scan", pack_path, tmp_path, env),
        )

    battery, scan = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows_per_s = N_ROWS / battery["ingest_seconds"]
    battery_rss_mb = battery["max_rss_kb"] / 1024
    scan_rss_mb = scan["max_rss_kb"] / 1024
    battery_budget_mb = (
        BATTERY_BASE_MB + N_ROWS * BATTERY_BYTES_PER_ROW / 2**20
    )

    report("S2 out-of-core audit", [
        ("rows", "pack_s", "pack_mb", "ingest_s", "rows/s", "finalize_s",
         "battery_rss_mb", "scan_s", "resume_s", "scan_rss_mb"),
        (N_ROWS, round(pack_s, 1), round(pack_bytes / 2**20),
         round(battery["ingest_seconds"], 2), round(rows_per_s),
         round(battery["finalize_seconds"], 2), round(battery_rss_mb),
         round(scan["scan_seconds"], 2), round(scan["resume_seconds"], 2),
         round(scan_rss_mb)),
    ])
    write_bench_json("S2", {
        "n_rows": N_ROWS,
        "pack_seconds": round(pack_s, 3),
        "pack_bytes": pack_bytes,
        "ingest_seconds": round(battery["ingest_seconds"], 3),
        "finalize_seconds": round(battery["finalize_seconds"], 3),
        "battery_rows_per_second": round(rows_per_s),
        "battery_rss_mb": round(battery_rss_mb, 1),
        "scan_seconds": round(scan["scan_seconds"], 3),
        "resume_seconds": round(scan["resume_seconds"], 3),
        "scan_rss_mb": round(scan_rss_mb, 1),
        "n_findings": scan["n_findings"],
        "floors": {
            "min_rows_per_second": MIN_ROWS_PER_SECOND,
            "scan_max_rss_mb": SCAN_MAX_RSS_MB,
            "battery_base_mb": BATTERY_BASE_MB,
            "battery_bytes_per_row": BATTERY_BYTES_PER_ROW,
            "battery_budget_mb": round(battery_budget_mb, 1),
        },
    })

    assert scan["interrupted"], "interrupt hook never fired"
    assert scan["resume_identical"], (
        "resumed scan diverged from the uninterrupted scan"
    )
    assert rows_per_s >= MIN_ROWS_PER_SECOND, (
        f"streaming battery regressed: {rows_per_s:.0f} rows/s "
        f"< floor {MIN_ROWS_PER_SECOND}"
    )
    assert scan_rss_mb <= SCAN_MAX_RSS_MB, (
        f"scan child peaked at {scan_rss_mb:.0f} MB RSS "
        f"> constant ceiling {SCAN_MAX_RSS_MB} MB — scan memory is "
        f"scaling with rows"
    )
    assert battery_rss_mb <= battery_budget_mb, (
        f"battery child peaked at {battery_rss_mb:.0f} MB RSS "
        f"> budget {battery_budget_mb:.0f} MB "
        f"({BATTERY_BASE_MB} MB + {BATTERY_BYTES_PER_ROW} B/row) — "
        f"finalisation is spending more than its per-row byte budget"
    )
