"""C5 — paper §IV.E: adversarial concealment fools explainers, not outcomes.

Claim reproduced (Dimanov et al., cited by the paper): retraining with a
suppression penalty keeps accuracy within a point and drives the
explainer-reported sensitive-attribute importance to ≈ 0, yet the
demographic-parity gap of the outputs persists — so an outcome-based
audit still detects the bias while the explanation-based audit is evaded.
"""

from repro.data import make_hiring
from repro.data.schema import ColumnRole
from repro.manipulation import (
    ConcealmentAttack,
    coefficient_importance,
    manipulation_report,
    normalize_importances,
    permutation_importance,
)
from repro.models import LogisticRegression, Standardizer, accuracy

from benchmarks.conftest import report


def test_c5_concealment(benchmark):
    def experiment():
        data = make_hiring(
            n=3000, direct_bias=2.5, proxy_strength=0.95, random_state=5
        )
        aware = data.with_role("sex", ColumnRole.FEATURE)
        X = Standardizer().fit_transform(aware.feature_matrix())
        y = aware.labels()
        names = aware.feature_matrix_names()
        sensitive = [i for i, n in enumerate(names) if n.startswith("sex=")]

        original = LogisticRegression(max_iter=1000).fit(X, y)
        concealed = ConcealmentAttack(suppression=50.0).run(
            original, X, sensitive
        )

        def describe(model):
            coef_share = float(
                normalize_importances(coefficient_importance(model))[
                    sensitive
                ].sum()
            )
            perm = normalize_importances(
                permutation_importance(model, X, y, random_state=0)
            )
            perm_share = float(perm[sensitive].sum())
            audit = manipulation_report(
                model, X, data.column("sex"), sensitive
            )
            return (
                round(accuracy(y, model.predict(X)), 3),
                round(coef_share, 3),
                round(perm_share, 3),
                round(audit.outcome_gap, 3),
                audit.verdicts_diverge,
            )

        return {
            "original": describe(original),
            "concealed": describe(concealed.model),
            "fidelity": concealed.fidelity,
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [("model", "accuracy", "coef share", "perm share",
             "outcome gap", "diverge")]
    for name in ("original", "concealed"):
        rows.append((name,) + results[name])
    rows.append(("prediction fidelity", round(results["fidelity"], 3)))
    report("C5 concealment attack vs audits", rows)

    orig = results["original"]
    hidden = results["concealed"]
    # accuracy within a point (the attack's selling point)
    assert abs(hidden[0] - orig[0]) < 0.02
    # explainer-visible importance collapses
    assert hidden[1] < 0.02 < orig[1]
    assert hidden[2] < orig[2]
    # outcome disparity persists — the outcome audit still catches it
    assert hidden[3] > 0.5 * orig[3]
    assert hidden[4] is True  # the divergence red flag fires
    assert results["fidelity"] > 0.95
