"""SV1 — audit-service economics: throughput, cache hits, supervision tax.

The service layer only earns its keep if (a) running an audit as a
supervised background job costs nearly nothing over running the same
``repro.audit()`` on a caller-owned background thread, (b) resubmitting
an identical audit is answered from the content-addressed store rather
than recomputed, and (c) the engine sustains a usable jobs-per-second
rate through the journal + store machinery.  This bench measures all
three and asserts the floors the ISSUE sets: supervision overhead on a
no-fault job <= 5% of the direct audit, a cache-hit latency ceiling,
and a jobs-throughput floor.

Measurement notes, earned the hard way on 1-CPU CI boxes:

* The direct baseline runs ``repro.audit()`` on a plain caller-owned
  thread, because that is what the engine replaces — a background job.
  Secondary threads pay a scheduler tax (~20-30% here) that has nothing
  to do with the service; putting both paths on a thread cancels it and
  leaves the journal/store/queue machinery as the only difference.
* Each path gets its own fresh dataset *object* per round: repeat
  audits of the same object hit the dataset-keyed mask cache and finish
  in ~2ms, which would measure supervision against a cached fast path
  instead of against real audit work.  The two objects share a seed, so
  both paths audit byte-identical data and do identical statistical
  work.
* The overhead verdict is the minimum of per-round paired deltas
  (supervised_i - direct_i, measured back-to-back in alternating
  order).  Scheduler noise on a shared 1-CPU box only ever *adds*
  time to a sample, so the smallest paired delta is the cleanest
  estimate of the true supervision tax; a real regression (an extra
  fsync on the job path, O(n) serialization) shifts every delta up
  and still trips the guard.
"""

from __future__ import annotations

import statistics
import threading
import time

from repro import AuditConfig, audit, make_hiring
from repro.observability.metrics import MetricsRegistry
from repro.service import JobEngine

from benchmarks.conftest import report, write_bench_json

ROUNDS = 7
#: floors/ceilings asserted below (generous: CI machines are noisy)
THROUGHPUT_FLOOR_JOBS_PER_S = 5.0
CACHE_HIT_CEILING_S = 0.050


def _direct_seconds(dataset, config) -> float:
    """The baseline: repro.audit() on a caller-owned background thread."""
    start = time.perf_counter()
    worker = threading.Thread(
        target=audit, args=(dataset,), kwargs={"config": config}
    )
    worker.start()
    worker.join()
    return time.perf_counter() - start


def _supervised_seconds(engine, dataset, config) -> float:
    """One no-fault job end to end (submit -> journal -> run -> store)."""
    start = time.perf_counter()
    job = engine.submit("audit", dataset=dataset, config=config)
    engine.wait(job.job_id, timeout=120)
    return time.perf_counter() - start


def _fresh(seed: int):
    return make_hiring(
        n=600_000, direct_bias=1.5, proxy_strength=0.8, random_state=seed
    )


def test_sv1_service_overhead_and_cache(benchmark, tmp_path):
    def experiment():
        direct, supervised, hits = [], [], []
        throughput = 0.0
        # burn the process-start CPU boost so every measured round runs
        # in the same steady state
        for seed in (900, 901):
            audit(_fresh(seed), config=AuditConfig(strata="university"))
        for round_index in range(ROUNDS):
            # a representative audit (stratified battery, as in R2)
            config = AuditConfig(
                tolerance=0.05 + 0.001 * round_index, strata="university"
            )
            engine = JobEngine(
                tmp_path / f"sv1-{round_index}",
                workers=1,
                metrics=MetricsRegistry(),
                journal_fsync=False,
            )
            baseline_dataset = _fresh(round_index)
            job_dataset = _fresh(round_index)
            # alternate which path is measured first: CPU speed on small
            # shared machines drifts between samples, and a fixed order
            # would hand one path all the fast samples
            if round_index % 2 == 0:
                direct.append(_direct_seconds(baseline_dataset, config))
                supervised.append(
                    _supervised_seconds(engine, job_dataset, config)
                )
            else:
                supervised.append(
                    _supervised_seconds(engine, job_dataset, config)
                )
                direct.append(_direct_seconds(baseline_dataset, config))
            start = time.perf_counter()
            hit = engine.submit("audit", dataset=job_dataset, config=config)
            hits.append(time.perf_counter() - start)
            assert hit.cache_hit, "resubmission must not recompute"
            engine.shutdown()

        # throughput: many tiny distinct jobs through one engine,
        # fsync on — the durable path is the one that must keep up
        small = [make_hiring(400, random_state=seed) for seed in range(24)]
        engine = JobEngine(
            tmp_path / "sv1-throughput",
            workers=4,
            queue_limit=64,
            metrics=MetricsRegistry(),
            journal_fsync=True,
        )
        start = time.perf_counter()
        jobs = [engine.submit("audit", dataset=piece) for piece in small]
        for job in jobs:
            assert engine.wait(job.job_id, timeout=300).status == "succeeded"
        throughput = len(jobs) / (time.perf_counter() - start)
        engine.shutdown()
        deltas = [s - d for s, d in zip(supervised, direct)]
        return (
            statistics.median(direct),
            statistics.median(supervised),
            min(deltas),
            statistics.median(hits),
            throughput,
        )

    direct, supervised, delta, hit, throughput = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    overhead = delta / direct
    report("SV1 audit service (n=600k hiring, fresh per round; 24-job burst)", [
        ("path", "median seconds"),
        ("direct repro.audit() on a thread", round(direct, 4)),
        ("supervised job (no fault)", round(supervised, 4)),
        ("min paired delta (supervision tax)", round(delta, 4)),
        ("cache hit (resubmission)", round(hit, 6)),
        ("supervision overhead", f"{overhead * 100:+.2f}%"),
        ("throughput (jobs/s, fsync on)", round(throughput, 2)),
    ])

    write_bench_json("sv1", {
        "direct_s": direct,
        "supervised_s": supervised,
        "min_paired_delta_s": delta,
        "cache_hit_s": hit,
        "overhead_ratio": overhead,
        "throughput_jobs_per_s": throughput,
        "floors": {
            "throughput_jobs_per_s": THROUGHPUT_FLOOR_JOBS_PER_S,
            "cache_hit_ceiling_s": CACHE_HIT_CEILING_S,
            "overhead_budget": 0.05,
        },
    })

    # the ISSUE's acceptance: supervision on the no-fault path is <=5%
    # (absolute floor keeps sub-millisecond jitter from flaking the ratio)
    assert delta < max(0.05 * direct, 2e-3)
    # identical resubmissions must be answered from the store, fast
    assert hit < CACHE_HIT_CEILING_S
    # and the journaled engine must sustain a usable job rate
    assert throughput > THROUGHPUT_FLOOR_JOBS_PER_S
