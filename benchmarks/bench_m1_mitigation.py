"""M1 — mitigation ladder: pre / in / post placement compared.

Regenerates the library's headline mitigation comparison on the biased
hiring workload: demographic-parity gap, equal-opportunity gap (against
true qualification), and accuracy for

  baseline → reweighing (pre) → massaging (pre) → fairness penalty (in)
  → group thresholds (post) → quota (post).

Expected shape: every mitigation shrinks the DP gap versus baseline;
post-processing reaches the smallest gap; accuracy cost stays bounded.
"""

import numpy as np

from repro.core import demographic_parity, equal_opportunity
from repro.data import make_hiring
from repro.mitigation import (
    FairLogisticRegression,
    GroupThresholds,
    massaging,
    quota_selector,
    reweighing,
)
from repro.models import LogisticRegression, Standardizer, accuracy

from benchmarks.conftest import report


def test_m1_mitigation_ladder(benchmark):
    def experiment():
        data = make_hiring(
            n=5000, direct_bias=2.0, proxy_strength=0.9, random_state=17
        )
        train, test = data.split(test_fraction=0.3, random_state=17,
                                 stratify_by="sex")
        scaler = Standardizer()
        X_train = scaler.fit_transform(train.feature_matrix())
        X_test = scaler.transform(test.feature_matrix())
        sex_train = train.column("sex")
        sex_test = test.column("sex")
        labels_test = test.labels()
        qualified = (
            test.column("qualification")
            > float(np.median(train.column("qualification")))
        ).astype(int)

        ladder = {}

        baseline = LogisticRegression(max_iter=800).fit(
            X_train, train.labels()
        )
        ladder["baseline"] = baseline.predict(X_test)

        weights = reweighing(train, "sex")
        pre = LogisticRegression(max_iter=800).fit(
            X_train, train.labels(), sample_weight=weights
        )
        ladder["reweighing (pre)"] = pre.predict(X_test)

        massaged = massaging(train, "sex")
        pre2 = LogisticRegression(max_iter=800).fit(
            X_train, massaged.labels()
        )
        ladder["massaging (pre)"] = pre2.predict(X_test)

        fair = FairLogisticRegression(fairness_weight=30.0, max_iter=800)
        fair.fit(X_train, train.labels(), groups=sex_train)
        ladder["penalty (in)"] = fair.predict(X_test)

        post = GroupThresholds("demographic_parity").fit(
            baseline.predict_proba(X_train), sex_train
        )
        ladder["thresholds (post)"] = post.predict(
            baseline.predict_proba(X_test), sex_test
        )

        scores = baseline.predict_proba(X_test)
        ladder["quota (post)"] = quota_selector(
            scores, sex_test, n_select=int(ladder["baseline"].sum())
        )

        rows = []
        for name, decisions in ladder.items():
            rows.append((
                name,
                round(demographic_parity(decisions, sex_test).gap, 3),
                round(
                    equal_opportunity(qualified, decisions, sex_test).gap, 3
                ),
                round(accuracy(labels_test, decisions), 3),
            ))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report("M1 mitigation ladder", [
        ("method", "DP gap", "EO gap (true merit)", "accuracy")
    ] + rows)

    by_name = {row[0]: row for row in rows}
    base_gap = by_name["baseline"][1]
    base_acc = by_name["baseline"][3]
    assert base_gap > 0.08
    for name in ("reweighing (pre)", "massaging (pre)", "penalty (in)",
                 "thresholds (post)", "quota (post)"):
        assert by_name[name][1] < base_gap, name
        assert by_name[name][3] > base_acc - 0.2, name
    # post-processing threshold search reaches near-exact parity
    assert by_name["thresholds (post)"][1] < 0.05
