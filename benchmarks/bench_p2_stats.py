"""P2 — stats: batched inference vs the scalar reference loop.

Three comparisons, each against the pre-batch scalar code kept verbatim
in :mod:`repro.stats._reference`:

* significance scoring (z-test + Wilson interval) for 4,000 subgroup
  count pairs — one :func:`batch_score_counts` call vs a Python loop
  (regression guard: batched ≥ 10× faster, payloads bit-identical);
* :func:`batch_bootstrap_ci` at ``n_resamples=2000`` vs the per-resample
  loop (guard: ≥ 5× faster, bit-identical under the same seed);
* :func:`batch_permutation_test` at ``n_permutations=2000`` vs the
  shuffle loop (guard: ≥ 5× faster; observed statistic identical,
  p-values within resampling noise — the argsort permutation matrix
  cannot reuse the in-place shuffle's random stream).

The equivalence assertions run unconditionally, before any timing
guard: a fast wrong answer must fail the bench.  Results land in
``BENCH_P2.json`` (uploaded by the CI benchmark job).
"""

import time

import numpy as np

from repro.stats import (
    batch_bootstrap_ci,
    batch_permutation_test,
    batch_score_counts,
)
from repro.stats import _reference

from benchmarks.conftest import report, write_bench_json

N_SUBGROUPS = 4_000
N_RESAMPLES = 2_000
BOOTSTRAP_N = 100
PERMUTATION_N = 30
REPEATS = 3


def _best(fn) -> tuple:
    """Best-of-REPEATS wall time plus the (deterministic) result."""
    best, result = float("inf"), None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _subgroup_counts():
    rng = np.random.default_rng(17)
    n_inside = rng.integers(20, 2_000, N_SUBGROUPS)
    positives_inside = (rng.random(N_SUBGROUPS) * (n_inside + 1)).astype(
        np.int64
    )
    return positives_inside, n_inside, 70_000, 200_000


def _scalar_scoring_loop(positives_inside, n_inside, positives_total, n_total):
    payloads = []
    for i in range(len(n_inside)):
        pos_in, n_in = int(positives_inside[i]), int(n_inside[i])
        n_out = n_total - n_in
        pos_out = positives_total - pos_in
        _, p_value = _reference.two_proportion_z_test(
            pos_in, n_in, pos_out, n_out
        )
        ci_low, ci_high = _reference.wilson_interval(pos_in, n_in)
        rate, complement = pos_in / n_in, pos_out / n_out
        payloads.append({
            "rate": rate,
            "complement_rate": complement,
            "gap": rate - complement,
            "ci_low": float(ci_low),
            "ci_high": float(ci_high),
            "p_value": p_value,
        })
    return payloads


def test_p2_batched_scoring_speedup(benchmark):
    counts = _subgroup_counts()

    def experiment():
        scalar_s, scalar = _best(lambda: _scalar_scoring_loop(*counts))
        batch_s, batched = _best(lambda: batch_score_counts(*counts))
        return scalar_s, scalar, batch_s, batched

    scalar_s, scalar, batch_s, batched = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    # Equivalence first, unconditionally: the batched payloads must be
    # bit-identical to the scalar loop before speed means anything.
    assert len(batched) == len(scalar) == N_SUBGROUPS
    for got, want in zip(batched, scalar):
        assert got == want

    speedup = scalar_s / max(batch_s, 1e-9)
    report(f"P2 significance scoring, {N_SUBGROUPS} subgroups", [
        ("path", "seconds"),
        ("scalar reference loop", round(scalar_s, 4)),
        ("batch_score_counts", round(batch_s, 4)),
        ("speedup", round(speedup, 2)),
    ])
    scoring_payload = {
        "n_subgroups": N_SUBGROUPS,
        "scalar_seconds": scalar_s,
        "batch_seconds": batch_s,
        "speedup": speedup,
    }
    # Regression guard (ISSUE 5 acceptance): batched z + Wilson scoring
    # must stay ≥ 10× faster than the scalar loop at this scale.
    _merge_results({"scoring": scoring_payload})
    assert speedup >= 10.0, (
        f"batched scoring only {speedup:.2f}x faster than scalar loop"
    )


def test_p2_batch_bootstrap_speedup(benchmark):
    values = np.random.default_rng(23).normal(size=BOOTSTRAP_N)

    def experiment():
        scalar_s, scalar = _best(lambda: _reference.bootstrap_ci(
            values, n_resamples=N_RESAMPLES, random_state=11
        ))
        batch_s, batched = _best(lambda: batch_bootstrap_ci(
            values, n_resamples=N_RESAMPLES, random_state=11
        ))
        return scalar_s, scalar, batch_s, batched

    scalar_s, scalar, batch_s, batched = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    # Same seed, aligned random stream: exact equality, always checked.
    assert batched == scalar

    speedup = scalar_s / max(batch_s, 1e-9)
    report(f"P2 bootstrap CI, {N_RESAMPLES} resamples of n={BOOTSTRAP_N}", [
        ("path", "seconds"),
        ("per-resample loop", round(scalar_s, 4)),
        ("batch_bootstrap_ci", round(batch_s, 4)),
        ("speedup", round(speedup, 2)),
    ])
    _merge_results({"bootstrap": {
        "n_values": BOOTSTRAP_N,
        "n_resamples": N_RESAMPLES,
        "scalar_seconds": scalar_s,
        "batch_seconds": batch_s,
        "speedup": speedup,
    }})
    assert speedup >= 5.0, (
        f"batch bootstrap only {speedup:.2f}x faster than resample loop"
    )


def test_p2_batch_permutation_speedup(benchmark):
    rng = np.random.default_rng(29)
    x = (rng.random(PERMUTATION_N) < 0.6).astype(float)
    y = (rng.random(PERMUTATION_N) < 0.4).astype(float)

    def experiment():
        scalar_s, scalar = _best(lambda: _reference.permutation_test(
            x, y, n_permutations=N_RESAMPLES, random_state=7
        ))
        batch_s, batched = _best(lambda: batch_permutation_test(
            x, y, n_permutations=N_RESAMPLES, random_state=7
        ))
        return scalar_s, scalar, batch_s, batched

    scalar_s, scalar, batch_s, batched = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    # Observed statistic exact; p-values statistically equivalent (the
    # permutation matrices come from different stream orderings).
    assert abs(batched[0] - scalar[0]) <= 1e-12
    assert abs(batched[1] - scalar[1]) < 0.05

    speedup = scalar_s / max(batch_s, 1e-9)
    report(
        f"P2 permutation test, {N_RESAMPLES} permutations of "
        f"n={2 * PERMUTATION_N}",
        [
            ("path", "seconds"),
            ("shuffle loop", round(scalar_s, 4)),
            ("batch_permutation_test", round(batch_s, 4)),
            ("speedup", round(speedup, 2)),
        ],
    )
    _merge_results({"permutation": {
        "n_pooled": 2 * PERMUTATION_N,
        "n_permutations": N_RESAMPLES,
        "scalar_seconds": scalar_s,
        "batch_seconds": batch_s,
        "speedup": speedup,
    }})
    assert speedup >= 5.0, (
        f"batch permutation only {speedup:.2f}x faster than shuffle loop"
    )


_RESULTS: dict = {}


def _merge_results(update: dict) -> None:
    """Accumulate sections into one BENCH_P2.json across the three tests."""
    _RESULTS.update(update)
    write_bench_json("P2", dict(_RESULTS))
