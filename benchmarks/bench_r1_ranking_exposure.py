"""R1 — ranking exposure: merit ranking vs prefix-fair re-ranking.

The ranking counterpart of the paper's selection-rate analysis: scores
from a model trained on biased labels produce a merit ranking that
under-exposes the disadvantaged group (headcount equality does not give
exposure equality because positions are discounted); the fair re-ranker
restores exposure parity at a bounded top-k score cost.
"""

import numpy as np

from repro.data import make_hiring
from repro.models import LogisticRegression, Standardizer
from repro.ranking import exposure_parity, fair_rerank, group_exposure

from benchmarks.conftest import report


def test_r1_exposure_vs_rerank(benchmark):
    def experiment():
        data = make_hiring(
            n=500, direct_bias=2.0, proxy_strength=0.9, random_state=19
        )
        scaler = Standardizer()
        model = LogisticRegression(max_iter=800)
        model.fit(scaler.fit_transform(data.feature_matrix()), data.labels())
        scores = model.predict_proba(
            scaler.transform(data.feature_matrix())
        )
        groups = data.column("sex")

        merit_order = np.argsort(-scores)
        fair_order = fair_rerank(scores, groups)

        def describe(order):
            ranked = groups[order]
            parity = exposure_parity(ranked, tolerance=0.03)
            top20 = scores[order][:20].mean()
            return (
                round(group_exposure(ranked)["female"], 3),
                parity.satisfied,
                round(parity.gap, 3),
                round(float(top20), 3),
            )

        return {"merit": describe(merit_order), "fair": describe(fair_order)}

    results = benchmark.pedantic(experiment, rounds=2, iterations=1)
    rows = [("ranking", "female exposure share", "parity ok",
             "worst shortfall", "mean top-20 score")]
    for name in ("merit", "fair"):
        rows.append((name,) + results[name])
    report("R1 ranking exposure", rows)

    merit, fair = results["merit"], results["fair"]
    assert merit[1] is False           # merit ranking violates exposure parity
    assert fair[1] is True             # re-ranking restores it
    assert fair[0] > merit[0]          # female exposure rises
    assert merit[3] - fair[3] < 0.1    # bounded top-20 score cost
