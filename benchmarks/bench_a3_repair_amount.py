"""A3 — ablation: disparate-impact remover amount (the Feldman dial).

Sweeps the feature-repair level λ ∈ {0, 0.25, 0.5, 0.75, 1} on the
biased hiring workload and traces the fairness/utility curve: the
model's demographic-parity gap should fall monotonically-ish with λ
while accuracy degrades gracefully — the canonical repair trade-off
curve.
"""

import numpy as np

from repro.core import demographic_parity
from repro.data import make_hiring
from repro.mitigation import DisparateImpactRemover
from repro.models import LogisticRegression, Standardizer, accuracy

from benchmarks.conftest import report

AMOUNTS = (0.0, 0.25, 0.5, 0.75, 1.0)


def test_a3_repair_amount_sweep(benchmark):
    def experiment():
        # bias carried by sex-shifted numeric features (numeric proxies)
        data = make_hiring(
            n=4000, direct_bias=2.0, proxy_strength=0.0, random_state=29
        )
        sex = data.column("sex")
        data = data.with_column(
            data.schema["experience"],
            data.column("experience") + 2.5 * (sex == "male"),
        )
        data = data.with_column(
            data.schema["skill_score"],
            np.clip(data.column("skill_score")
                    + 8.0 * (sex == "male"), 0, 100),
        )
        train, test = data.split(test_fraction=0.3, random_state=29,
                                 stratify_by="sex")

        rows = []
        for amount in AMOUNTS:
            if amount == 0.0:
                train_rep, test_rep = train, test
            else:
                remover = DisparateImpactRemover(amount=amount).fit(
                    train, "sex"
                )
                train_rep = remover.transform(train)
                test_rep = remover.transform(test)
            scaler = Standardizer()
            model = LogisticRegression(max_iter=600).fit(
                scaler.fit_transform(train_rep.feature_matrix()),
                train_rep.labels(),
            )
            preds = model.predict(
                scaler.transform(test_rep.feature_matrix())
            )
            rows.append((
                amount,
                round(demographic_parity(preds, test.column("sex")).gap, 3),
                round(accuracy(test.labels(), preds), 3),
            ))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report("A3 disparate-impact remover: amount sweep", [
        ("amount", "DP gap", "accuracy")
    ] + rows)

    gaps = {amount: gap for amount, gap, __ in rows}
    accs = {amount: acc for amount, __, acc in rows}
    assert gaps[0.0] > 0.1                  # unrepaired model is biased
    assert gaps[1.0] < gaps[0.0] * 0.5      # full repair halves the gap
    assert gaps[1.0] <= min(gaps[0.25], gaps[0.5]) + 0.02
    assert accs[1.0] > accs[0.0] - 0.15     # bounded utility cost
