"""S1 — scalability: audit-battery runtime vs dataset size.

Section IV.F ends on runtime complexity; this bench measures the wall
time of the full audit battery (all Section III metrics + four-fifths +
significance tests) at growing dataset sizes and asserts near-linear
scaling — the audit itself must not become the bottleneck it warns
about.

Since the kernel layer (ISSUE 3) the battery reads every group count
from one shared contingency tensor; the bench therefore reports both
backends (the reference path only up to 80k rows — it is the "before"
row) and emits the rows into ``BENCH_S1.json`` for the cross-PR
trajectory.
"""

import time

from repro.core import FairnessAudit
from repro.data import make_hiring
from repro.kernel import use_backend

from benchmarks.conftest import report, write_bench_json

SIZES = (5_000, 20_000, 80_000, 320_000)
REFERENCE_SIZES = (5_000, 20_000, 80_000)


def _run_audit(n: int, backend: str) -> float:
    data = make_hiring(
        n=n, direct_bias=1.5, proxy_strength=0.8, random_state=0
    )
    with use_backend(backend):
        start = time.perf_counter()
        FairnessAudit(data, tolerance=0.05, strata="university").run()
        return time.perf_counter() - start


def test_s1_audit_scaling(benchmark):
    def experiment():
        kernel = {n: _run_audit(n, "kernel") for n in SIZES}
        reference = {n: _run_audit(n, "reference") for n in REFERENCE_SIZES}
        return kernel, reference

    kernel, reference = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [("n", "kernel_s", "reference_s")] + [
        (n, round(kernel[n], 4),
         round(reference[n], 4) if n in reference else "—")
        for n in SIZES
    ]
    report("S1 audit-battery runtime vs n", rows)
    write_bench_json("S1", {
        "sizes": list(SIZES),
        "kernel_seconds": {str(n): kernel[n] for n in SIZES},
        "reference_seconds": {str(n): reference[n] for n in REFERENCE_SIZES},
        "speedup_80k": reference[80_000] / max(kernel[80_000], 1e-9),
    })

    # 16x data should cost far less than 64x time (i.e. subquadratic);
    # generous bound to stay robust on loaded CI machines
    assert kernel[80_000] < 40 * max(kernel[5_000], 1e-3)
    # The shared-counts path pushed the constant down enough that the new
    # 4x-larger point must stay within ~8x of the 80k time (linear with
    # CI headroom) — and even 320k rows must complete in seconds.
    assert kernel[320_000] < 8 * max(kernel[80_000], 5e-3)
    assert kernel[320_000] < 10.0
