"""S1 — scalability: audit-battery runtime vs dataset size.

Section IV.F ends on runtime complexity; this bench measures the wall
time of the full audit battery (all Section III metrics + four-fifths +
significance tests) at growing dataset sizes and asserts near-linear
scaling — the audit itself must not become the bottleneck it warns
about.
"""

import time

from repro.core import FairnessAudit
from repro.data import make_hiring

from benchmarks.conftest import report

SIZES = (5_000, 20_000, 80_000)


def _run_audit(n: int) -> float:
    data = make_hiring(
        n=n, direct_bias=1.5, proxy_strength=0.8, random_state=0
    )
    start = time.perf_counter()
    FairnessAudit(data, tolerance=0.05, strata="university").run()
    return time.perf_counter() - start


def test_s1_audit_scaling(benchmark):
    def experiment():
        return [(n, _run_audit(n)) for n in SIZES]

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report("S1 audit-battery runtime vs n", [
        ("n", "seconds")
    ] + [(n, round(t, 4)) for n, t in rows])

    times = dict(rows)
    # 16x data should cost far less than 64x time (i.e. subquadratic);
    # generous bound to stay robust on loaded CI machines
    assert times[80_000] < 40 * max(times[5_000], 1e-3)
    # and the largest size still completes fast in absolute terms
    assert times[80_000] < 10.0
