"""E6 — paper §III.F worked example: conditional demographic disparity.

Paper's row: 100 females over 5 jobs, 40 hired / 60 rejected overall —
unfair by the unconditional III.E definition; but all are accepted in
jobs 1–4 and all rejected in job 5, so CDD is fair on jobs 1–4 and unfair
only on job 5.
"""

import numpy as np

from repro.core import (
    conditional_demographic_disparity,
    demographic_disparity,
)

from benchmarks.conftest import report


def _scenario(blocks):
    predictions = np.concatenate(
        [blocks((1, 10)) for __ in range(4)] + [blocks((0, 60))]
    )
    groups = blocks(("female", 100))
    strata = np.concatenate(
        [blocks((f"job{j}", 10)) for j in range(1, 5)]
        + [blocks(("job5", 60))]
    )
    return predictions, groups, strata


def test_e6_paper_scenario(benchmark, blocks):
    def evaluate():
        predictions, groups, strata = _scenario(blocks)
        unconditional = demographic_disparity(predictions, groups)
        conditional = conditional_demographic_disparity(
            predictions, groups, strata
        )
        rows = [("overall", round(unconditional.rate_of("female"), 2),
                 unconditional.satisfied)]
        for job in sorted(conditional.strata):
            sub = conditional.strata[job]
            rows.append((job, round(sub.rate_of("female"), 2), sub.satisfied))
        return rows, unconditional, conditional

    (rows, unconditional, conditional) = benchmark(evaluate)
    report("E6 conditional demographic disparity", [
        ("slice", "female hire rate", "fair")
    ] + rows)

    assert not unconditional.satisfied          # 40/100 overall: unfair
    for job in ("job1", "job2", "job3", "job4"):
        assert conditional.strata[job].satisfied
    assert conditional.violating_strata() == ["job5"]
