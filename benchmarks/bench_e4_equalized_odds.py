"""E4 — paper §III.D worked example: equalized odds.

Paper's row: 6 female / 12 male applicants; 6 qualified males and 3
qualified females; 9 hires, 9 rejections.  With perfect male
classification, fairness requires hiring all 3 qualified females and
rejecting all 3 unqualified ones; any deviation breaks TPR or FPR parity.
"""

import numpy as np

from repro.core import equalized_odds

from benchmarks.conftest import report


def _scenario(blocks, pattern):
    y_true = np.concatenate([
        blocks((1, 6), (0, 6)),
        blocks((1, 3), (0, 3)),
    ])
    male_preds = blocks((1, 6), (0, 6))
    female_preds = {
        "paper (perfect)": blocks((1, 3), (0, 3)),
        "miss 1 qualified": blocks((1, 2), (0, 1), (0, 3)),
        "hire 1 unqualified": blocks((1, 3), (1, 1), (0, 2)),
    }[pattern]
    predictions = np.concatenate([male_preds, female_preds])
    groups = blocks(("male", 12), ("female", 6))
    return y_true, predictions, groups


def test_e4_patterns(benchmark, blocks):
    patterns = ["paper (perfect)", "miss 1 qualified", "hire 1 unqualified"]

    def evaluate():
        rows = []
        for pattern in patterns:
            y_true, predictions, groups = _scenario(blocks, pattern)
            result = equalized_odds(y_true, predictions, groups)
            rows.append((
                pattern,
                round(result.details["tpr_gap"], 3),
                round(result.details["fpr_gap"], 3),
                result.satisfied,
                int(predictions.sum()),
            ))
        return rows

    rows = benchmark(evaluate)
    report("E4 equalized odds", [
        ("female pattern", "tpr_gap", "fpr_gap", "fair", "total_hired")
    ] + rows)

    by_pattern = {row[0]: row for row in rows}
    perfect = by_pattern["paper (perfect)"]
    assert perfect[3] is True
    assert perfect[4] == 9  # the paper's 9 hires / 9 rejections
    assert by_pattern["miss 1 qualified"][3] is False
    assert by_pattern["miss 1 qualified"][1] > 0.3
    assert by_pattern["hire 1 unqualified"][3] is False
    assert by_pattern["hire 1 unqualified"][2] > 0.3
