"""E7 — paper §III.G worked example: counterfactual fairness.

Paper's row: change the individual's gender *adjusting other features to
this change* and re-predict; the model is fair iff the outcome is
unchanged.  The bench audits a feature-based predictor (unfair under a
sex→features SCM) and a deconfounded predictor (fair), sweeping the
causal effect size.
"""

from repro.causal import biased_hiring_scm
from repro.core import counterfactual_fairness

from benchmarks.conftest import report

EFFECTS = [0.0, -1.0, -2.0, -4.0]


def test_e7_effect_sweep(benchmark):
    def sweep():
        rows = []
        for effect in EFFECTS:
            scm = biased_hiring_scm(
                sex_effect_experience=effect, sex_effect_skill=4 * effect
            )
            observed = scm.sample(2000, random_state=0)

            def feature_predictor(values):
                return (
                    values["experience"] + 0.1 * values["skill_score"] > 11.5
                ).astype(int)

            def merit_predictor(values, __effect=effect):
                merit = values["experience"] - __effect * values["sex"]
                return (merit > 5.0).astype(int)

            unfair = counterfactual_fairness(
                scm, observed, "sex", 1.0 - observed["sex"], feature_predictor
            )
            fair = counterfactual_fairness(
                scm, observed, "sex", 1.0 - observed["sex"], merit_predictor
            )
            rows.append((
                effect,
                round(unfair.details["flip_rate"], 3),
                unfair.satisfied,
                round(fair.details["flip_rate"], 3),
                fair.satisfied,
            ))
        return rows

    rows = benchmark(sweep)
    report("E7 counterfactual fairness: flip rates vs causal effect", [
        ("sex_effect", "feature_model_flips", "fair?",
         "merit_model_flips", "fair?")
    ] + rows)

    flips = {effect: flip for effect, flip, *__ in rows}
    # no causal effect → no flips; flips grow with the effect size
    assert flips[0.0] == 0.0
    assert flips[-1.0] < flips[-2.0] < flips[-4.0]
    # the deconfounded predictor never flips
    assert all(row[3] == 0.0 and row[4] for row in rows)
    # the feature predictor is unfair whenever an effect exists
    assert all(not row[2] for row in rows if row[0] != 0.0)
