"""P1 — kernel: shared-counts battery and the parallel subgroup scanner.

Two comparisons, both against the pre-kernel code kept verbatim behind
the ``"reference"`` backend:

* the full audit battery on 80k rows through the joint-contingency
  engine vs the original per-group masking loops (regression guard:
  kernel ≥ 3× faster);
* the subgroup scan on 80k rows with 4 protected attributes (order ≤ 4,
  ~4k subgroups) serial vs ``jobs=4`` (regression guard: parallel ≥
  1.5× faster, findings byte-identical), plus the reference-path scan
  time for the trajectory.

Results land in ``BENCH_P1.json`` (uploaded by the CI benchmark job).
"""

import os
import time

import numpy as np
import pytest

from repro.core import FairnessAudit
from repro.data import Column, Schema, TabularDataset, make_hiring
from repro.kernel import use_backend
from repro.subgroup import audit_subgroups

from benchmarks.conftest import report, write_bench_json

N_ROWS = 80_000
BATTERY_REPEATS = 3
SCAN_ATTRIBUTES = {"region": 8, "language": 8, "age_band": 6, "origin": 6}


def _battery_seconds(backend: str) -> float:
    best = float("inf")
    for repeat in range(BATTERY_REPEATS):
        # A fresh dataset per repeat keeps every kernel cache cold, so the
        # measured time includes the encode cost, not just warm lookups.
        data = make_hiring(
            n=N_ROWS, direct_bias=1.5, proxy_strength=0.8,
            random_state=repeat,
        )
        with use_backend(backend):
            start = time.perf_counter()
            FairnessAudit(data, tolerance=0.05, strata="university").run()
            best = min(best, time.perf_counter() - start)
    return best


def _scan_dataset() -> TabularDataset:
    rng = np.random.default_rng(17)
    columns, data = [], {}
    for name, n_categories in SCAN_ATTRIBUTES.items():
        categories = tuple(f"{name}{i}" for i in range(n_categories))
        columns.append(
            Column(name, kind="categorical", role="protected",
                   categories=categories)
        )
        data[name] = rng.choice(categories, size=N_ROWS)
    columns.append(Column("outcome", kind="binary", role="label"))
    # Outcome correlated with one attribute so the scan has real gaps.
    base = rng.random(N_ROWS)
    skew = np.char.endswith(data["region"].astype(str), "0") * 0.15
    data["outcome"] = (base < 0.35 + skew).astype(np.int64)
    return TabularDataset(Schema(tuple(columns)), data)


def _scan_seconds(data, predictions, jobs: int, backend: str = "kernel") -> tuple:
    with use_backend(backend):
        start = time.perf_counter()
        findings = audit_subgroups(
            predictions, data, max_order=4, min_size=50, jobs=jobs
        )
        return time.perf_counter() - start, findings


def _signature(findings) -> list:
    return [
        (f.subgroup.conditions, f.subgroup.size, f.rate, f.complement_rate,
         f.gap, f.ci_low, f.ci_high, f.p_value)
        for f in findings
    ]


def test_p1_battery_kernel_vs_reference(benchmark):
    def experiment():
        return _battery_seconds("kernel"), _battery_seconds("reference")

    kernel_s, reference_s = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    speedup = reference_s / max(kernel_s, 1e-9)
    report("P1 audit battery on 80k rows", [
        ("path", "seconds"),
        ("reference (pre-kernel)", round(reference_s, 4)),
        ("kernel (shared counts)", round(kernel_s, 4)),
        ("speedup", round(speedup, 2)),
    ])
    write_bench_json("P1_BATTERY", {
        "n_rows": N_ROWS,
        "kernel_seconds": kernel_s,
        "reference_seconds": reference_s,
        "speedup": speedup,
    })
    # Regression guard (ISSUE 3 acceptance): shared-counts battery must
    # stay ≥ 3x faster than the pre-PR masking loops.
    assert speedup >= 3.0, (
        f"kernel battery only {speedup:.2f}x faster than reference"
    )


def test_p1_parallel_scan_speedup(benchmark):
    data = _scan_dataset()
    predictions = data.labels()

    def experiment():
        serial_s, serial_findings = _scan_seconds(data, predictions, jobs=1)
        parallel_s, parallel_findings = _scan_seconds(data, predictions, jobs=4)
        reference_s, reference_findings = _scan_seconds(
            data, predictions, jobs=1, backend="reference"
        )
        return (serial_s, parallel_s, reference_s,
                serial_findings, parallel_findings, reference_findings)

    (serial_s, parallel_s, reference_s,
     serial_findings, parallel_findings, reference_findings) = (
        benchmark.pedantic(experiment, rounds=1, iterations=1)
    )
    speedup = serial_s / max(parallel_s, 1e-9)
    cores = len(os.sched_getaffinity(0))
    report("P1 subgroup scan on 80k rows (~4k subgroups)", [
        ("path", "seconds"),
        ("reference serial (pre-kernel)", round(reference_s, 4)),
        ("kernel serial", round(serial_s, 4)),
        ("kernel jobs=4", round(parallel_s, 4)),
        ("parallel speedup", round(speedup, 2)),
        ("available cores", cores),
    ])
    write_bench_json("P1_SCAN", {
        "n_rows": N_ROWS,
        "n_subgroups": len(serial_findings),
        "cores": cores,
        "reference_seconds": reference_s,
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "parallel_speedup": speedup,
        "kernel_vs_reference": reference_s / max(serial_s, 1e-9),
    })
    # Byte-identical findings first — a fast wrong answer is no answer.
    assert _signature(parallel_findings) == _signature(serial_findings)
    assert _signature(reference_findings) == _signature(serial_findings)
    # Regression guard (ISSUE 3 acceptance): 4 jobs ≥ 1.5x serial.  Real
    # process parallelism needs real cores; on a machine with fewer than
    # 4 the guard is unmeetable by any implementation, so only the
    # identity checks above apply there (CI runners have ≥ 4).
    if cores < 4:
        pytest.skip(
            f"speedup guard needs >= 4 cores, found {cores} "
            f"(identity checks passed; jobs=4 ran {speedup:.2f}x serial)"
        )
    assert speedup >= 1.5, (
        f"jobs=4 scan only {speedup:.2f}x faster than serial"
    )
