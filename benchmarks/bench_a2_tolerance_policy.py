"""A2 — ablation: tolerance policy (absolute gap vs ratio threshold).

DESIGN.md calls out the verdict-policy choice: an absolute-gap tolerance
and the four-fifths ratio rule can disagree — at low selection rates a
small absolute gap is a large relative one (ratio fails, gap passes) and
at high rates the reverse.  This bench maps the disagreement region.
"""

import numpy as np

from repro.core import demographic_parity, four_fifths_rule

from benchmarks.conftest import report


def _scenario(base_rate: float, gap: float, n_per_group: int = 1000):
    rate_a = base_rate
    rate_b = max(base_rate - gap, 0.0)
    predictions = np.concatenate([
        np.ones(int(rate_a * n_per_group)),
        np.zeros(n_per_group - int(rate_a * n_per_group)),
        np.ones(int(rate_b * n_per_group)),
        np.zeros(n_per_group - int(rate_b * n_per_group)),
    ]).astype(int)
    groups = np.array(["a"] * n_per_group + ["b"] * n_per_group)
    return predictions, groups


def test_a2_gap_vs_ratio_policies(benchmark):
    def experiment():
        rows = []
        for base_rate in (0.1, 0.3, 0.5, 0.8):
            for gap in (0.02, 0.05, 0.1):
                predictions, groups = _scenario(base_rate, gap)
                dp = demographic_parity(predictions, groups, tolerance=0.05)
                ff = four_fifths_rule(dp.rates())
                rows.append((
                    base_rate, gap,
                    dp.satisfied, round(ff.ratio, 3), ff.passes,
                    dp.satisfied != ff.passes,
                ))
        return rows

    rows = benchmark.pedantic(experiment, rounds=2, iterations=1)
    report("A2 tolerance policy: absolute gap (0.05) vs four-fifths ratio", [
        ("base rate", "true gap", "gap policy ok",
         "ratio", "ratio policy ok", "policies disagree")
    ] + rows)

    by_key = {(r[0], r[1]): r for r in rows}
    # low base rate: a 0.05 absolute gap passes the gap policy but the
    # ratio collapses → four-fifths fails (disagreement)
    assert by_key[(0.1, 0.05)][2] is True
    assert by_key[(0.1, 0.05)][4] is False
    assert by_key[(0.1, 0.05)][5] is True
    # high base rate: a 0.1 absolute gap fails the gap policy but the
    # ratio stays above 0.8 → four-fifths passes (opposite disagreement)
    assert by_key[(0.8, 0.1)][2] is False
    assert by_key[(0.8, 0.1)][4] is True
    # mid rates with tiny gaps: both policies agree fair
    assert by_key[(0.5, 0.02)][2] is True and by_key[(0.5, 0.02)][4] is True
