"""E2 — paper §III.B worked example: conditional statistical parity.

Paper's row: among young applicants, 5 of 10 young males are hired; the
model is fair iff 3 of the 6 young females are hired.
"""

import numpy as np

from repro.core import conditional_statistical_parity

from benchmarks.conftest import report


def _scenario(blocks, young_females_hired):
    predictions = np.concatenate([
        blocks((1, 5), (0, 5)),        # young males
        blocks((0, 10)),               # old males
        blocks((1, young_females_hired), (0, 6 - young_females_hired)),
        blocks((0, 4)),                # old females
    ])
    groups = blocks(("male", 20), ("female", 10))
    strata = np.concatenate([
        blocks(("young", 10), ("old", 10)),
        blocks(("young", 6), ("old", 4)),
    ])
    return predictions, groups, strata


def test_e2_sweep(benchmark, blocks):
    def sweep():
        rows = []
        for hired in range(7):
            predictions, groups, strata = _scenario(blocks, hired)
            result = conditional_statistical_parity(
                predictions, groups, strata
            )
            young = result.strata["young"]
            rows.append((hired, young.satisfied,
                         young.disadvantaged_group() if not young.satisfied
                         else "—"))
        return rows

    rows = benchmark(sweep)
    report("E2 conditional statistical parity (young stratum)", [
        ("young_females_hired", "fair", "disadvantaged")
    ] + rows)

    verdicts = {h: fair for h, fair, __ in rows}
    assert verdicts[3] is True
    assert all(verdicts[h] is False for h in (0, 1, 2, 4, 5, 6))
    against = {h: who for h, __, who in rows}
    assert all(against[h] == "female" for h in (0, 1, 2))
    assert all(against[h] == "male" for h in (4, 5, 6))
