"""R2 — resilience overhead: supervised audit vs bare metric battery.

The robustness engine (``repro.robustness.StageRunner``) wraps every
(attribute, metric) evaluation in a supervised stage.  That wrapper must
be close to free on the no-fault path — the paper's Section V argument
for continuous auditing collapses if resilience makes routine audits
measurably slower.  This bench times the supervised battery against a
bare loop over the same internal evaluations and asserts the median
overhead stays under 5%.  A second row records the degraded path (one
injected per-metric fault) to show fault capture is also cheap.
"""

import statistics
import time

from repro.core import FairnessAudit
from repro.core.audit import _BATTERY
from repro.data import make_hiring
from repro.robustness import FaultInjector

from benchmarks.conftest import report

ROUNDS = 7


def _bare_battery(audit: FairnessAudit) -> float:
    """The same evaluations ``run()`` performs, without the runner."""
    start = time.perf_counter()
    findings = []
    for attribute in audit.protected_attributes:
        for metric in _BATTERY:
            findings.append(audit._evaluate(metric, attribute))
        audit._power_note(attribute)
    return time.perf_counter() - start


def _supervised_battery(audit: FairnessAudit) -> float:
    start = time.perf_counter()
    audit.run()
    return time.perf_counter() - start


def _degraded_battery(data) -> float:
    injector = FaultInjector()
    injector.inject_error(
        "audit:sex:treatment_equality", RuntimeError("chaos")
    )
    audit = FairnessAudit(
        data, tolerance=0.05, strata="university", faults=injector
    )
    start = time.perf_counter()
    audit.run()
    return time.perf_counter() - start


def test_r2_supervision_overhead(benchmark):
    data = make_hiring(
        n=20_000, direct_bias=1.5, proxy_strength=0.8, random_state=0
    )

    def experiment():
        bare, supervised, degraded = [], [], []
        for _ in range(ROUNDS):
            audit = FairnessAudit(data, tolerance=0.05, strata="university")
            bare.append(_bare_battery(audit))
            audit = FairnessAudit(data, tolerance=0.05, strata="university")
            supervised.append(_supervised_battery(audit))
            degraded.append(_degraded_battery(data))
        return (
            statistics.median(bare),
            statistics.median(supervised),
            statistics.median(degraded),
        )

    bare, supervised, degraded = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    overhead = supervised / bare - 1.0
    report("R2 supervised-runner overhead (n=20k hiring)", [
        ("path", "median seconds"),
        ("bare battery", round(bare, 4)),
        ("supervised battery", round(supervised, 4)),
        ("degraded (1 fault)", round(degraded, 4)),
        ("overhead", f"{overhead * 100:+.2f}%"),
    ])

    # the acceptance criterion: <5% on the no-fault path (an absolute
    # floor keeps sub-millisecond jitter from flaking the ratio)
    assert supervised - bare < max(0.05 * bare, 2e-3)
    # fault capture must not blow the budget either: the degraded run
    # does strictly less metric work, so it must stay near the bare time
    assert degraded < supervised * 1.25
