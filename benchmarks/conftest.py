"""Shared helpers for the experiment benchmarks.

Each ``bench_*`` module regenerates one experiment from DESIGN.md's
per-experiment index (E1–E7 = the paper's Section III worked examples;
C1–C6 = the Section IV criteria phenomena; M1 = the mitigation ladder).
The ``benchmark`` fixture times the experiment kernel; the printed table
is the "row the paper reports" — compare against EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np
import pytest


def report(experiment: str, rows: list[tuple]) -> None:
    """Print an experiment's result rows in a uniform format."""
    print(f"\n[{experiment}]")
    for row in rows:
        print("   " + " | ".join(str(cell) for cell in row))


@pytest.fixture
def blocks():
    """(value, count) block concatenation helper, as in the unit tests."""

    def build(*pairs):
        out = []
        for value, count in pairs:
            out.extend([value] * count)
        return np.array(out)

    return build
