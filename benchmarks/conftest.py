"""Shared helpers for the experiment benchmarks.

Each ``bench_*`` module regenerates one experiment from DESIGN.md's
per-experiment index (E1–E7 = the paper's Section III worked examples;
C1–C6 = the Section IV criteria phenomena; M1 = the mitigation ladder).
The ``benchmark`` fixture times the experiment kernel; the printed table
is the "row the paper reports" — compare against EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest


def report(experiment: str, rows: list[tuple]) -> None:
    """Print an experiment's result rows in a uniform format."""
    print(f"\n[{experiment}]")
    for row in rows:
        print("   " + " | ".join(str(cell) for cell in row))


def write_bench_json(name: str, payload: dict) -> Path:
    """Write a machine-readable ``BENCH_<NAME>.json`` result file.

    CI uploads these as artifacts so the bench trajectory is tracked
    across PRs; ``REPRO_BENCH_DIR`` overrides the output directory
    (default: current working directory).
    """
    out_dir = Path(os.environ.get("REPRO_BENCH_DIR", "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name.upper()}.json"
    envelope = {
        "bench": name.upper(),
        "created_unix": round(time.time(), 3),
        "python": platform.python_version(),
        **payload,
    }
    path.write_text(json.dumps(envelope, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture
def blocks():
    """(value, count) block concatenation helper, as in the unit tests."""

    def build(*pairs):
        out = []
        for value, count in pairs:
            out.extend([value] * count)
        return np.array(out)

    return build
