"""A4 — ablation: the fairness/accuracy frontier and the price of parity.

Sweeps per-group decision thresholds on the biased hiring workload and
traces the Pareto frontier of (DP gap, accuracy) operating points.
Expected shape: the frontier is monotone (more allowed gap → weakly more
accuracy), it contains a near-zero-gap point, and the price of exact
parity is a small, quantified accuracy sacrifice.
"""

from repro.core import fairness_frontier
from repro.data import make_hiring
from repro.models import LogisticRegression, Standardizer

from benchmarks.conftest import report


def test_a4_frontier(benchmark):
    def experiment():
        data = make_hiring(
            n=3000, direct_bias=2.0, proxy_strength=0.9, random_state=43
        )
        X = Standardizer().fit_transform(data.feature_matrix())
        model = LogisticRegression(max_iter=800).fit(X, data.labels())
        probabilities = model.predict_proba(X)
        return fairness_frontier(
            probabilities, data.column("sex"), data.labels(),
            n_thresholds=15,
        )

    frontier = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [("max gap allowed", "best accuracy", "price of fairness")]
    for max_gap in (0.0, 0.02, 0.05, 0.1, 0.2):
        try:
            point = frontier.best_accuracy_within(max_gap)
            rows.append((
                max_gap,
                round(point.accuracy, 3),
                round(frontier.price_of_fairness(max_gap), 3),
            ))
        except Exception:
            rows.append((max_gap, "unreachable", "—"))
    report("A4 fairness/accuracy frontier", rows)

    gaps = [p.dp_gap for p in frontier.points]
    accs = [p.accuracy for p in frontier.points]
    assert gaps == sorted(gaps)
    assert accs == sorted(accs)
    assert frontier.points[0].dp_gap < 0.03   # near-parity is reachable
    # parity costs something but not everything
    price = frontier.price_of_fairness(0.02)
    assert 0.0 <= price < 0.2
