"""O1 — observability overhead: instrumented audit vs bare battery.

The telemetry layer (``repro.observability``) instruments every audit
stage unconditionally: the runner opens a span, bumps counters, and
feeds a latency histogram on each stage whether or not anyone is
looking.  That only works if the disabled path — the null tracer plus a
couple of counter increments — is close to free.  This bench times the
bare metric battery against the instrumented ``run()`` (no tracer
installed) and asserts the median overhead stays under 3%; a third row
records a fully traced run (real tracer, spans retained in memory) to
show even evidence-grade tracing is cheap.
"""

import statistics
import time

from repro.core import FairnessAudit
from repro.core.audit import _BATTERY
from repro.data import make_hiring
from repro.observability import Tracer, use_tracer

from benchmarks.conftest import report

ROUNDS = 7


def _bare_battery(audit: FairnessAudit) -> float:
    """The same evaluations ``run()`` performs, without instrumentation."""
    start = time.perf_counter()
    findings = []
    for attribute in audit.protected_attributes:
        for metric in _BATTERY:
            findings.append(audit._evaluate(metric, attribute))
        audit._power_note(attribute)
    return time.perf_counter() - start


def _instrumented_battery(audit: FairnessAudit) -> float:
    """``run()`` with no tracer installed — the default production path."""
    start = time.perf_counter()
    audit.run()
    return time.perf_counter() - start


def _traced_battery(data) -> float:
    """``run()`` under a real tracer collecting every span."""
    audit = FairnessAudit(data, tolerance=0.05, strata="university")
    with use_tracer(Tracer(run_id="bench-o1")):
        start = time.perf_counter()
        audit.run()
        return time.perf_counter() - start


def test_o1_observability_overhead(benchmark):
    data = make_hiring(
        n=20_000, direct_bias=1.5, proxy_strength=0.8, random_state=0
    )

    def experiment():
        bare, instrumented, traced = [], [], []
        for _ in range(ROUNDS):
            audit = FairnessAudit(data, tolerance=0.05, strata="university")
            bare.append(_bare_battery(audit))
            audit = FairnessAudit(data, tolerance=0.05, strata="university")
            instrumented.append(_instrumented_battery(audit))
            traced.append(_traced_battery(data))
        return (
            statistics.median(bare),
            statistics.median(instrumented),
            statistics.median(traced),
        )

    bare, instrumented, traced = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    overhead = instrumented / bare - 1.0
    traced_overhead = traced / bare - 1.0
    report("O1 observability overhead (n=20k hiring)", [
        ("path", "median seconds"),
        ("bare battery", round(bare, 4)),
        ("instrumented, no tracer", round(instrumented, 4)),
        ("instrumented, traced", round(traced, 4)),
        ("no-trace overhead", f"{overhead * 100:+.2f}%"),
        ("traced overhead", f"{traced_overhead * 100:+.2f}%"),
    ])

    # the acceptance criterion: <3% when tracing is off (an absolute
    # floor keeps sub-millisecond jitter from flaking the ratio).  Note
    # the instrumented path also carries the supervised runner, so this
    # subsumes R2's wrapper cost plus the null-tracer/metrics cost.
    assert instrumented - bare < max(0.03 * bare, 2e-3)
    # a real tracer buys evidence, not a slowdown: span bookkeeping is
    # O(stages), far below metric-evaluation cost
    assert traced - bare < max(0.10 * bare, 5e-3)
