"""C1 — paper §IV.A: equal treatment vs equal outcome disagree.

Claim reproduced: on merit-skewed data (a real qualification gap between
groups, honestly labelled), equal-treatment metrics (equal opportunity /
equalized odds) pass while equal-outcome metrics (demographic parity,
four-fifths) fail; a quota post-processor restores equal outcome at a
measurable accuracy cost — the IV.A trade-off made quantitative.
"""

import numpy as np

from repro.core import (
    demographic_parity,
    disparate_impact_ratio,
    equal_opportunity,
    equalized_odds,
)
from repro.data import Column, Schema, TabularDataset
from repro.mitigation import quota_selector
from repro.models import LogisticRegression, Standardizer, accuracy

from benchmarks.conftest import report


def _merit_skewed_dataset(n=4000, seed=0):
    """Groups differ in (honestly labelled) qualification distribution."""
    rng = np.random.default_rng(seed)
    group = np.where(rng.random(n) < 0.5, "g1", "g2")
    merit = rng.normal(0, 1, n) + np.where(group == "g2", -0.8, 0.0)
    feature = merit + rng.normal(0, 0.4, n)
    qualified = (merit > 0).astype(int)
    schema = Schema((
        Column("feature", kind="numeric"),
        Column("group", kind="categorical", role="protected",
               categories=("g1", "g2")),
        Column("qualified", kind="binary", role="label"),
    ))
    return TabularDataset(schema, {
        "feature": feature, "group": group, "qualified": qualified,
    })


def test_c1_disagreement_and_quota(benchmark):
    def experiment():
        data = _merit_skewed_dataset()
        train, test = data.split(test_fraction=0.3, random_state=0,
                                 stratify_by="group")
        scaler = Standardizer()
        model = LogisticRegression(max_iter=600).fit(
            scaler.fit_transform(train.feature_matrix()), train.labels()
        )
        X_test = scaler.transform(test.feature_matrix())
        preds = model.predict(X_test)
        groups = test.column("group")
        labels = test.labels()

        rows = [(
            "merit model",
            round(equal_opportunity(labels, preds, groups).gap, 3),
            round(equalized_odds(labels, preds, groups).gap, 3),
            round(demographic_parity(preds, groups).gap, 3),
            round(disparate_impact_ratio(preds, groups).ratio, 3),
            round(accuracy(labels, preds), 3),
        )]

        # quota selection: same number of hires, proportional per group
        scores = model.predict_proba(X_test)
        quota_preds = quota_selector(
            scores, groups, n_select=int(preds.sum())
        )
        rows.append((
            "quota (IV.A positive action)",
            round(equal_opportunity(labels, quota_preds, groups).gap, 3),
            round(equalized_odds(labels, quota_preds, groups).gap, 3),
            round(demographic_parity(quota_preds, groups).gap, 3),
            round(disparate_impact_ratio(quota_preds, groups).ratio, 3),
            round(accuracy(labels, quota_preds), 3),
        ))
        return rows

    rows = benchmark.pedantic(experiment, rounds=3, iterations=1)
    report("C1 equal treatment vs equal outcome", [
        ("policy", "EO gap", "EOdds gap", "DP gap", "DI ratio", "accuracy")
    ] + rows)

    merit, quota = rows
    # merit model: treatment metrics ~fair, outcome metrics violated
    assert merit[1] < 0.1
    assert merit[3] > 0.15
    assert merit[4] < 0.8  # fails four-fifths
    # quota: outcome restored, treatment degraded, accuracy cost bounded
    assert quota[3] < merit[3]
    assert quota[4] > merit[4]
    assert quota[1] > merit[1]
    assert quota[5] > merit[5] - 0.15
