"""C4 — paper §IV.D: feedback loops perpetuate bias.

Claim reproduced: a model seeded with biased data keeps a large
selection-rate gap across retraining rounds even though every incoming
cohort is generated unbiased; applicant discouragement shrinks the
disadvantaged group's application share; a per-round parity intervention
collapses the gap.
"""

import numpy as np

from repro.data import make_hiring
from repro.feedback import FeedbackLoopSimulator

from benchmarks.conftest import report

ROUNDS = 6


def _parity_intervention(decisions, cohort):
    sex = cohort.column("sex")
    fixed = decisions.copy()
    rates = {
        g: decisions[sex == g].mean()
        for g in ("male", "female") if (sex == g).any()
    }
    target = max(rates.values())
    for group, rate in rates.items():
        mask = sex == group
        deficit = int(round((target - rate) * mask.sum()))
        rejected = np.flatnonzero(mask & (decisions == 0))
        fixed[rejected[:deficit]] = 1
    return fixed


def test_c4_loop_variants(benchmark):
    def experiment():
        seed_data = make_hiring(
            n=1500, direct_bias=2.0, proxy_strength=0.85, random_state=3
        )
        variants = {
            "laissez-faire": {},
            "discouragement": {"discouragement": 0.6},
            "intervention": {"intervention": _parity_intervention},
        }
        histories = {}
        for name, kwargs in variants.items():
            simulator = FeedbackLoopSimulator(
                initial_data=seed_data, cohort_size=600, random_state=3,
                **kwargs,
            )
            histories[name] = simulator.run(n_rounds=ROUNDS)
        return histories

    histories = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [("round",) + tuple(histories)]
    for r in range(ROUNDS):
        rows.append(
            (r,) + tuple(
                round(h.dp_gaps()[r], 3) for h in histories.values()
            )
        )
    rows.append(("female share (last round)",) + tuple(
        round(h.application_share("female")[-1], 3)
        for h in histories.values()
    ))
    report("C4 feedback loops: DP gap per round", rows)

    laissez = histories["laissez-faire"]
    discouraged = histories["discouragement"]
    treated = histories["intervention"]

    # bias persists without intervention (mean gap well above clean level)
    assert float(np.mean(laissez.dp_gaps())) > 0.08
    # discouragement shrinks the female application share
    assert (
        discouraged.application_share("female")[-1]
        < laissez.application_share("female")[-1] - 0.03
    )
    # the intervention flattens the gap
    assert treated.dp_gaps()[-1] < 0.05
    assert float(np.mean(treated.dp_gaps()[1:])) < float(
        np.mean(laissez.dp_gaps()[1:])
    )
