"""A1 — ablation: subgroup search strategy (enumeration vs oracle).

DESIGN.md calls out the IV.C search-strategy choice: exhaustive
conjunction enumeration is complete but exponential; the learned-oracle
gerrymandering auditor scales past the wall at the cost of completeness.
This bench measures both on growing numbers of protected attributes and
checks that (a) the enumerated subgroup count explodes as predicted and
(b) the oracle keeps finding the planted subgroup.
"""

import numpy as np

from repro.data import Column, Schema, TabularDataset
from repro.subgroup import (
    GerrymanderingAuditor,
    audit_subgroups,
    subgroup_space_size,
)

from benchmarks.conftest import report


def _many_attribute_dataset(n_attributes: int, n: int = 4000, seed: int = 0):
    """Binary protected attributes with disparity planted on attr0∧attr1."""
    rng = np.random.default_rng(seed)
    columns, data = [], {}
    for i in range(n_attributes):
        name = f"attr{i}"
        columns.append(Column(
            name, kind="categorical", role="protected", categories=("x", "y"),
        ))
        data[name] = rng.choice(["x", "y"], n)
    columns.append(Column("outcome", kind="binary", role="label"))
    planted = (data["attr0"] == "x") & (data["attr1"] == "y")
    data["outcome"] = np.where(
        planted, rng.random(n) < 0.2, rng.random(n) < 0.7
    ).astype(int)
    return TabularDataset(Schema(tuple(columns)), data)


def test_a1_enumeration_vs_oracle(benchmark):
    def experiment():
        rows = []
        for k in (2, 4, 6, 8):
            ds = _many_attribute_dataset(k)
            attributes = [f"attr{i}" for i in range(k)]
            space_order2 = subgroup_space_size([2] * k, max_order=2)
            space_full = subgroup_space_size([2] * k, max_order=k)

            findings = audit_subgroups(
                ds.labels(), ds, attributes=attributes, max_order=2
            )
            top_enum = findings[0]
            oracle = GerrymanderingAuditor(max_depth=3).find_worst_subgroup(
                ds.labels(), ds
            )
            rows.append((
                k, space_order2, space_full,
                round(abs(top_enum.gap), 3),
                round(abs(oracle.gap), 3),
            ))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report("A1 subgroup search: enumeration vs oracle", [
        ("n_attrs", "order-2 space", "full space",
         "|gap| enumerated", "|gap| oracle")
    ] + rows)

    spaces = [row[2] for row in rows]
    assert spaces == sorted(spaces)
    assert spaces[-1] / max(spaces[0], 1) > 100  # the exponential wall
    for row in rows:
        assert row[3] > 0.2   # enumeration finds the planted disparity
        assert row[4] > 0.2   # ...and so does the oracle, at any k
