"""E1 — paper §III.A worked example: demographic parity.

Paper's row: with 10 female / 20 male applicants and 10 males hired,
the model is fair iff exactly 5 females are hired; fewer is bias against
females, more is bias against males.
"""

from repro.core import demographic_parity

from benchmarks.conftest import report


def _scenario(blocks, females_hired):
    predictions = blocks((1, 10), (0, 10), (1, females_hired),
                         (0, 10 - females_hired))
    groups = blocks(("male", 20), ("female", 10))
    return predictions, groups


def test_e1_sweep(benchmark, blocks):
    def sweep():
        rows = []
        for hired in range(11):
            predictions, groups = _scenario(blocks, hired)
            result = demographic_parity(predictions, groups)
            rows.append((hired, result.satisfied,
                         result.disadvantaged_group() if not result.satisfied
                         else "—"))
        return rows

    rows = benchmark(sweep)
    report("E1 demographic parity: females hired → verdict", [
        ("females_hired", "fair", "disadvantaged")
    ] + rows)

    verdicts = {hired: fair for hired, fair, __ in rows}
    assert verdicts[5] is True
    assert all(verdicts[h] is False for h in range(5))
    assert all(verdicts[h] is False for h in range(6, 11))
    against = {hired: who for hired, __, who in rows}
    assert all(against[h] == "female" for h in range(5))
    assert all(against[h] == "male" for h in range(6, 11))
