"""P3 — pruned subgroup scan: branch-and-bound vs exhaustive scoring.

One lattice at the BENCH_P2 operating point (3,955 enumerable
subgroups: five 7-category protected attributes at ``max_order=3``),
one planted order-2 disparity, heavy null noise everywhere else.  The
experiment runs the same :class:`~repro.core.config.ScanConfig` lattice
through both strategies and checks, in this order:

1. **Equivalence, unconditionally** — the best-first scan's flagged
   set, adjusted p-values, and final checkpoint bytes must be identical
   to the exhaustive scan's before any speed/pruning number means
   anything.  A fast wrong answer must fail the bench.
2. **Pruning guard** (ISSUE 9 acceptance) — the statistical bounds must
   skip at least 60% of the enumerated subgroups at this point.

Wall times for both strategies are reported and written to
``BENCH_P3.json`` (uploaded by the CI benchmark job) so the trajectory
is tracked across PRs, but timing is informational: the enforced
contract is equal findings with most of the work skipped.
"""

import time

import numpy as np

from repro.core.config import ScanConfig
from repro.data import Column, Schema, TabularDataset
from repro.subgroup import scan_subgroups, subgroup_space_size

from benchmarks.conftest import report, write_bench_json

N_ROWS = 24_000
N_ATTRS = 5
N_CATS = 7
MAX_ORDER = 3
MIN_PRUNED_FRACTION = 0.60
REPEATS = 2


def _lattice_dataset(seed=11):
    rng = np.random.default_rng(seed)
    cats = tuple(f"c{i}" for i in range(N_CATS))
    columns = []
    data = {}
    for i in range(N_ATTRS):
        name = f"g{i}"
        columns.append(
            Column(name, kind="categorical", role="protected",
                   categories=cats)
        )
        data[name] = rng.choice(cats, size=N_ROWS)
    columns.append(Column("y", kind="binary", role="label"))
    rate = 0.5 + 0.22 * ((data["g0"] == "c0") & (data["g1"] == "c1"))
    data["y"] = (rng.random(N_ROWS) < rate).astype(int)
    return TabularDataset(Schema(tuple(columns)), data)


def _best(fn):
    best, result = float("inf"), None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _flag_key(result):
    return [
        (f.subgroup.label(), f.p_value, f.adjusted_p_value)
        for f in result.flagged
    ]


def test_p3_pruned_scan_equivalence_and_skip_rate(benchmark, tmp_path):
    dataset = _lattice_dataset()
    config = ScanConfig(min_size=20, max_order=MAX_ORDER)
    space = subgroup_space_size([N_CATS] * N_ATTRS, max_order=MAX_ORDER)
    exhaustive_ckpt = tmp_path / "exhaustive.ckpt.json"
    pruned_ckpt = tmp_path / "pruned.ckpt.json"

    def experiment():
        exhaustive_s, exhaustive = _best(lambda: scan_subgroups(
            dataset.labels(), dataset, config=config,
            checkpoint_path=str(exhaustive_ckpt),
        ))
        pruned_s, pruned = _best(lambda: scan_subgroups(
            dataset.labels(), dataset,
            config=config.replace(strategy="best_first"),
            checkpoint_path=str(pruned_ckpt),
        ))
        return exhaustive_s, exhaustive, pruned_s, pruned

    exhaustive_s, exhaustive, pruned_s, pruned = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    # 1. Equivalence first, unconditionally.
    assert _flag_key(pruned) == _flag_key(exhaustive)
    assert pruned.total == exhaustive.total
    assert pruned.family == exhaustive.family
    assert exhaustive_ckpt.read_bytes() == pruned_ckpt.read_bytes()

    # 2. The pruning guard at the ~4k-subgroup operating point.
    fraction = pruned.pruned_fraction
    speedup = exhaustive_s / max(pruned_s, 1e-9)
    report(f"P3 pruned scan, {space} subgroup lattice", [
        ("strategy", "seconds", "scored", "pruned"),
        ("exhaustive", round(exhaustive_s, 4), exhaustive.evaluated, 0),
        ("best_first", round(pruned_s, 4), pruned.evaluated, pruned.pruned),
        ("pruned fraction", f"{fraction:.1%}", "", ""),
        ("flagged (both)", len(pruned.flagged), "", ""),
        ("speedup", round(speedup, 2), "", ""),
    ])
    write_bench_json("P3", {
        "lattice_size": int(space),
        "enumerated": pruned.total,
        "family": pruned.family,
        "evaluated": pruned.evaluated,
        "pruned": pruned.pruned,
        "pruned_fraction": fraction,
        "flagged": len(pruned.flagged),
        "exhaustive_seconds": exhaustive_s,
        "best_first_seconds": pruned_s,
        "speedup": speedup,
    })
    # five 7-category attributes at order 3 enumerate 3,955 subgroups —
    # the ~4k BENCH_P2 scoring point
    assert space >= 3_900, "operating point shrank below the P2 scale"
    assert fraction >= MIN_PRUNED_FRACTION, (
        f"bounds pruned only {fraction:.1%} of the lattice "
        f"(guard: >= {MIN_PRUNED_FRACTION:.0%})"
    )
