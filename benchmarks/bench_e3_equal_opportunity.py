"""E3 — paper §III.C worked example: equal opportunity.

Paper's row: 10 qualified males (5 hired) and 6 qualified females; the
model is fair iff 3 qualified females are hired (TPR 0.5 each).
"""

import numpy as np

from repro.core import equal_opportunity

from benchmarks.conftest import report


def _scenario(blocks, qualified_females_hired):
    y_true = np.concatenate([
        blocks((1, 10), (0, 10)),
        blocks((1, 6), (0, 4)),
    ])
    predictions = np.concatenate([
        blocks((1, 5), (0, 5), (0, 10)),
        blocks((1, qualified_females_hired),
               (0, 6 - qualified_females_hired), (0, 4)),
    ])
    groups = blocks(("male", 20), ("female", 10))
    return y_true, predictions, groups


def test_e3_sweep(benchmark, blocks):
    def sweep():
        rows = []
        for hired in range(7):
            y_true, predictions, groups = _scenario(blocks, hired)
            result = equal_opportunity(y_true, predictions, groups)
            rows.append((
                hired,
                round(result.rate_of("male"), 3),
                round(result.rate_of("female"), 3),
                result.satisfied,
            ))
        return rows

    rows = benchmark(sweep)
    report("E3 equal opportunity: TPR by group", [
        ("qualified_females_hired", "tpr_male", "tpr_female", "fair")
    ] + rows)

    verdicts = {h: fair for h, __, __, fair in rows}
    assert verdicts[3] is True
    assert all(verdicts[h] is False for h in (0, 1, 2, 4, 5, 6))
    # male TPR pinned at 0.5 throughout, as the paper sets up
    assert all(row[1] == 0.5 for row in rows)
