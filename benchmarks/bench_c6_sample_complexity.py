"""C6 — paper §IV.F: sample complexity of bias detection.

Claims reproduced:

* the estimation error of every discrete distance (Hellinger, TV, JS)
  decays roughly as n^(−1/2) — "accuracy increasing in the number of
  samples";
* Wasserstein/MMD on continuous samples behave likewise;
* Sinkhorn regularisation trades accuracy for speed against the exact LP
  (the runtime-vs-accuracy point the paper closes IV.F with);
* marginal-only (group-blind) repair reduces the group gap without any
  per-record protected attribute.
"""

import numpy as np

from repro.mitigation import GroupBlindRepair
from repro.stats import (
    DISTANCE_REGISTRY,
    mmd_rbf,
    sample_complexity_curve,
    sinkhorn_plan,
    wasserstein1_empirical,
    wasserstein_discrete,
)

from benchmarks.conftest import report

POPULATION = {"group_a": 0.7, "group_b": 0.3}
REFERENCE = {"group_a": 0.5, "group_b": 0.5}
SIZES = [50, 200, 800, 3200]


def test_c6_discrete_distance_curves(benchmark):
    def experiment():
        curves = {}
        for name, distance in DISTANCE_REGISTRY.items():
            curves[name] = sample_complexity_curve(
                distance, POPULATION, REFERENCE, SIZES,
                n_trials=30, distance_name=name, random_state=0,
            )
        return curves

    curves = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [("distance", "true value") + tuple(f"err@{n}" for n in SIZES)
            + ("fitted rate",)]
    for name, curve in curves.items():
        rows.append(
            (name, round(curve.true_value, 4))
            + tuple(round(e, 4) for e in curve.errors())
            + (round(curve.empirical_rate(), 2),)
        )
    report("C6a discrete-distance sample complexity", rows)

    for curve in curves.values():
        errors = curve.errors()
        assert errors[0] > errors[-1]          # error decays with n
        assert 0.25 < curve.empirical_rate() < 0.9  # ≈ root-n


def test_c6_continuous_distances(benchmark):
    def experiment():
        rng = np.random.default_rng(0)
        rows = []
        true_w1 = 0.5  # mean shift between the two normals
        for n in (50, 400, 3200):
            w1_errors, mmd_values = [], []
            for t in range(10):
                x = rng.normal(0, 1, n)
                y = rng.normal(true_w1, 1, n)
                w1_errors.append(abs(wasserstein1_empirical(x, y) - true_w1))
                mmd_values.append(mmd_rbf(x[:200], y[:200], bandwidth=1.0))
            rows.append((n, float(np.mean(w1_errors)),
                         float(np.mean(mmd_values))))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report("C6b continuous distances", [
        ("n", "W1 abs error", "MMD (n≤200)")
    ] + [(n, round(e, 4), round(m, 4)) for n, e, m in rows])
    errors = [e for __, e, __ in rows]
    assert errors[0] > errors[-1]


def test_c6_sinkhorn_accuracy_runtime(benchmark):
    rng = np.random.default_rng(0)
    size = 40
    p = rng.random(size)
    q = rng.random(size)
    grid = np.arange(size, dtype=float)
    cost = np.abs(grid[:, None] - grid[None, :])
    exact, __ = wasserstein_discrete(p, q, cost)

    def run_sinkhorn():
        results = {}
        for epsilon in (2.0, 0.5, 0.1):
            value, __ = sinkhorn_plan(
                p, q, cost, epsilon=epsilon, max_iter=20000
            )
            results[epsilon] = value
        return results

    results = benchmark(run_sinkhorn)
    rows = [("epsilon", "sinkhorn value", "abs error vs exact LP")]
    for epsilon, value in results.items():
        rows.append((epsilon, round(value, 4), round(abs(value - exact), 4)))
    rows.append(("exact LP", round(exact, 4), 0.0))
    report("C6c Sinkhorn regularisation vs exact OT", rows)

    errors = [abs(v - exact) for v in results.values()]
    assert errors[0] > errors[1] > errors[2]  # smaller eps → closer to exact
    assert errors[-1] < 0.01


def test_c6_group_blind_repair(benchmark):
    def experiment():
        rng = np.random.default_rng(1)
        references = {
            "a": rng.normal(0, 1, 3000),
            "b": rng.normal(-2.0, 1, 3000),
        }
        n = 4000
        groups = np.where(rng.random(n) < 0.5, "a", "b")
        values = rng.normal(0, 1, n) - 2.0 * (groups == "b")
        repair = GroupBlindRepair(references, marginals={"a": 0.5, "b": 0.5})
        return repair.gap_reduction(values, groups)

    diag = benchmark.pedantic(experiment, rounds=2, iterations=1)
    report("C6d marginal-only (group-blind) repair", [
        ("W1 before", round(diag["w1_before"], 3)),
        ("W1 after", round(diag["w1_after"], 3)),
        ("relative reduction", round(diag["relative_reduction"], 3)),
    ])
    assert diag["w1_before"] > 1.5
    assert diag["relative_reduction"] > 0.1
