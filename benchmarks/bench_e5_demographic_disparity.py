"""E5 — paper §III.E worked example: demographic disparity.

Paper's row: with 10 female applicants the model is fair towards females
iff at least as many are hired as rejected; more than 5 rejections is
unfair.
"""

from repro.core import demographic_disparity

from benchmarks.conftest import report


def test_e5_sweep(benchmark, blocks):
    def sweep():
        rows = []
        for hired in range(11):
            predictions = blocks((1, hired), (0, 10 - hired))
            groups = blocks(("female", 10))
            result = demographic_disparity(predictions, groups)
            rows.append((hired, 10 - hired, result.satisfied))
        return rows

    rows = benchmark(sweep)
    report("E5 demographic disparity (10 female applicants)", [
        ("hired", "rejected", "fair")
    ] + rows)

    verdicts = {hired: fair for hired, __, fair in rows}
    assert all(verdicts[h] is True for h in range(5, 11))
    assert all(verdicts[h] is False for h in range(5))
