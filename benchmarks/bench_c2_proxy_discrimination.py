"""C2 — paper §IV.B: proxy discrimination defeats unawareness.

Claim reproduced: with biased labels and a sex-encoding proxy, removing
the sensitive attribute leaves the selection-rate gap largely intact;
without the proxy, removal works.  The proxy detector ranks the planted
proxy first.
"""

from repro.data import make_hiring
from repro.proxy import ProxyDetector, fairness_through_unawareness

from benchmarks.conftest import report

STRENGTHS = [0.0, 0.5, 0.95]


def test_c2_unawareness_sweep(benchmark):
    def experiment():
        rows = []
        for strength in STRENGTHS:
            data = make_hiring(
                n=3000, direct_bias=2.5, proxy_strength=strength,
                random_state=0,
            )
            unaware = fairness_through_unawareness(data, "sex",
                                                   random_state=0)
            scan = ProxyDetector(random_state=0).scan(data, "sex")
            rows.append((
                strength,
                round(unaware.gap_aware, 3),
                round(unaware.gap_unaware, 3),
                scan.ranked()[0].feature,
                round(scan.full_model_power, 3),
            ))
        return rows

    rows = benchmark.pedantic(experiment, rounds=2, iterations=1)
    report("C2 proxy discrimination vs unawareness", [
        ("proxy_strength", "gap (aware)", "gap (unaware)",
         "top proxy", "reconstruction power")
    ] + rows)

    by_strength = {row[0]: row for row in rows}
    # no proxy: unawareness fixes the gap
    assert by_strength[0.0][2] < 0.1
    # strong proxy: the gap survives attribute removal (paper IV.B)
    assert by_strength[0.95][2] > 0.1
    # the detector names the planted proxy and reconstruction succeeds
    assert by_strength[0.95][3] == "university"
    assert by_strength[0.95][4] > 0.85
    # the strong proxy retains far more of the gap than either weaker
    # configuration (retention is not strictly monotone at moderate
    # strengths: a weak proxy is too noisy for the model to exploit)
    assert by_strength[0.95][2] > 2 * max(
        by_strength[0.0][2], by_strength[0.5][2]
    )


def test_c2b_discrimination_by_association(benchmark):
    """C2b — the IV.B spill-over: proxy-sharing non-members are harmed."""
    from repro.models import LogisticRegression, Standardizer
    from repro.proxy import association_harm

    def experiment():
        rows = []
        for strength in (0.0, 0.85):
            data = make_hiring(
                n=5000, direct_bias=2.5, proxy_strength=strength,
                random_state=51,
            )
            X = Standardizer().fit_transform(data.feature_matrix())
            model = LogisticRegression(max_iter=800).fit(X, data.labels())
            report = association_harm(
                data, "sex", "university", model.predict(X),
                disadvantaged_group="female",
            )
            rows.append((
                strength,
                report.associated_value,
                round(report.rate_associated, 3),
                round(report.rate_not_associated, 3),
                round(report.harm, 3),
                report.is_harmful(),
            ))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report("C2b discrimination by association (males only)", [
        ("proxy_strength", "assoc. value", "rate assoc.",
         "rate not assoc.", "harm", "harmful")
    ] + rows)

    by_strength = {r[0]: r for r in rows}
    assert by_strength[0.85][5] is True      # spill-over with the proxy
    assert by_strength[0.85][4] > 0.1
    assert by_strength[0.0][5] is False      # none without it
